"""Unit tests for repro.data.timeseries."""

import numpy as np
import pytest

from repro.data.timeseries import VectorAutoregressiveGenerator
from repro.exceptions import ValidationError


class TestConstruction:
    def test_scalar_coefficient(self):
        generator = VectorAutoregressiveGenerator(0.8, n_channels=3)
        np.testing.assert_allclose(generator.transition, 0.8 * np.eye(3))

    def test_matrix_coefficient(self):
        matrix = np.array([[0.5, 0.1], [0.0, 0.4]])
        generator = VectorAutoregressiveGenerator(matrix)
        np.testing.assert_array_equal(generator.transition, matrix)
        assert generator.n_channels == 2

    def test_rejects_unit_root(self):
        with pytest.raises(ValidationError, match="not stationary"):
            VectorAutoregressiveGenerator(np.eye(2))

    def test_rejects_scalar_out_of_range(self):
        with pytest.raises(ValidationError):
            VectorAutoregressiveGenerator(1.0, n_channels=1)

    def test_rejects_conflicting_channels(self):
        with pytest.raises(ValidationError, match="conflicts"):
            VectorAutoregressiveGenerator(
                np.array([[0.5]]), n_channels=3
            )

    def test_rejects_bad_innovation_std(self):
        with pytest.raises(ValidationError):
            VectorAutoregressiveGenerator(0.5, innovation_std=0.0)


class TestStationaryCovariance:
    def test_ar1_closed_form(self):
        # AR(1): stationary variance = s^2 / (1 - phi^2).
        phi, s = 0.7, 2.0
        generator = VectorAutoregressiveGenerator(
            phi, innovation_std=s, n_channels=1
        )
        stationary = generator.stationary_covariance()
        assert stationary[0, 0] == pytest.approx(s**2 / (1 - phi**2))

    def test_solves_lyapunov_equation(self):
        matrix = np.array([[0.6, 0.2], [-0.1, 0.5]])
        generator = VectorAutoregressiveGenerator(matrix, innovation_std=1.5)
        stationary = generator.stationary_covariance()
        residual = (
            matrix @ stationary @ matrix.T
            + 1.5**2 * np.eye(2)
            - stationary
        )
        np.testing.assert_allclose(residual, np.zeros((2, 2)), atol=1e-9)

    def test_autocovariance_lag_formula(self):
        phi = 0.8
        generator = VectorAutoregressiveGenerator(phi, n_channels=1)
        lag0 = generator.autocovariance(0)[0, 0]
        lag3 = generator.autocovariance(3)[0, 0]
        assert lag3 == pytest.approx(phi**3 * lag0)


class TestSampling:
    def test_shape(self):
        generator = VectorAutoregressiveGenerator(0.5, n_channels=4)
        series = generator.sample(100, rng=0)
        assert series.shape == (100, 4)

    def test_empirical_autocorrelation(self):
        phi = 0.9
        generator = VectorAutoregressiveGenerator(phi, n_channels=1)
        series = generator.sample(40000, rng=1).ravel()
        empirical = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert empirical == pytest.approx(phi, abs=0.02)

    def test_empirical_variance_matches_stationary(self):
        generator = VectorAutoregressiveGenerator(
            0.6, innovation_std=1.0, n_channels=1
        )
        series = generator.sample(60000, rng=2).ravel()
        expected = generator.stationary_covariance()[0, 0]
        assert series.var() == pytest.approx(expected, rel=0.05)

    def test_deterministic_given_seed(self):
        generator = VectorAutoregressiveGenerator(0.5, n_channels=2)
        np.testing.assert_array_equal(
            generator.sample(50, rng=7), generator.sample(50, rng=7)
        )
