"""Unit tests for repro.experiments.config."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.experiments.config import ExperimentSeries, SweepConfig


class TestSweepConfig:
    def test_defaults(self):
        config = SweepConfig()
        assert config.n_records == 2000
        assert config.noise_std == 5.0
        assert config.n_trials == 1

    def test_trace_for(self):
        config = SweepConfig(variance_per_attribute=100.0)
        assert config.trace_for(40) == pytest.approx(4000.0)

    def test_rejects_bad_records(self):
        with pytest.raises(ValidationError):
            SweepConfig(n_records=1)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValidationError):
            SweepConfig(noise_std=0.0)

    def test_rejects_bad_trials(self):
        with pytest.raises(ValidationError):
            SweepConfig(n_trials=0)

    def test_frozen(self):
        config = SweepConfig()
        with pytest.raises(AttributeError):
            config.n_records = 5


class TestExperimentSeries:
    def _series(self):
        return ExperimentSeries(
            name="demo",
            x_label="m",
            x_values=[1.0, 2.0, 3.0],
            series={
                "UDR": [4.0, 4.0, 4.0],
                "BE-DR": [3.0, 2.0, 1.0],
            },
        )

    def test_methods_in_order(self):
        assert self._series().methods == ["UDR", "BE-DR"]

    def test_curve_lookup(self):
        np.testing.assert_allclose(
            self._series().curve("BE-DR"), [3.0, 2.0, 1.0]
        )

    def test_curve_unknown_raises(self):
        with pytest.raises(KeyError, match="available"):
            self._series().curve("SF")

    def test_final_gap(self):
        assert self._series().final_gap("BE-DR", "UDR") == pytest.approx(3.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="shape"):
            ExperimentSeries(
                name="bad",
                x_label="m",
                x_values=[1.0, 2.0],
                series={"UDR": [1.0, 2.0, 3.0]},
            )

    def test_arrays_coerced_to_float(self):
        series = ExperimentSeries(
            name="ints",
            x_label="m",
            x_values=[1, 2],
            series={"UDR": [1, 2]},
        )
        assert series.x_values.dtype == np.float64
        assert series.series["UDR"].dtype == np.float64
