"""Unit tests for repro.stats.kde."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.kde import GaussianKDE, silverman_bandwidth


class TestSilvermanBandwidth:
    def test_scales_with_spread(self):
        rng = np.random.default_rng(0)
        narrow = rng.normal(0.0, 1.0, 500)
        wide = narrow * 10.0
        assert silverman_bandwidth(wide) == pytest.approx(
            10.0 * silverman_bandwidth(narrow), rel=1e-9
        )

    def test_shrinks_with_sample_size(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0.0, 1.0, 10000)
        small = silverman_bandwidth(samples[:100])
        large = silverman_bandwidth(samples)
        assert large < small

    def test_constant_samples_rejected(self):
        with pytest.raises(ValidationError, match="identical"):
            silverman_bandwidth(np.ones(50))

    def test_outlier_robustness_uses_iqr(self):
        rng = np.random.default_rng(2)
        clean = rng.normal(0.0, 1.0, 1000)
        contaminated = np.concatenate([clean, [1000.0, -1000.0]])
        # IQR keeps the bandwidth sane despite the huge std.
        assert silverman_bandwidth(contaminated) < 2.0


class TestGaussianKDE:
    def test_pdf_integrates_to_one(self):
        rng = np.random.default_rng(0)
        kde = GaussianKDE(rng.normal(0.0, 1.0, 400))
        grid = np.linspace(-8, 8, 4001)
        assert np.trapezoid(kde.pdf(grid), grid) == pytest.approx(
            1.0, abs=1e-4
        )

    def test_recovers_normal_density(self):
        rng = np.random.default_rng(1)
        kde = GaussianKDE(rng.normal(0.0, 1.0, 5000))
        grid = np.linspace(-2, 2, 9)
        truth = np.exp(-0.5 * grid**2) / np.sqrt(2 * np.pi)
        np.testing.assert_allclose(kde.pdf(grid), truth, atol=0.03)

    def test_mean_matches_samples(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert GaussianKDE(samples).mean == pytest.approx(2.5)

    def test_variance_adds_kernel_variance(self):
        samples = np.array([0.0, 2.0, 4.0, 6.0])
        kde = GaussianKDE(samples, bandwidth=1.5)
        assert kde.variance == pytest.approx(np.var(samples) + 2.25)

    def test_support_contains_samples(self):
        samples = np.array([-3.0, 0.0, 5.0])
        lo, hi = GaussianKDE(samples, bandwidth=1.0).support()
        assert lo < -3.0 and hi > 5.0

    def test_sampling_tracks_training_distribution(self):
        rng = np.random.default_rng(3)
        training = rng.normal(10.0, 2.0, 2000)
        kde = GaussianKDE(training)
        drawn = kde.sample(5000, rng=4)
        assert drawn.mean() == pytest.approx(10.0, abs=0.2)

    def test_scalar_input_shape(self):
        kde = GaussianKDE(np.array([0.0, 1.0]), bandwidth=1.0)
        assert np.ndim(kde.pdf(0.5)) == 0

    def test_explicit_bandwidth_validated(self):
        with pytest.raises(ValidationError):
            GaussianKDE(np.array([0.0, 1.0]), bandwidth=0.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValidationError):
            GaussianKDE(np.array([1.0]))
