"""Unit tests for the Wiener-smoother attack on serially dependent data."""

import numpy as np
import pytest

from repro.data.timeseries import VectorAutoregressiveGenerator
from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor


def _disguised_ar_series(phi=0.9, n=4000, sigma=2.0, seed=0):
    generator = VectorAutoregressiveGenerator(
        phi, innovation_std=1.0, n_channels=2
    )
    series = generator.sample(n, rng=seed)
    scheme = AdditiveNoiseScheme(std=sigma)
    return scheme.disguise(series, rng=seed + 1)


class TestWienerSmoother:
    def test_beats_ndr_on_autocorrelated_series(self):
        disguised = _disguised_ar_series()
        original = disguised.original
        wiener = root_mean_square_error(
            original, WienerSmootherReconstructor().reconstruct(disguised)
        )
        ndr = root_mean_square_error(
            original,
            NoiseDistributionReconstructor().reconstruct(disguised),
        )
        assert wiener < 0.8 * ndr

    def test_approaches_theoretical_mmse(self):
        """For AR(1)+white noise the smoother nears the Wiener bound.

        The infinite-window MMSE for this setup is computable via the
        spectral formula; we use a generous window and check we are
        within 15% of the causal-bound approximation computed from a
        long-window Toeplitz solve.
        """
        phi, sigma = 0.9, 2.0
        generator = VectorAutoregressiveGenerator(
            phi, innovation_std=1.0, n_channels=1
        )
        series = generator.sample(20000, rng=2)
        disguised = AdditiveNoiseScheme(std=sigma).disguise(series, rng=3)
        attack = WienerSmootherReconstructor(window=41)
        rmse = root_mean_square_error(
            series, attack.reconstruct(disguised)
        )
        # Oracle window-41 smoother with the true autocovariance.
        var_x = 1.0 / (1 - phi**2)
        lags = np.abs(np.subtract.outer(np.arange(41), np.arange(41)))
        toeplitz_x = var_x * phi**lags
        toeplitz_y = toeplitz_x + sigma**2 * np.eye(41)
        gain = toeplitz_x[20] @ np.linalg.inv(toeplitz_y)
        oracle_mse = var_x - gain @ toeplitz_x[20]
        assert rmse == pytest.approx(np.sqrt(oracle_mse), rel=0.15)

    def test_white_series_shrinks_toward_mean(self):
        """No serial correlation: the smoother acts like UDR shrinkage."""
        rng = np.random.default_rng(4)
        white = rng.normal(0.0, 3.0, size=(3000, 1))
        disguised = AdditiveNoiseScheme(std=2.0).disguise(white, rng=5)
        result = WienerSmootherReconstructor(window=11).reconstruct(disguised)
        # Gain should concentrate on the center tap with value near
        # s^2/(s^2+sigma^2) = 9/13.
        gain = result.details["gains"][0]
        assert gain[5] == pytest.approx(9.0 / 13.0, abs=0.08)
        off_center = np.delete(gain, 5)
        assert np.abs(off_center).max() < 0.1

    def test_estimate_shape_matches(self):
        disguised = _disguised_ar_series(n=500)
        result = WienerSmootherReconstructor(window=9).reconstruct(disguised)
        assert result.estimate.shape == disguised.disguised.shape

    def test_window_must_be_odd(self):
        with pytest.raises(ValidationError, match="odd"):
            WienerSmootherReconstructor(window=10)

    def test_window_minimum(self):
        with pytest.raises(ValidationError):
            WienerSmootherReconstructor(window=1)

    def test_max_lag_must_cover_window(self):
        with pytest.raises(ValidationError, match="cover"):
            WienerSmootherReconstructor(window=11, max_lag=5)

    def test_series_shorter_than_window_rejected(self):
        disguised = _disguised_ar_series(n=10)
        with pytest.raises(ValidationError, match="shorter"):
            WienerSmootherReconstructor(window=21).reconstruct(disguised)

    def test_method_name(self):
        disguised = _disguised_ar_series(n=300)
        result = WienerSmootherReconstructor(window=9).reconstruct(disguised)
        assert result.method == "Wiener"
