"""Unit tests for the gradient-ascent MAP reconstructor."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.map_gd import MAPGradientReconstructor
from repro.reconstruction.udr import UnivariateReconstructor
from repro.stats.density import (
    GaussianDensity,
    GaussianMixtureDensity,
    LaplaceDensity,
)


class TestGaussianPriorSanity:
    def test_matches_closed_form_map(self):
        """With a Gaussian prior the MAP equals the posterior mean."""
        rng = np.random.default_rng(0)
        prior = GaussianDensity(0.0, 8.0)
        original = prior.sample(300, rng=1).reshape(-1, 1)
        disguised = AdditiveNoiseScheme(std=4.0).disguise(original, rng=2)
        attack = MAPGradientReconstructor([prior], max_iter=200)
        result = attack.reconstruct(disguised)
        shrinkage = 64.0 / (64.0 + 16.0)
        expected = shrinkage * disguised.disguised
        np.testing.assert_allclose(result.estimate, expected, atol=0.05)


class TestMixturePrior:
    def _bimodal_case(self, seed=3):
        prior = GaussianMixtureDensity(
            weights=[0.5, 0.5], means=[-12.0, 12.0], stds=[1.0, 1.0]
        )
        rng_seed = seed
        original = prior.sample(2000, rng=rng_seed).reshape(-1, 1)
        disguised = AdditiveNoiseScheme(std=4.0).disguise(
            original, rng=seed + 1
        )
        return prior, original, disguised

    def test_beats_moment_matched_udr(self):
        prior, original, disguised = self._bimodal_case()
        map_attack = MAPGradientReconstructor([prior])
        udr = UnivariateReconstructor(prior="gaussian")
        rmse_map = root_mean_square_error(
            original, map_attack.reconstruct(disguised)
        )
        rmse_udr = root_mean_square_error(
            original, udr.reconstruct(disguised)
        )
        assert rmse_map < rmse_udr

    def test_estimates_land_near_modes(self):
        prior, original, disguised = self._bimodal_case(seed=7)
        result = MAPGradientReconstructor([prior]).reconstruct(disguised)
        distance_to_modes = np.minimum(
            np.abs(result.estimate + 12.0), np.abs(result.estimate - 12.0)
        )
        # MAP with a sharp bimodal prior snaps most points near a mode.
        assert np.quantile(distance_to_modes, 0.9) < 3.0

    def test_mode_assignment_mostly_correct(self):
        prior, original, disguised = self._bimodal_case(seed=11)
        result = MAPGradientReconstructor([prior]).reconstruct(disguised)
        original_sign = np.sign(original)
        estimate_sign = np.sign(result.estimate)
        agreement = float(np.mean(original_sign == estimate_sign))
        assert agreement > 0.95


class TestGenericPriorFallback:
    def test_laplace_prior_uses_finite_differences(self):
        prior = LaplaceDensity(0.0, 3.0)
        original = prior.sample(500, rng=13).reshape(-1, 1)
        disguised = AdditiveNoiseScheme(std=2.0).disguise(original, rng=14)
        attack = MAPGradientReconstructor([prior], max_iter=150)
        result = attack.reconstruct(disguised)
        # Laplace MAP is soft-thresholding-like shrinkage toward 0: the
        # estimate magnitude never exceeds the observation's.
        shrunk = np.abs(result.estimate) <= np.abs(disguised.disguised) + 1e-6
        assert np.mean(shrunk) > 0.95


class TestValidation:
    def test_prior_count_checked(self, disguised_dataset):
        attack = MAPGradientReconstructor([GaussianDensity(0.0, 1.0)])
        with pytest.raises(ValidationError, match="priors"):
            attack.reconstruct(disguised_dataset)

    def test_rejects_non_density_priors(self):
        with pytest.raises(ValidationError):
            MAPGradientReconstructor(["not-a-density"])

    def test_rejects_bad_step_scale(self):
        with pytest.raises(ValidationError):
            MAPGradientReconstructor(
                [GaussianDensity(0.0, 1.0)], step_scale=0.0
            )

    def test_method_name(self):
        prior = GaussianDensity(0.0, 5.0)
        original = prior.sample(50, rng=15).reshape(-1, 1)
        disguised = AdditiveNoiseScheme(std=1.0).disguise(original, rng=16)
        result = MAPGradientReconstructor([prior]).reconstruct(disguised)
        assert result.method == "MAP-GD"
