"""Unit tests for the Agrawal-Srikant distribution reconstruction."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.randomization.distribution_recon import (
    reconstruct_distribution,
    reconstruction_sweep,
)
from repro.stats.density import GaussianDensity, HistogramDensity, UniformDensity


def _disguise(original, sigma, seed):
    rng = np.random.default_rng(seed)
    return original + rng.normal(0.0, sigma, size=original.shape)


class TestReconstructDistribution:
    def test_recovers_bimodal_shape(self):
        # Classic Agrawal-Srikant demo: a mixture is recoverable from
        # heavily noised samples even though the disguised histogram is
        # unimodal mush.
        rng = np.random.default_rng(0)
        original = np.concatenate(
            [rng.normal(-10.0, 1.0, 4000), rng.normal(10.0, 1.0, 4000)]
        )
        disguised = _disguise(original, sigma=5.0, seed=1)
        noise = GaussianDensity(0.0, 5.0)
        estimate = reconstruct_distribution(disguised, noise, n_bins=80)
        # Mass near the true modes should dominate mass near zero.
        mode_mass = estimate.probabilities[
            (np.abs(estimate.centers + 10.0) < 3.0)
            | (np.abs(estimate.centers - 10.0) < 3.0)
        ].sum()
        center_mass = estimate.probabilities[
            np.abs(estimate.centers) < 3.0
        ].sum()
        assert mode_mass > 0.6
        assert center_mass < 0.15

    def test_recovers_moments_of_gaussian(self):
        rng = np.random.default_rng(2)
        original = rng.normal(3.0, 2.0, 6000)
        disguised = _disguise(original, sigma=4.0, seed=3)
        estimate = reconstruct_distribution(
            disguised, GaussianDensity(0.0, 4.0), n_bins=60
        )
        assert estimate.mean == pytest.approx(3.0, abs=0.3)
        assert np.sqrt(estimate.variance) == pytest.approx(2.0, abs=0.6)

    def test_returns_histogram_density(self):
        rng = np.random.default_rng(4)
        disguised = _disguise(rng.normal(0.0, 1.0, 500), 1.0, 5)
        estimate = reconstruct_distribution(
            disguised, GaussianDensity(0.0, 1.0), n_bins=32
        )
        assert isinstance(estimate, HistogramDensity)
        assert estimate.probabilities.sum() == pytest.approx(1.0)

    def test_uniform_noise_supported(self):
        rng = np.random.default_rng(6)
        original = rng.normal(0.0, 3.0, 4000)
        noise_density = UniformDensity(-4.0, 4.0)
        disguised = original + rng.uniform(-4.0, 4.0, 4000)
        estimate = reconstruct_distribution(
            disguised, noise_density, n_bins=48
        )
        assert estimate.mean == pytest.approx(0.0, abs=0.3)

    def test_explicit_support(self):
        rng = np.random.default_rng(7)
        disguised = _disguise(rng.normal(0.0, 1.0, 800), 1.0, 8)
        estimate = reconstruct_distribution(
            disguised,
            GaussianDensity(0.0, 1.0),
            support=(-6.0, 6.0),
            n_bins=24,
        )
        lo, hi = estimate.support()
        assert lo == -6.0 and hi == 6.0

    def test_rejects_inverted_support(self):
        with pytest.raises(ValidationError):
            reconstruct_distribution(
                np.zeros(10) + np.arange(10),
                GaussianDensity(0.0, 1.0),
                support=(5.0, -5.0),
            )

    def test_convergence_error_on_tiny_budget(self):
        rng = np.random.default_rng(9)
        disguised = _disguise(rng.normal(0.0, 5.0, 2000), 2.0, 10)
        with pytest.raises(ConvergenceError):
            reconstruct_distribution(
                disguised,
                GaussianDensity(0.0, 2.0),
                max_iter=1,
                tol=1e-300,
            )

    def test_rejects_bad_tol(self):
        with pytest.raises(ValidationError):
            reconstruct_distribution(
                np.arange(10.0), GaussianDensity(0.0, 1.0), tol=0.0
            )


class TestReconstructionSweep:
    def test_sweep_preserves_total_mass(self):
        rng = np.random.default_rng(11)
        samples = rng.normal(0.0, 2.0, 500)
        edges = np.linspace(-8, 8, 33)
        probs = np.full(32, 1.0 / 32)
        updated = reconstruction_sweep(
            samples, GaussianDensity(0.0, 1.0), edges, probs
        )
        assert updated.sum() == pytest.approx(1.0)
        assert np.all(updated >= 0.0)

    def test_sweep_is_em_ascent(self):
        # Each sweep must not decrease the disguised-sample likelihood.
        rng = np.random.default_rng(12)
        original = np.concatenate(
            [rng.normal(-3.0, 0.5, 600), rng.normal(3.0, 0.5, 600)]
        )
        samples = _disguise(original, 1.5, 13)
        noise = GaussianDensity(0.0, 1.5)
        edges = np.linspace(-8, 8, 41)
        centers = (edges[:-1] + edges[1:]) / 2
        probs = np.full(40, 1.0 / 40)

        def log_likelihood(p):
            kernel = noise.pdf(samples[:, None] - centers[None, :])
            mix = kernel @ p
            return float(np.sum(np.log(np.maximum(mix, 1e-300))))

        previous = log_likelihood(probs)
        for _ in range(10):
            probs = reconstruction_sweep(samples, noise, edges, probs)
            current = log_likelihood(probs)
            assert current >= previous - 1e-8
            previous = current

    def test_all_zero_likelihood_raises(self):
        # Grid entirely away from the data: every sample unexplained.
        samples = np.full(10, 100.0)
        edges = np.linspace(-1, 1, 5)
        probs = np.full(4, 0.25)
        with pytest.raises(ConvergenceError, match="support grid"):
            reconstruction_sweep(
                samples, GaussianDensity(0.0, 0.1), edges, probs
            )
