"""Unit tests for cross-run trace diffing and bench history.

Diff alignment is the load-bearing property: spans must pair up by
cache key / case name across runs regardless of sibling order, deltas
must attribute to self-time, and manifest provenance changes must
surface field by field.  History folds bench payloads into per-case
timelines ordered by creation time with baseline regression flagging.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.telemetry import (
    HISTORY_SCHEMA,
    Span,
    build_history,
    diff_traces,
    render_diff,
    render_history,
)


def _span(name, duration, children=(), **attrs):
    span = Span(name, attrs)
    span.start_unix = 1000.0
    span.duration = float(duration)
    span.children.extend(children)
    return span


def _trace(roots, *, counters=None, manifest=None):
    return {
        "schema": "repro-trace/v1",
        "created_unix": 1000.0,
        "spans": [root.to_dict() for root in roots],
        "counters": counters or {},
        "gauges": {},
        "manifest": manifest,
    }


def _run(job_durations, *, order=None, manifest=None, counters=None):
    """A run span with one keyed engine.job child per entry."""
    jobs = [
        _span("engine.job", duration, key=key, cached=False)
        for key, duration in job_durations.items()
    ]
    if order is not None:
        jobs = [jobs[i] for i in order]
    root = _span("engine.run", sum(j.duration for j in jobs) + 0.01,
                 children=jobs)
    return _trace([root], manifest=manifest, counters=counters)


class TestDiffAlignment:
    def test_same_trace_has_no_deltas(self):
        payload = _run({"a": 0.1, "b": 0.2})
        diff = diff_traces(payload, payload)
        assert all(row["status"] == "common" for row in diff["spans"])
        assert all(row["delta"] == 0.0 for row in diff["spans"])
        assert diff["counters"] == []
        assert diff["manifest"] == []

    def test_keyed_spans_align_across_sibling_order(self):
        a = _run({"a": 0.1, "b": 0.2, "c": 0.3})
        b = _run({"a": 0.1, "b": 0.5, "c": 0.3}, order=[2, 0, 1])
        diff = diff_traces(a, b)
        assert all(row["status"] == "common" for row in diff["spans"])
        [changed] = [
            row for row in diff["spans"] if row["delta_self"] != 0.0
            and row["name"] == "engine.job"
        ]
        assert "[b]" in changed["path"]
        assert changed["delta"] == pytest.approx(0.3)

    def test_added_and_removed_spans(self):
        a = _run({"a": 0.1, "b": 0.2})
        b = _run({"a": 0.1, "c": 0.4})
        diff = diff_traces(a, b)
        by_status = {}
        for row in diff["spans"]:
            by_status.setdefault(row["status"], []).append(row["path"])
        assert any("[b]" in path for path in by_status["removed"])
        assert any("[c]" in path for path in by_status["added"])

    def test_self_time_attribution(self):
        # The child grew by 0.3 but the parent's own work is unchanged:
        # the parent's *duration* delta is 0.3, its *self* delta 0.
        child_a = _span("kernel", 0.1)
        child_b = _span("kernel", 0.4)
        a = _trace([_span("run", 0.5, children=[child_a])])
        b = _trace([_span("run", 0.8, children=[child_b])])
        diff = diff_traces(a, b)
        parent = next(r for r in diff["spans"] if r["name"] == "run")
        kernel = next(r for r in diff["spans"] if r["name"] == "kernel")
        assert parent["delta"] == pytest.approx(0.3)
        assert parent["delta_self"] == pytest.approx(0.0)
        assert kernel["delta_self"] == pytest.approx(0.3)

    def test_cached_flip_is_flagged(self):
        a = _trace([_span("engine.job", 0.2, key="a", cached=False)])
        b = _trace([_span("engine.job", 0.0, key="a", cached=True)])
        diff = diff_traces(a, b)
        [row] = diff["spans"]
        assert row["cached_changed"] is True

    def test_unkeyed_spans_align_by_occurrence_index(self):
        a = _trace([_span("run", 0.3, children=[
            _span("step", 0.1), _span("step", 0.2)])])
        b = _trace([_span("run", 0.4, children=[
            _span("step", 0.1), _span("step", 0.3)])])
        diff = diff_traces(a, b)
        steps = [r for r in diff["spans"] if r["name"] == "step"]
        assert [r["status"] for r in steps] == ["common", "common"]
        assert steps[0]["delta"] == pytest.approx(0.0)
        assert steps[1]["delta"] == pytest.approx(0.1)

    def test_counter_deltas(self):
        a = _trace([], counters={"cache.hit": 2.0, "same": 1.0})
        b = _trace([], counters={"cache.hit": 5.0, "same": 1.0})
        diff = diff_traces(a, b)
        [row] = diff["counters"]
        assert row["name"] == "cache.hit"
        assert row["delta"] == 3.0

    def test_manifest_delta_fields(self):
        manifest_a = {
            "git_revision": "aaa",
            "spec": {"hash": "h1", "seed": 7, "name": "s"},
            "packages": {"numpy": "1.26.0", "repro": "1.0"},
        }
        manifest_b = {
            "git_revision": "bbb",
            "spec": {"hash": "h2", "seed": 7, "name": "s"},
            "packages": {"numpy": "2.0.0", "repro": "1.0"},
        }
        diff = diff_traces(
            _trace([], manifest=manifest_a),
            _trace([], manifest=manifest_b),
        )
        changed = {c["field"]: (c["a"], c["b"]) for c in diff["manifest"]}
        assert changed["git_revision"] == ("aaa", "bbb")
        assert changed["spec.hash"] == ("h1", "h2")
        assert changed["packages.numpy"] == ("1.26.0", "2.0.0")
        assert "spec.seed" not in changed

    def test_rejects_non_dict(self):
        with pytest.raises(ValidationError, match="trace A"):
            diff_traces([], _trace([]))


class TestRenderDiff:
    def test_report_sections(self):
        a = _run({"a": 0.1, "b": 0.2},
                 manifest={"git_revision": "aaa"})
        b = _run({"a": 0.1, "b": 0.5, "c": 0.3},
                 manifest={"git_revision": "bbb"})
        text = render_diff(diff_traces(a, b))
        assert "trace diff (B - A)" in text
        assert "total delta:" in text
        assert "manifest changes:" in text
        assert "'aaa' -> 'bbb'" in text
        assert "only in B: 1 span(s)" in text

    def test_identical_traces_report_no_differences(self):
        payload = _run({"a": 0.1})
        text = render_diff(diff_traces(payload, payload))
        assert "(no differences)" in text


def _bench(created, **cases):
    return {
        "schema": "repro-bench/v1",
        "created_unix": created,
        "benchmarks": {
            name: {"seconds_min": s, "seconds_mean": s * 1.05}
            for name, s in cases.items()
        },
    }


class TestBuildHistory:
    def test_orders_by_created_unix(self):
        history = build_history(
            [_bench(200.0, x=0.3), _bench(100.0, x=0.1)]
        )
        assert history["schema"] == HISTORY_SCHEMA
        timeline = history["cases"]["x"]["timeline"]
        assert [p["created_unix"] for p in timeline] == [100.0, 200.0]
        assert history["cases"]["x"]["best_s"] == 0.1
        assert history["cases"]["x"]["latest_s"] == 0.3

    def test_regression_flagged_against_baseline(self):
        history = build_history(
            [_bench(1.0, x=0.1), _bench(2.0, x=0.2)],
            baseline=_bench(0.0, x=0.1),
        )
        case = history["cases"]["x"]
        assert case["baseline_ratio"] == pytest.approx(2.0)
        assert case["regressed"] is True
        assert history["regressions"] == ["x"]

    def test_latest_not_history_minimum_decides(self):
        # The case *was* slow mid-history but recovered: not a
        # regression — only the latest run is judged.
        history = build_history(
            [_bench(1.0, x=0.5), _bench(2.0, x=0.1)],
            baseline=_bench(0.0, x=0.1),
        )
        assert history["regressions"] == []

    def test_no_baseline_never_regresses(self):
        history = build_history([_bench(1.0, x=99.0)])
        assert history["cases"]["x"]["baseline_s"] is None
        assert history["regressions"] == []

    def test_rejects_empty_and_malformed(self):
        with pytest.raises(ValidationError, match="at least one"):
            build_history([])
        with pytest.raises(ValidationError, match="payload 0"):
            build_history([{"nope": 1}])

    def test_case_missing_from_some_runs(self):
        history = build_history(
            [_bench(1.0, x=0.1), _bench(2.0, x=0.1, y=0.2)]
        )
        assert history["cases"]["x"]["runs"] == 2
        assert history["cases"]["y"]["runs"] == 1


class TestRenderHistory:
    def test_table_and_regression_marker(self):
        history = build_history(
            [_bench(1.0, x=0.1), _bench(2.0, x=0.3)],
            baseline=_bench(0.0, x=0.1),
        )
        text = render_history(history)
        assert "2 run(s), 1 case(s)" in text
        assert "<< REGRESSION" in text
        assert "3.00x" in text

    def test_sparkline_tracks_shape(self):
        history = build_history(
            [_bench(float(i), x=s) for i, s in
             enumerate([0.1, 0.1, 0.5])]
        )
        text = render_history(history)
        row = next(line for line in text.splitlines()
                   if line.startswith("x"))
        spark = row.rstrip()[-3:]
        # Two fast runs at the floor, one slow spike at the ceiling.
        assert spark[0] == spark[1]
        assert spark[2] != spark[0]


# ----------------------------------------------------------------------
# Convergence trajectory diffing


def _fit_trace(kernel="em.fit", iterations=9, final=-1.75, *,
               converged=True, objective=None):
    payload = {
        "schema": "repro-convergence/v1",
        "kernel": kernel,
        "iterations": iterations,
        "rejections": 0,
        "nonfinite": 0,
        "converged": converged,
        "final_objective": final,
    }
    if objective is not None:
        payload["objective"] = objective
    root = _span(kernel, 0.2, convergence=payload)
    return _trace([root])


class TestDiffConvergence:
    def test_identical_runs_produce_zero_delta_rows(self):
        diff = diff_traces(_fit_trace(), _fit_trace())
        (row,) = diff["convergence"]
        assert row["delta_iterations"] == 0
        assert row["delta_final_objective"] == 0.0
        assert not row["diverged"]
        assert not row["nonfinite_introduced"]
        # Zero-delta rows stay out of the rendered report.
        assert "convergence deltas:" not in render_diff(diff)

    def test_injected_nonconvergence_is_flagged(self):
        healthy = _fit_trace(iterations=9, final=-1.75, converged=True)
        sick = _fit_trace(iterations=3, final=-2.2, converged=False)
        diff = diff_traces(healthy, sick)
        (row,) = diff["convergence"]
        assert row["delta_iterations"] == -6
        assert row["delta_final_objective"] == pytest.approx(-0.45)
        assert row["diverged"]
        report = render_diff(diff)
        assert "convergence deltas:" in report
        assert "[diverged]" in report

    def test_one_sided_payload_diffs_against_zero(self):
        plain = _trace([_span("em.fit", 0.2)])
        traced = _fit_trace(iterations=9)
        diff = diff_traces(plain, traced)
        (row,) = diff["convergence"]
        assert row["a_iterations"] == 0
        assert row["b_iterations"] == 9
        assert row["a_final_objective"] is None
        assert row["delta_final_objective"] is None

    def test_nan_final_objective_is_incomparable_but_flagged(self):
        healthy = _fit_trace()
        sick = _fit_trace(final="__nan__", converged=True)
        sick["spans"][0]["attrs"]["convergence"]["nonfinite"] = 1
        diff = diff_traces(healthy, sick)
        (row,) = diff["convergence"]
        assert row["delta_final_objective"] is None
        assert row["nonfinite_introduced"]
        assert "[nonfinite]" in render_diff(diff)

    def test_pre_convergence_traces_diff_cleanly(self):
        plain = _trace([_span("engine.run", 0.1)])
        diff = diff_traces(plain, plain)
        assert diff["convergence"] == []

    def test_render_tolerates_diffs_without_the_key(self):
        # A diff payload produced by an older build has no
        # "convergence" entry; rendering must not KeyError.
        diff = diff_traces(_fit_trace(), _fit_trace())
        del diff["convergence"]
        assert "differences" in render_diff(diff) or render_diff(diff)

    def test_zero_iteration_fits_align(self):
        cold = _fit_trace(iterations=0, final=None, converged=False)
        warm = _fit_trace(iterations=0, final=None, converged=False)
        diff = diff_traces(cold, warm)
        (row,) = diff["convergence"]
        assert row["delta_iterations"] == 0
        assert not row["diverged"]  # present on both sides
