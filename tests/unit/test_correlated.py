"""Unit tests for repro.randomization.correlated.CorrelatedNoiseScheme."""

import numpy as np
import pytest

from repro.data.covariance_builder import CovarianceModel
from repro.exceptions import ValidationError
from repro.metrics.dissimilarity import correlation_dissimilarity
from repro.randomization.correlated import CorrelatedNoiseScheme


def _data_covariance():
    return CovarianceModel.from_spectrum([50.0, 20.0, 5.0, 1.0], rng=0).matrix


class TestConstruction:
    def test_total_power_is_trace(self):
        scheme = CorrelatedNoiseScheme(np.diag([1.0, 2.0, 3.0]))
        assert scheme.total_power == pytest.approx(6.0)

    def test_rejects_indefinite_covariance(self):
        indefinite = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValidationError, match="positive semidefinite"):
            CorrelatedNoiseScheme(indefinite)

    def test_matching_data_covariance_scales_to_power(self):
        cov = _data_covariance()
        scheme = CorrelatedNoiseScheme.matching_data_covariance(
            cov, noise_power=10.0
        )
        assert scheme.total_power == pytest.approx(10.0)
        # Proportional covariance keeps correlations identical.
        assert correlation_dissimilarity(
            cov, scheme.covariance, inputs="covariance"
        ) == pytest.approx(0.0, abs=1e-12)

    def test_matching_rejects_bad_power(self):
        with pytest.raises(ValidationError):
            CorrelatedNoiseScheme.matching_data_covariance(
                _data_covariance(), noise_power=0.0
            )


class TestSampling:
    def test_sample_covariance_matches(self):
        cov = _data_covariance()
        scheme = CorrelatedNoiseScheme(cov)
        noise = scheme.sample_noise((60000, 4), rng=1)
        np.testing.assert_allclose(
            np.cov(noise, rowvar=False), cov, atol=0.8
        )

    def test_zero_mean(self):
        scheme = CorrelatedNoiseScheme(_data_covariance())
        noise = scheme.sample_noise((60000, 4), rng=2)
        np.testing.assert_allclose(noise.mean(axis=0), np.zeros(4), atol=0.1)

    def test_shape_attribute_mismatch_rejected(self):
        scheme = CorrelatedNoiseScheme(np.eye(3))
        with pytest.raises(ValidationError, match="attributes"):
            scheme.sample_noise((10, 4))

    def test_noise_model_dim_checked(self):
        scheme = CorrelatedNoiseScheme(np.eye(3))
        with pytest.raises(ValidationError):
            scheme.noise_model(4)
        model = scheme.noise_model(3)
        np.testing.assert_array_equal(model.covariance, np.eye(3))

    def test_disguise_produces_consistent_dataset(self):
        rng = np.random.default_rng(3)
        original = rng.normal(size=(500, 4))
        scheme = CorrelatedNoiseScheme(_data_covariance())
        dataset = scheme.disguise(original, rng=4)
        np.testing.assert_allclose(
            dataset.disguised, dataset.original + dataset.noise
        )
        assert not dataset.noise_model.is_isotropic

    def test_singular_covariance_sampling_works(self):
        # Rank-deficient noise (all power on one direction) must sample.
        cov = np.outer([1.0, 1.0], [1.0, 1.0])
        scheme = CorrelatedNoiseScheme(cov)
        noise = scheme.sample_noise((1000, 2), rng=5)
        # Both columns equal (up to jitter) by construction.
        np.testing.assert_allclose(noise[:, 0], noise[:, 1], atol=1e-3)
