"""Unit tests for ExperimentSpec validation and engine compilation."""

import json

import pytest

from repro.api.spec import GENERIC_TASK, ExperimentSpec
from repro.engine import JobSpec
from repro.exceptions import ValidationError


def component_spec(**overrides):
    payload = {
        "name": "test",
        "dataset": {"kind": "synthetic", "spectrum": [40.0, 4.0, 4.0]},
        "scheme": {"kind": "additive", "std": 5.0},
        "attacks": {"UDR": {"kind": "udr"}, "BE-DR": {"kind": "be-dr"}},
        "params": {"n_records": 100},
        "seed": 7,
    }
    payload.update(overrides)
    return ExperimentSpec(**payload)


class TestValidation:
    def test_minimal_component_spec(self):
        spec = component_spec()
        assert spec.task_ref == GENERIC_TASK
        assert len(spec.expand_points()) == 1

    def test_name_required(self):
        with pytest.raises(ValidationError, match="name"):
            component_spec(name="")

    def test_component_mode_needs_dataset(self):
        with pytest.raises(ValidationError, match="dataset"):
            component_spec(dataset=None)

    def test_component_mode_needs_exactly_one_adversary(self):
        with pytest.raises(ValidationError, match="exactly one"):
            component_spec(attacks=None)
        with pytest.raises(ValidationError, match="exactly one"):
            component_spec(
                threat_model={"kind": "threat_model"},
            )

    def test_component_mode_needs_seed(self):
        with pytest.raises(ValidationError, match="seed"):
            component_spec(seed=None)

    def test_component_mode_needs_n_records(self):
        with pytest.raises(ValidationError, match="n_records"):
            component_spec(params={})

    def test_unknown_component_kind_fails_eagerly(self):
        with pytest.raises(ValidationError, match="unknown scheme"):
            component_spec(scheme={"kind": "nope"}).compile_jobs()

    def test_typoed_component_field_fails_eagerly(self):
        with pytest.raises(ValidationError, match="stdd"):
            component_spec(
                scheme={"kind": "additive", "stdd": 5.0}
            ).compile_jobs()

    def test_raw_mode_rejects_components(self):
        with pytest.raises(ValidationError, match="not allowed"):
            ExperimentSpec(
                name="raw",
                task="repro.experiments.tasks:two_level_trial",
                scheme={"kind": "additive", "std": 5.0},
            )

    def test_bad_task_reference(self):
        with pytest.raises(ValidationError, match="package.module"):
            ExperimentSpec(name="raw", task="no-colon")

    def test_grid_and_points_exclusive(self):
        with pytest.raises(ValidationError, match="not both"):
            component_spec(
                grid={"scheme.std": [1.0]}, points=({"scheme.std": 2.0},)
            )

    def test_empty_grid_values_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            component_spec(grid={"scheme.std": []})

    def test_seed_mode_root_single_job_only(self):
        with pytest.raises(ValidationError, match="root"):
            component_spec(seed_mode="root", trials=2)

    def test_multiple_x_sources_rejected(self):
        with pytest.raises(ValidationError, match="at most one"):
            component_spec(x_param="scheme.std", x_from="dissimilarity")

    def test_x_values_length_checked(self):
        with pytest.raises(ValidationError, match="x_values"):
            component_spec(
                grid={"scheme.std": [1.0, 2.0]},
                x_values=[1.0, 2.0, 3.0],
                trials=2,
            )


class TestSweepExpansion:
    def test_grid_cross_product_insertion_order(self):
        spec = component_spec(
            grid={"scheme.std": [1.0, 2.0], "n_records": [50, 100]}
        )
        points = spec.expand_points()
        assert points == [
            {"scheme.std": 1.0, "n_records": 50},
            {"scheme.std": 1.0, "n_records": 100},
            {"scheme.std": 2.0, "n_records": 50},
            {"scheme.std": 2.0, "n_records": 100},
        ]

    def test_dotted_override_lands_in_component(self):
        spec = component_spec(grid={"scheme.std": [1.0, 9.0]})
        params = spec.point_params({"scheme.std": 9.0})
        assert params["scheme"]["std"] == 9.0
        # The base spec is untouched.
        assert spec.scheme["std"] == 5.0

    def test_unresolvable_override_path(self):
        spec = component_spec()
        with pytest.raises(ValidationError, match="does not resolve"):
            spec.point_params({"scheme.inner.std": 1.0})

    def test_x_param_values(self):
        spec = component_spec(
            grid={"scheme.std": [1.0, 2.0]}, x_param="scheme.std"
        )
        hint = spec.x_values_hint(spec.expand_points())
        assert hint.tolist() == [1.0, 2.0]


class TestCompileJobs:
    def test_component_jobs(self):
        spec = component_spec(grid={"scheme.std": [1.0, 2.0]}, trials=3)
        jobs = spec.compile_jobs()
        assert len(jobs) == 6
        assert all(isinstance(job, JobSpec) for job in jobs)
        assert jobs[0].task == GENERIC_TASK
        assert [job.seed_path for job in jobs] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]
        assert all(job.seed_root == 7 for job in jobs)
        assert jobs[0].params["scheme"]["std"] == 1.0
        assert jobs[5].params["scheme"]["std"] == 2.0

    def test_raw_mode_without_seed_uses_flat_paths(self):
        spec = ExperimentSpec(
            name="raw",
            task="repro.experiments.tasks:ablation_samplesize_point",
            points=(
                {"n_records": 100, "data_seed": 1},
                {"n_records": 200, "data_seed": 2},
            ),
            params={"spectrum": [10.0, 1.0], "noise_std": 5.0,
                    "attack_seed": 3},
        )
        jobs = spec.compile_jobs()
        assert [job.seed_path for job in jobs] == [(), ()]
        assert all(job.seed_root is None for job in jobs)
        assert jobs[1].params["n_records"] == 200

    def test_seed_mode_root(self):
        spec = ExperimentSpec(
            name="single",
            task="repro.experiments.tasks:theorem52_check",
            params={"n_attributes": 10, "component_counts": [2],
                    "noise_std": 5.0, "n_records": 100},
            seed=52,
            seed_mode="root",
            x_values=[2.0],
        )
        (job,) = spec.compile_jobs()
        assert job.seed_root == 52
        assert job.seed_path == ()


class TestSerialization:
    def test_json_round_trip(self):
        spec = component_spec(
            grid={"scheme.std": [1.0, 2.0]},
            x_param="scheme.std",
            x_label="sigma",
            trials=2,
            metadata={"note": "round trip"},
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert [job.key() for job in clone.compile_jobs()] == [
            job.key() for job in spec.compile_jobs()
        ]

    def test_from_dict_rejects_unknown_fields(self):
        payload = component_spec().to_dict()
        payload["tirals"] = 3
        with pytest.raises(ValidationError, match="tirals"):
            ExperimentSpec.from_dict(payload)

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(ValidationError, match="invalid spec JSON"):
            ExperimentSpec.from_json("{not json")

    def test_to_dict_is_strict_json(self):
        spec = component_spec()
        json.dumps(spec.to_dict(), allow_nan=False)

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = component_spec()
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_file(path) == spec


class TestEagerXParamValidation:
    def test_typoed_x_param_fails_at_construction(self):
        # Regression: this used to surface only after the sweep ran.
        with pytest.raises(ValidationError, match="x_param"):
            component_spec(
                grid={"scheme.std": [1.0, 2.0]}, x_param="scheme.stdd"
            )


class TestCompileValidationScope:
    def test_component_sweep_points_validated_eagerly(self):
        spec = component_spec(grid={"scheme.std": [1.0, -3.0]})
        with pytest.raises(ValidationError):
            spec.compile_jobs()

    def test_non_component_sweep_skips_reinstantiation(self, monkeypatch):
        import repro.api.spec as spec_module

        spec = component_spec(grid={"n_records": [50, 60, 70]})
        calls = []
        monkeypatch.setattr(
            spec_module.SCHEMES,
            "validate",
            lambda payload: calls.append(payload),
        )
        spec.compile_jobs()
        assert calls == []


class TestRunSpecEngineDefaults:
    def test_engine_kwargs_do_not_enable_caching(self):
        # Regression: run_spec(spec, jobs=1) used to flip the cache on.
        from repro.api.runner import build_engine

        assert build_engine().cache is None
        assert build_engine(jobs=1).cache is None
        assert build_engine(cache=True).cache is not None


class TestRawTaskSeedGuard:
    def test_raw_task_without_seed_rejects_multiple_trials(self):
        with pytest.raises(ValidationError, match="trials"):
            ExperimentSpec(
                name="raw",
                task="repro.experiments.tasks:ablation_samplesize_point",
                points=({"n_records": 100, "data_seed": 1},),
                params={"spectrum": [10.0, 1.0], "noise_std": 5.0,
                        "attack_seed": 3},
                trials=3,
            )

    def test_raw_task_with_seed_allows_multiple_trials(self):
        spec = ExperimentSpec(
            name="raw",
            task="repro.experiments.tasks:ablation_samplesize_point",
            points=({"n_records": 100, "data_seed": 1},),
            params={"spectrum": [10.0, 1.0], "noise_std": 5.0,
                    "attack_seed": 3},
            trials=3,
            seed=9,
        )
        assert [job.seed_path for job in spec.compile_jobs()] == [
            (0, 0), (0, 1), (0, 2),
        ]
