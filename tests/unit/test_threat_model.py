"""Unit tests for repro.core.threat_model."""

import numpy as np
import pytest

from repro.core.threat_model import ThreatModel
from repro.exceptions import ConfigurationError
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.partial_disclosure import (
    ConditionalDisclosureReconstructor,
)
from repro.reconstruction.wiener import WienerSmootherReconstructor


class TestBuildAttacks:
    def test_baseline_model(self):
        attacks = ThreatModel(exploits_correlations=False).build_attacks()
        assert set(attacks) == {"NDR", "UDR"}

    def test_default_includes_correlation_attacks(self):
        attacks = ThreatModel().build_attacks()
        assert {"NDR", "UDR", "SF", "PCA-DR", "BE-DR"} <= set(attacks)
        assert isinstance(attacks["BE-DR"], BayesEstimateReconstructor)

    def test_serial_dependency_adds_wiener(self):
        attacks = ThreatModel(
            exploits_serial_dependency=True
        ).build_attacks()
        assert isinstance(attacks["Wiener"], WienerSmootherReconstructor)

    def test_leak_adds_conditional_attack(self):
        model = ThreatModel(
            leaked_attributes=(0, 2),
            leaked_values=np.zeros((10, 2)),
        )
        attacks = model.build_attacks()
        assert isinstance(
            attacks["BE-DR+leak"], ConditionalDisclosureReconstructor
        )
        assert model.has_leak

    def test_udr_prior_forwarded(self):
        attacks = ThreatModel(udr_prior="reconstructed").build_attacks()
        assert attacks["UDR"].prior_mode == "reconstructed"

    def test_leak_requires_both_fields(self):
        with pytest.raises(ConfigurationError, match="together"):
            ThreatModel(leaked_attributes=(0,))
        with pytest.raises(ConfigurationError, match="together"):
            ThreatModel(leaked_values=np.zeros((5, 1)))

    def test_repr_summarizes_knowledge(self):
        model = ThreatModel(
            exploits_serial_dependency=True,
            leaked_attributes=(1,),
            leaked_values=np.zeros((3, 1)),
        )
        text = repr(model)
        assert "serial" in text and "leak[1]" in text


class TestHash:
    def test_equal_models_hash_equal(self):
        first = ThreatModel(
            leaked_attributes=(0, 2),
            leaked_values=np.arange(6.0).reshape(3, 2),
        )
        second = ThreatModel(
            leaked_attributes=(0, 2),
            leaked_values=np.arange(6.0).reshape(3, 2),
        )
        assert first == second
        assert hash(first) == hash(second)

    def test_distinct_models_usable_as_dict_keys(self):
        baseline = ThreatModel(exploits_correlations=False)
        serial = ThreatModel(exploits_serial_dependency=True)
        table = {baseline: "udr-only", serial: "smoothers"}
        assert table[ThreatModel(exploits_correlations=False)] == "udr-only"
        assert table[ThreatModel(exploits_serial_dependency=True)] == "smoothers"
        assert len({baseline, serial, ThreatModel(exploits_correlations=False)}) == 2

    def test_nan_leaked_values_hash_consistently(self):
        values = np.array([[1.0, float("nan")]])
        first = ThreatModel(leaked_attributes=(0, 1), leaked_values=values)
        second = ThreatModel(
            leaked_attributes=(0, 1), leaked_values=values.copy()
        )
        # values_equal treats NaN == NaN, so hashes must agree too
        # (hash(nan) is id-based on Python >= 3.10).
        assert first == second
        assert hash(first) == hash(second)

    def test_hash_differs_with_fields(self):
        assert hash(ThreatModel(udr_prior="gaussian")) != hash(
            ThreatModel(udr_prior="reconstructed")
        )
