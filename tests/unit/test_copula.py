"""Unit tests for the Gaussian-copula generator."""

import numpy as np
import pytest

from repro.data.copula import GaussianCopulaGenerator
from repro.data.spectra import two_level_spectrum
from repro.exceptions import ValidationError


def _correlation():
    return np.array(
        [
            [1.0, 0.8, 0.6],
            [0.8, 1.0, 0.5],
            [0.6, 0.5, 1.0],
        ]
    )


class TestConstruction:
    def test_from_correlation_matrix(self):
        generator = GaussianCopulaGenerator(_correlation())
        assert generator.n_attributes == 3
        np.testing.assert_allclose(
            generator.latent_correlation, _correlation()
        )

    def test_covariance_normalized_to_correlation(self):
        covariance = 4.0 * _correlation()
        generator = GaussianCopulaGenerator(covariance)
        np.testing.assert_allclose(
            generator.latent_correlation, _correlation(), atol=1e-12
        )

    def test_from_spectrum(self):
        spectrum = two_level_spectrum(8, 2, total_variance=800.0)
        generator = GaussianCopulaGenerator.from_spectrum(
            spectrum, marginal="uniform", rng=0
        )
        assert generator.n_attributes == 8
        assert generator.marginal == "uniform"

    def test_rejects_unknown_marginal(self):
        with pytest.raises(ValidationError, match="marginal"):
            GaussianCopulaGenerator(_correlation(), marginal="cauchy")

    def test_rejects_bad_target_std(self):
        with pytest.raises(ValidationError):
            GaussianCopulaGenerator(_correlation(), target_std=0.0)


class TestSampling:
    @pytest.mark.parametrize(
        "marginal", ["normal", "lognormal", "uniform", "bimodal"]
    )
    def test_standardization(self, marginal):
        generator = GaussianCopulaGenerator(
            _correlation(), marginal=marginal, target_std=3.0
        )
        samples = generator.sample(60000, rng=0)
        np.testing.assert_allclose(
            samples.mean(axis=0), np.zeros(3), atol=0.15
        )
        np.testing.assert_allclose(
            samples.std(axis=0), np.full(3, 3.0), rtol=0.05
        )

    def test_normal_marginal_is_exactly_gaussian(self):
        generator = GaussianCopulaGenerator(
            _correlation(), marginal="normal", target_std=2.0
        )
        samples = generator.sample(50000, rng=1)
        # Fourth standardized moment (kurtosis) of a Gaussian is 3.
        z = samples[:, 0] / samples[:, 0].std()
        assert np.mean(z**4) == pytest.approx(3.0, abs=0.2)

    def test_lognormal_marginal_is_right_skewed(self):
        generator = GaussianCopulaGenerator(
            _correlation(), marginal="lognormal"
        )
        samples = generator.sample(50000, rng=2)
        z = samples[:, 0]
        skew = np.mean(((z - z.mean()) / z.std()) ** 3)
        assert skew > 1.0

    def test_bimodal_marginal_has_two_modes(self):
        generator = GaussianCopulaGenerator(
            _correlation(), marginal="bimodal", target_std=1.0
        )
        samples = generator.sample(50000, rng=3)
        z = samples[:, 0]
        # Mass concentrates away from zero symmetrically.
        near_zero = np.mean(np.abs(z) < 0.3)
        assert near_zero < 0.1
        assert abs(np.mean(z > 0) - 0.5) < 0.02

    def test_uniform_marginal_is_bounded(self):
        generator = GaussianCopulaGenerator(
            _correlation(), marginal="uniform", target_std=1.0
        )
        samples = generator.sample(20000, rng=4)
        halfwidth = np.sqrt(3.0)
        assert samples.min() >= -halfwidth - 1e-6
        assert samples.max() <= halfwidth + 1e-6

    @pytest.mark.parametrize(
        "marginal", ["lognormal", "uniform", "bimodal"]
    )
    def test_rank_correlation_preserved(self, marginal):
        """Monotone transforms keep Spearman correlation of the copula."""
        generator = GaussianCopulaGenerator(
            _correlation(), marginal=marginal
        )
        samples = generator.sample(40000, rng=5)
        # Spearman via rank transform + Pearson.
        ranks = np.argsort(np.argsort(samples, axis=0), axis=0).astype(
            float
        )
        spearman = np.corrcoef(ranks, rowvar=False)[0, 1]
        # Expected Spearman for latent rho = 0.8:
        expected = 6.0 / np.pi * np.arcsin(0.8 / 2.0)
        assert spearman == pytest.approx(expected, abs=0.03)

    def test_deterministic_given_seed(self):
        generator = GaussianCopulaGenerator(
            _correlation(), marginal="bimodal"
        )
        np.testing.assert_array_equal(
            generator.sample(100, rng=9), generator.sample(100, rng=9)
        )
