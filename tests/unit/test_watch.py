"""Unit tests for the ``repro watch`` dashboard renderer and loop."""

import io
import json

import pytest

from repro.exceptions import ValidationError
from repro.telemetry.watch import STALE_AFTER, render_watch, watch_loop


def _ring(snapshots, *, updated=1000.0, schema="repro-metrics/v1"):
    return {
        "schema": schema,
        "interval_s": 0.5,
        "ring": 120,
        "updated_unix": updated,
        "snapshots": snapshots,
    }


def _snapshot(*, counters=None, gauges=None, progress=None, ts=1000.0):
    snap = {
        "ts_unix": ts,
        "counters": counters or {},
        "gauges": gauges or {},
    }
    if progress is not None:
        snap["progress"] = progress
    return snap


class TestRenderWatch:
    def test_render_is_deterministic_for_a_fixed_now(self):
        document = _ring(
            [
                _snapshot(
                    counters={"kernel.em.fit.fits": 4},
                    gauges={
                        "kernel.em.fit.iterations": 9.0,
                        "kernel.em.fit.objective": -1.75,
                        "kernel.em.fit.converged": 1.0,
                    },
                    progress={
                        "total": 8,
                        "completed": 4,
                        "cached": 1,
                        "rate_jobs_per_s": 2.0,
                        "eta_s": 2.0,
                    },
                )
            ]
        )
        first = render_watch(document, now=1002.0)
        second = render_watch(document, now=1002.0)
        assert first == second
        assert "repro watch  repro-metrics/v1  (1 snapshot(s)" in first
        assert "4/8 jobs (1 cached)" in first
        assert "2.0 jobs/s" in first
        assert "eta" in first
        assert "em.fit" in first
        assert "ok" in first

    def test_empty_ring_renders_a_placeholder(self):
        frame = render_watch(_ring([]), now=1001.0)
        assert "(0 snapshot(s)" in frame
        assert "(no snapshots yet)" in frame

    def test_missing_updated_unix_omits_the_age(self):
        frame = render_watch({"schema": "repro-metrics/v1", "snapshots": []})
        assert "ago" not in frame

    def test_fresh_ring_is_not_stale(self):
        frame = render_watch(_ring([], updated=1000.0), now=1000.0 + 2)
        assert "stale" not in frame

    def test_old_ring_is_labelled_stale(self):
        frame = render_watch(
            _ring([], updated=1000.0), now=1000.0 + STALE_AFTER + 5
        )
        assert "stale" in frame

    def test_complete_run_says_so(self):
        document = _ring(
            [_snapshot(progress={"total": 6, "completed": 6, "cached": 0})]
        )
        frame = render_watch(document, now=1001.0)
        assert "6/6 jobs" in frame
        assert "run complete" in frame
        assert "eta" not in frame

    def test_rate_trend_spans_the_ring(self):
        snapshots = [
            _snapshot(
                ts=1000.0 + tick,
                progress={
                    "total": 10,
                    "completed": tick,
                    "cached": 0,
                    "rate_jobs_per_s": float(tick),
                },
            )
            for tick in range(5)
        ]
        frame = render_watch(_ring(snapshots), now=1010.0)
        assert "rate trend" in frame

    def test_resource_gauges_render(self):
        document = _ring(
            [
                _snapshot(
                    gauges={
                        "resource.rss_bytes": 50 * 2**20,
                        "resource.rss_peak_bytes": 80 * 2**20,
                        "resource.workers.rss_peak_bytes": 30 * 2**20,
                        "resource.worker.1.rss_peak_bytes": 30 * 2**20,
                        "resource.worker.2.rss_peak_bytes": 25 * 2**20,
                    }
                )
            ]
        )
        frame = render_watch(document, now=1001.0)
        assert "resources:" in frame
        assert "parent" in frame
        assert "across 2 worker(s)" in frame

    @pytest.mark.parametrize(
        "gauges,counters,state",
        [
            ({"kernel.k.converged": 1.0}, {}, "ok"),
            ({"kernel.k.converged": 0.0}, {}, "fitting"),
            ({}, {"kernel.k.nonconverged": 1}, "DIVERGED"),
            ({}, {"kernel.k.nonfinite": 2}, "NONFINITE"),
        ],
    )
    def test_kernel_state_logic(self, gauges, counters, state):
        counters = {"kernel.k.fits": 1, **counters}
        document = _ring([_snapshot(counters=counters, gauges=gauges)])
        frame = render_watch(document, now=1001.0)
        assert state in frame

    def test_nonfinite_outranks_nonconverged(self):
        document = _ring(
            [
                _snapshot(
                    counters={
                        "kernel.k.nonfinite": 1,
                        "kernel.k.nonconverged": 1,
                    }
                )
            ]
        )
        frame = render_watch(document, now=1001.0)
        assert "NONFINITE" in frame
        assert "DIVERGED" not in frame

    def test_non_dict_document_raises(self):
        with pytest.raises(ValidationError, match="must be a dict"):
            render_watch(["not", "a", "dict"])


class TestWatchLoop:
    def test_once_renders_a_finished_ring(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(
                _ring(
                    [
                        _snapshot(
                            progress={
                                "total": 2,
                                "completed": 2,
                                "cached": 0,
                            }
                        )
                    ]
                )
            )
        )
        stream = io.StringIO()
        assert watch_loop(path, stream, once=True) == 0
        output = stream.getvalue()
        assert "repro watch" in output
        assert "run complete" in output
        assert "\x1b[" not in output  # no ANSI control codes off-tty

    def test_once_missing_file_exits_nonzero(self, tmp_path):
        stream = io.StringIO()
        code = watch_loop(tmp_path / "absent.json", stream, once=True)
        assert code == 1
        assert "no such metrics file" in stream.getvalue()

    def test_once_unparseable_file_exits_nonzero(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"schema": "repro-met')
        stream = io.StringIO()
        assert watch_loop(path, stream, once=True) == 1
        assert "cannot read metrics ring" in stream.getvalue()

    def test_invalid_interval_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="interval"):
            watch_loop(tmp_path / "m.json", io.StringIO(), interval=0)
