"""Unit tests for repro.mining.naive_bayes."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.mining.naive_bayes import GaussianNaiveBayes, utility_report
from repro.randomization.additive import AdditiveNoiseScheme


def _two_class_data(n=3000, seed=0, separation=4.0):
    rng = np.random.default_rng(seed)
    half = n // 2
    class0 = rng.normal(0.0, 1.0, size=(half, 3))
    class1 = rng.normal(separation, 1.0, size=(half, 3))
    features = np.vstack([class0, class1])
    labels = np.array([0] * half + [1] * half)
    order = rng.permutation(n)
    return features[order], labels[order]


class TestGaussianNaiveBayes:
    def test_separable_classes_high_accuracy(self):
        features, labels = _two_class_data()
        model = GaussianNaiveBayes().fit(features, labels)
        assert model.accuracy(features, labels) > 0.97

    def test_predict_returns_original_labels(self):
        features, labels = _two_class_data(n=200)
        model = GaussianNaiveBayes().fit(features, labels)
        assert set(np.unique(model.predict(features))) <= {0, 1}

    def test_log_joint_shape(self):
        features, labels = _two_class_data(n=100)
        model = GaussianNaiveBayes().fit(features, labels)
        assert model.log_joint(features).shape == (100, 2)

    def test_priors_affect_decisions(self):
        rng = np.random.default_rng(1)
        # 90/10 class imbalance with overlapping features.
        features = rng.normal(0.0, 1.0, size=(1000, 1))
        labels = (rng.random(1000) < 0.1).astype(int)
        model = GaussianNaiveBayes().fit(features, labels)
        predictions = model.predict(features)
        # The majority class must dominate ambiguous predictions.
        assert np.mean(predictions == 0) > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianNaiveBayes().predict(np.zeros((2, 2)))

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError, match="two classes"):
            GaussianNaiveBayes().fit(np.zeros((10, 2)), np.zeros(10))

    def test_label_count_mismatch(self):
        with pytest.raises(ValidationError):
            GaussianNaiveBayes().fit(np.zeros((10, 2)), np.zeros(5))

    def test_feature_dim_mismatch_at_predict(self):
        features, labels = _two_class_data(n=100)
        model = GaussianNaiveBayes().fit(features, labels)
        with pytest.raises(ValidationError, match="attributes"):
            model.predict(np.zeros((5, 7)))

    def test_tiny_class_rejected(self):
        features = np.zeros((5, 2))
        labels = np.array([0, 0, 0, 0, 1])
        with pytest.raises(ValidationError, match="fewer than 2"):
            GaussianNaiveBayes().fit(features, labels)


class TestFitDisguised:
    def test_moment_correction_restores_accuracy(self):
        """The Section 8.1 utility claim, in classifier form."""
        features, labels = _two_class_data(n=6000, separation=3.0)
        test_features, test_labels = _two_class_data(n=3000, seed=99,
                                                     separation=3.0)
        scheme = AdditiveNoiseScheme(std=3.0)
        disguised = scheme.disguise(features, rng=2).disguised

        report = utility_report(
            features,
            disguised,
            labels,
            test_features,
            test_labels,
            noise_covariance=9.0 * np.eye(3),
        )
        # Corrected model must roughly match the oracle; the naive model
        # (noise-inflated variances) must not beat the corrected one.
        assert report["disguised_corrected"] >= report["original"] - 0.03
        assert (
            report["disguised_corrected"] >= report["disguised_naive"] - 0.01
        )

    def test_corrected_variances_smaller_than_naive(self):
        features, labels = _two_class_data(n=2000)
        disguised = AdditiveNoiseScheme(std=3.0).disguise(
            features, rng=3
        ).disguised
        naive = GaussianNaiveBayes().fit(disguised, labels)
        corrected = GaussianNaiveBayes().fit_disguised(
            disguised, labels, 9.0 * np.eye(3)
        )
        assert np.all(corrected._variances <= naive._variances + 1e-9)
