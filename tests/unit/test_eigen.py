"""Unit tests for repro.linalg.eigen."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.eigen import (
    eigen_gap_split,
    sorted_eigh,
    spectrum_energy_fraction,
)


def _example_matrix():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((6, 6))
    return a @ a.T + np.eye(6)


class TestSortedEigh:
    def test_eigenvalues_descending(self):
        decomposition = sorted_eigh(_example_matrix())
        assert np.all(np.diff(decomposition.values) <= 1e-12)

    def test_eigenpairs_satisfy_definition(self):
        matrix = _example_matrix()
        decomposition = sorted_eigh(matrix)
        for k in range(matrix.shape[0]):
            vector = decomposition.vectors[:, k]
            np.testing.assert_allclose(
                matrix @ vector,
                decomposition.values[k] * vector,
                atol=1e-9,
            )

    def test_vectors_orthonormal(self):
        decomposition = sorted_eigh(_example_matrix())
        gram = decomposition.vectors.T @ decomposition.vectors
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-10)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            sorted_eigh([[1.0, 2.0], [0.0, 1.0]])


class TestEigenDecomposition:
    def test_full_reconstruct_matches(self):
        matrix = _example_matrix()
        decomposition = sorted_eigh(matrix)
        np.testing.assert_allclose(
            decomposition.reconstruct(), matrix, atol=1e-9
        )

    def test_truncated_reconstruct_is_best_low_rank(self):
        matrix = _example_matrix()
        decomposition = sorted_eigh(matrix)
        rank2 = decomposition.reconstruct(rank=2)
        # Residual energy equals the sum of squared dropped eigenvalues.
        residual = np.linalg.norm(matrix - rank2, "fro") ** 2
        expected = float(np.sum(decomposition.values[2:] ** 2))
        assert residual == pytest.approx(expected, rel=1e-9)

    def test_projector_is_idempotent(self):
        decomposition = sorted_eigh(_example_matrix())
        projector = decomposition.projector(3)
        np.testing.assert_allclose(projector @ projector, projector, atol=1e-10)
        assert np.trace(projector) == pytest.approx(3.0, abs=1e-9)

    def test_projector_rank_bounds(self):
        decomposition = sorted_eigh(_example_matrix())
        with pytest.raises(ValidationError):
            decomposition.projector(0)
        with pytest.raises(ValidationError):
            decomposition.projector(7)

    def test_reconstruct_rank_bounds(self):
        decomposition = sorted_eigh(_example_matrix())
        with pytest.raises(ValidationError):
            decomposition.reconstruct(rank=0)

    def test_dim(self):
        assert sorted_eigh(_example_matrix()).dim == 6


class TestEigenGapSplit:
    def test_two_level_spectrum_finds_true_split(self):
        values = np.array([400.0, 400.0, 400.0, 4.0, 4.0, 4.0, 4.0])
        assert eigen_gap_split(values) == 3

    def test_flat_spectrum_keeps_everything(self):
        # Zero-sentinel rule: no interior gap beats the drop to zero.
        values = np.full(8, 100.0)
        assert eigen_gap_split(values) == 8

    def test_single_value(self):
        assert eigen_gap_split([5.0]) == 1

    def test_max_rank_caps_selection(self):
        values = np.array([100.0, 90.0, 1.0, 0.5])
        assert eigen_gap_split(values) == 2
        assert eigen_gap_split(values, max_rank=1) == 1

    def test_rejects_ascending_input(self):
        with pytest.raises(ValidationError, match="descending"):
            eigen_gap_split([1.0, 2.0, 3.0])

    def test_rejects_bad_max_rank(self):
        with pytest.raises(ValidationError):
            eigen_gap_split([3.0, 2.0], max_rank=0)

    def test_decaying_spectrum_splits_at_biggest_drop(self):
        values = np.array([100.0, 60.0, 59.0, 58.0, 5.0, 4.0])
        assert eigen_gap_split(values) == 4


class TestSpectrumEnergyFraction:
    def test_half_energy(self):
        values = np.array([50.0, 30.0, 20.0])
        assert spectrum_energy_fraction(values, 0.5) == 1
        assert spectrum_energy_fraction(values, 0.8) == 2
        assert spectrum_energy_fraction(values, 1.0) == 3

    def test_tiny_fraction_keeps_one(self):
        assert spectrum_energy_fraction([10.0, 1.0], 0.01) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            spectrum_energy_fraction([1.0], 0.0)
        with pytest.raises(ValidationError):
            spectrum_energy_fraction([1.0], 1.5)

    def test_rejects_zero_energy(self):
        with pytest.raises(ValidationError):
            spectrum_energy_fraction([0.0, 0.0], 0.5)

    def test_negative_values_clipped(self):
        # Slightly negative estimates behave as zero energy.
        assert spectrum_energy_fraction([10.0, -0.5], 0.99) == 1
