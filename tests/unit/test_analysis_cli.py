"""Unit tests for the ``repro check`` CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def dirty_tree(tmp_path):
    """A directory with one violation and one suppressed violation."""
    path = tmp_path / "mod.py"
    path.write_text(
        "def check(x):\n"
        "    return x == 0.5\n"
        "\n"
        "def guard(y):\n"
        "    return y == 0.0  # repro: ignore[float-eq] exact guard\n"
    )
    return tmp_path


@pytest.fixture()
def clean_tree(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("def check(x):\n    return abs(x - 0.5) < 1e-12\n")
    return tmp_path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.experiment == "check"
        assert args.paths == []
        assert args.rules is None
        assert args.json is None
        assert args.fix_hints is False
        assert args.list_rules is False

    def test_json_flag_without_value_means_stdout(self):
        args = build_parser().parse_args(["check", "src", "--json"])
        assert args.json == "-"
        assert args.paths == ["src"]

    def test_json_flag_with_file(self):
        args = build_parser().parse_args(["check", "--json", "out.json"])
        assert args.json == "out.json"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys, clean_tree):
        assert main(["check", str(clean_tree)]) == 0
        assert "repro check: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys, dirty_tree):
        assert main(["check", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "warning[float-eq]" in out
        assert "(1 suppressed)" in out

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["check", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys, dirty_tree):
        assert main(["check", str(dirty_tree), "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_empty_rules_list_exits_two(self, capsys, dirty_tree):
        assert main(["check", str(dirty_tree), "--rules", " , "]) == 2
        assert "empty" in capsys.readouterr().err


class TestOutput:
    def test_rules_filter_limits_the_run(self, capsys, dirty_tree):
        assert main(["check", str(dirty_tree), "--rules", "global-rng"]) == 0
        assert "repro check: clean" in capsys.readouterr().out

    def test_json_to_stdout(self, capsys, dirty_tree):
        assert main(["check", str(dirty_tree), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "repro-check/v1"
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["suppressed"] == 1

    def test_json_to_file_keeps_text_on_stdout(self, capsys, dirty_tree):
        target = dirty_tree / "report.json"
        code = main(["check", str(dirty_tree / "mod.py"), "--json", str(target)])
        assert code == 1
        captured = capsys.readouterr()
        assert "warning[float-eq]" in captured.out
        assert "wrote report" in captured.err
        payload = json.loads(target.read_text())
        assert payload["summary"]["ok"] is False

    def test_fix_hints(self, capsys, dirty_tree):
        assert main(["check", str(dirty_tree), "--fix-hints"]) == 1
        assert "hint:" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for key in ("global-rng", "wall-clock", "ndarray-eq", "bare-lock"):
            assert key in out
