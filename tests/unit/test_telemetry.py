"""Unit tests for the telemetry subsystem.

Covers the span primitives, the thread-safe recorder (including
cross-process fragment adoption), the ``trace`` facade's disabled fast
path, the ``repro-trace/v1`` schema validator, run manifests, the
ASCII viewer, and the <2% disabled-hook overhead budget.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.telemetry import (
    MANIFEST_KIND,
    Recorder,
    Span,
    TRACE_SCHEMA,
    build_manifest,
    format_seconds,
    render_trace,
    sparkline,
    spec_fingerprint,
    trace,
    validate_trace,
    write_trace,
)


# ----------------------------------------------------------------------
# Span


class TestSpan:
    def test_begin_finish_records_timing(self):
        span = Span("work").begin()
        time.sleep(0.002)
        span.finish()
        assert span.duration >= 0.002
        assert span.start_unix > 0
        assert span.end_unix == pytest.approx(
            span.start_unix + span.duration
        )

    def test_set_merges_attributes(self):
        span = Span("work", {"a": 1})
        span.set(b=2).set(a=3)
        assert span.attrs == {"a": 3, "b": 2}

    def test_iter_spans_is_depth_first_preorder(self):
        root = Span("root")
        child = Span("child")
        grandchild = Span("grandchild")
        child.children.append(grandchild)
        root.children.extend([child, Span("sibling")])
        names = [span.name for span in root.iter_spans()]
        assert names == ["root", "child", "grandchild", "sibling"]

    def test_self_time_subtracts_children(self):
        root = Span("root")
        root.duration = 1.0
        child = Span("child")
        child.duration = 0.3
        root.children.append(child)
        assert root.self_time() == pytest.approx(0.7)

    def test_dict_round_trip(self):
        root = Span("root", {"n": 10}).begin()
        child = Span("child").begin()
        child.finish()
        root.children.append(child)
        root.finish()
        restored = Span.from_dict(root.to_dict())
        assert restored.to_dict() == root.to_dict()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValidationError):
            Span.from_dict({"no": "name"})
        with pytest.raises(ValidationError):
            Span.from_dict("not a dict")


# ----------------------------------------------------------------------
# Recorder


class TestRecorder:
    def test_nesting_builds_a_tree(self):
        recorder = Recorder()
        outer = recorder.begin_span("outer")
        inner = recorder.begin_span("inner")
        recorder.end_span(inner)
        recorder.end_span(outer)
        assert [span.name for span in recorder.roots] == ["outer"]
        assert [span.name for span in outer.children] == ["inner"]

    def test_unbalanced_end_raises(self):
        recorder = Recorder()
        outer = recorder.begin_span("outer")
        recorder.begin_span("inner")
        with pytest.raises(ValidationError):
            recorder.end_span(outer)

    def test_threads_get_separate_roots(self):
        recorder = Recorder()

        def worker():
            span = recorder.begin_span("thread-span")
            recorder.end_span(span)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder.roots) == 4

    def test_counters_and_gauges(self):
        recorder = Recorder()
        recorder.count("hits")
        recorder.count("hits", 2)
        recorder.gauge("depth", 3.0)
        recorder.gauge("depth", 1.0)
        assert recorder.counters == {"hits": 3}
        assert recorder.gauges == {"depth": 1.0}

    def test_export_fragment_single_root(self):
        recorder = Recorder()
        span = recorder.begin_span("job")
        recorder.end_span(span)
        recorder.count("cache.miss")
        fragment = recorder.export_fragment()
        assert fragment["span"]["name"] == "job"
        assert fragment["counters"] == {"cache.miss": 1}

    def test_export_fragment_multi_root_synthesizes_container(self):
        recorder = Recorder()
        for _ in range(2):
            span = recorder.begin_span("job")
            recorder.end_span(span)
        fragment = recorder.export_fragment()
        assert fragment["span"]["name"] == "worker"
        assert len(fragment["span"]["children"]) == 2

    def test_adopt_grafts_under_current_span(self):
        worker = Recorder()
        span = worker.begin_span("remote-job")
        worker.end_span(span)
        worker.count("pipeline.records", 100)

        parent = Recorder()
        run = parent.begin_span("run")
        parent.adopt(worker.export_fragment())
        parent.end_span(run)
        assert [child.name for child in run.children] == ["remote-job"]
        assert parent.counters == {"pipeline.records": 100}

    def test_adopt_without_open_span_becomes_root(self):
        worker = Recorder()
        span = worker.begin_span("remote-job")
        worker.end_span(span)
        parent = Recorder()
        parent.adopt(worker.export_fragment())
        assert [root.name for root in parent.roots] == ["remote-job"]

    def test_adopt_rejects_non_dict(self):
        with pytest.raises(ValidationError):
            Recorder().adopt([1, 2])

    def test_to_document_is_valid(self):
        recorder = Recorder()
        span = recorder.begin_span("run", {"n": 3})
        recorder.end_span(span)
        recorder.count("hits")
        recorder.gauge("load", 0.5)
        document = recorder.to_document()
        assert document["schema"] == TRACE_SCHEMA
        validate_trace(document)


# ----------------------------------------------------------------------
# trace facade


class TestTraceFacade:
    def test_disabled_by_default(self):
        assert not trace.enabled()
        assert trace.active_recorder() is None
        assert trace.current_span() is None
        # No-ops must not raise.
        trace.count("x")
        trace.gauge("y", 1.0)
        trace.adopt(None)

    def test_disabled_span_is_shared_singleton(self):
        first = trace.span("a", n=1)
        second = trace.span("b")
        assert first is second  # no per-call allocation when off
        with first as span:
            span.set(anything=1)  # accepted and ignored

    def test_recording_activates_and_restores(self):
        recorder = Recorder()
        with trace.recording(recorder) as active:
            assert active is recorder
            assert trace.enabled()
            with trace.span("step", n=2) as span:
                span.set(extra=True)
        assert not trace.enabled()
        assert recorder.roots[0].attrs == {"n": 2, "extra": True}

    def test_recording_creates_recorder_when_omitted(self):
        with trace.recording() as recorder:
            with trace.span("x"):
                pass
        assert [root.name for root in recorder.roots] == ["x"]

    def test_recording_nests(self):
        outer, inner = Recorder(), Recorder()
        with trace.recording(outer):
            with trace.recording(inner):
                with trace.span("deep"):
                    pass
            assert trace.active_recorder() is outer
        assert not outer.roots
        assert [root.name for root in inner.roots] == ["deep"]

    def test_disabled_context_suppresses_recording(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.disabled():
                assert not trace.enabled()
                with trace.span("hidden"):
                    pass
            assert trace.enabled()
        assert not recorder.roots

    def test_exception_annotates_span_and_propagates(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with trace.recording(recorder):
                with trace.span("boom"):
                    raise RuntimeError("nope")
        span = recorder.roots[0]
        assert span.attrs["error"] == "RuntimeError"
        assert span.duration >= 0.0


# ----------------------------------------------------------------------
# schema


def _minimal_document():
    return {
        "schema": TRACE_SCHEMA,
        "created_unix": 1.0,
        "spans": [
            {
                "name": "run",
                "start_unix": 1.0,
                "duration": 0.5,
                "attrs": {"n": 1},
                "children": [],
            }
        ],
        "counters": {"hits": 2},
        "gauges": {},
        "manifest": None,
    }


class TestSchema:
    def test_accepts_minimal_document(self):
        validate_trace(_minimal_document())

    def test_rejects_foreign_schema_tag(self):
        document = _minimal_document()
        document["schema"] = "something-else/v1"
        with pytest.raises(ValidationError, match="schema"):
            validate_trace(document)

    def test_unknown_family_version_downgrades_to_warning(self):
        # Forward compatibility: a future repro-trace/* version is a
        # named warning, not a failure (structural checks are skipped).
        document = _minimal_document()
        document["schema"] = "repro-trace/v0"
        warnings = []
        validate_trace(document, warnings=warnings)
        assert len(warnings) == 1
        assert warnings[0].startswith("unknown-schema-version")

    def test_rejects_missing_top_level_key(self):
        document = _minimal_document()
        del document["counters"]
        with pytest.raises(ValidationError, match="counters"):
            validate_trace(document)

    def test_rejects_unknown_span_field(self):
        document = _minimal_document()
        document["spans"][0]["color"] = "red"
        with pytest.raises(ValidationError, match="color"):
            validate_trace(document)

    def test_rejects_bad_span_types(self):
        document = _minimal_document()
        document["spans"][0]["duration"] = "fast"
        with pytest.raises(ValidationError, match="duration"):
            validate_trace(document)

    def test_collects_every_problem(self):
        document = _minimal_document()
        document["spans"][0]["duration"] = "fast"
        document["counters"] = {"hits": "two"}
        with pytest.raises(ValidationError) as excinfo:
            validate_trace(document)
        message = str(excinfo.value)
        assert "duration" in message and "hits" in message

    def test_rejects_bad_manifest_rows(self):
        document = _minimal_document()
        document["manifest"] = {
            "kind": MANIFEST_KIND,
            "jobs": [{"key": 7, "duration": 0.1, "cached": False}],
        }
        with pytest.raises(ValidationError, match="key"):
            validate_trace(document)

    def test_round_trip_through_json(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("outer", n=2):
                with trace.span("inner"):
                    pass
        document = recorder.to_document()
        restored = json.loads(json.dumps(document))
        validate_trace(restored)
        assert restored["spans"] == document["spans"]


# ----------------------------------------------------------------------
# manifest


class TestManifest:
    def _spec(self):
        from repro.api.spec import ExperimentSpec

        return ExperimentSpec(
            name="manifest-test",
            task="repro.api.tasks:attack_point",
            params={
                "dataset": {"kind": "synthetic", "spectrum": [50.0, 10.0]},
                "scheme": {"kind": "additive", "std": 2.0},
                "attacks": {"UDR": {"kind": "udr"}},
                "n_records": 50,
            },
            grid={"scheme.std": [1.0, 2.0]},
            trials=2,
            seed=11,
        )

    def test_fingerprint_is_deterministic_and_content_sensitive(self):
        import dataclasses

        spec = self._spec()
        again = self._spec()
        assert spec_fingerprint(spec) == spec_fingerprint(again)
        other = dataclasses.replace(spec, seed=12)
        assert spec_fingerprint(other) != spec_fingerprint(spec)

    def test_build_manifest_is_deterministic(self):
        spec = self._spec()
        first = build_manifest(spec=spec)
        second = build_manifest(spec=spec)
        assert first == second
        assert first["kind"] == MANIFEST_KIND
        assert first["spec"]["name"] == "manifest-test"
        assert len(first["jobs"]) == 4  # 2 points x 2 trials

    def test_rows_join_by_cache_key(self):
        spec = self._spec()
        jobs = spec.compile_jobs()
        rows = [
            {"key": job.key(), "duration": 0.25, "cached": index % 2 == 0}
            for index, job in enumerate(jobs)
        ]
        manifest = build_manifest(spec=spec, rows=rows)
        assert all("duration" in entry for entry in manifest["jobs"])
        assert [entry["cached"] for entry in manifest["jobs"]] == [
            True,
            False,
            True,
            False,
        ]
        # Seed lineage rides along for every job.
        assert all(
            entry["seed_root"] == 11 and len(entry["seed_path"]) == 2
            for entry in manifest["jobs"]
        )

    def test_rows_without_spec(self):
        manifest = build_manifest(
            rows=[{"key": "bench.case", "duration": 0.5, "cached": False}]
        )
        assert manifest["jobs"] == [
            {"key": "bench.case", "duration": 0.5, "cached": False}
        ]

    def test_manifest_validates_inside_document(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("run"):
                pass
        document = recorder.to_document(manifest=build_manifest(spec=self._spec()))
        validate_trace(document)


# ----------------------------------------------------------------------
# viewer + write_trace


class TestViewer:
    def test_format_seconds_units(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0421) == "42.1ms"
        assert format_seconds(0.0000071) == "7us"

    def test_render_trace_shows_tree_and_counters(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("engine.run", jobs=1):
                with trace.span(
                    "engine.job", task="demo", cached=False
                ):
                    pass
            trace.count("cache.miss")
        text = render_trace(recorder.to_document())
        assert "engine.run" in text
        assert "engine.job" in text
        assert "cache.miss=1" in text
        assert "self-time by span name" in text

    def test_render_trace_depth_limit(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("alpha"):
                with trace.span("beta"):
                    with trace.span("gamma"):
                        pass
        tree = render_trace(
            recorder.to_document(), max_depth=1
        ).split("self-time")[0]
        assert "beta" in tree
        assert "gamma" not in tree
        assert "hidden" in tree

    def test_write_trace_validates_and_writes(self, tmp_path):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("run"):
                pass
        target = tmp_path / "trace.json"
        written = write_trace(recorder.to_document(), target)
        assert written == target
        validate_trace(json.loads(target.read_text()))

    def test_write_trace_rejects_invalid_document(self, tmp_path):
        target = tmp_path / "trace.json"
        with pytest.raises(ValidationError):
            write_trace({"schema": "bogus"}, target)
        assert not target.exists()


class TestViewerEdgeCases:
    """Degenerate documents the viewer must render without crashing."""

    def test_empty_trace(self):
        recorder = Recorder()
        text = render_trace(recorder.to_document())
        assert "(no spans recorded)" in text

    def test_all_cached_zero_duration_spans(self):
        # A fully-cached rerun: every engine.job is a zero-length
        # provenance marker, so the percentage column divides by a
        # zero total and the slowest-job chart ranks zero-height bars.
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("engine.run", jobs=2) as run:
                for index in range(2):
                    with trace.span(
                        "engine.job",
                        key=f"k{index}",
                        cached=True,
                        original_duration=1.5,
                    ) as job:
                        pass
                    job.duration = 0.0
            run.duration = 0.0
        document = recorder.to_document()
        validate_trace(document)
        text = render_trace(document)
        assert "engine.job" in text
        assert "cached=True" in text

    def test_adopted_fragment_with_missing_parent(self):
        # A worker fragment adopted after its engine.run span already
        # closed (e.g. late-arriving straggler): it becomes an extra
        # root and must render as its own tree.
        recorder = Recorder()
        worker = Recorder()
        with trace.recording(worker):
            with trace.span("engine.job", key="orphan", worker=12345):
                pass
        with trace.recording(recorder):
            with trace.span("engine.run"):
                pass
            recorder.adopt(worker.export_fragment())
        document = recorder.to_document()
        validate_trace(document)
        assert len(document["spans"]) == 2
        text = render_trace(document)
        assert "engine.run" in text
        assert "worker=12345" in text

    def test_format_bytes_units(self):
        from repro.telemetry.viewer import format_bytes

        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024**2) == "3.0MiB"
        assert format_bytes(1.5 * 1024**3) == "1.5GiB"

    def test_resource_gauges_render_as_section(self):
        recorder = Recorder()
        recorder.gauge("engine.workers", 2.0)
        recorder.gauge("resource.rss_peak_bytes", 64.0 * 1024**2)
        recorder.gauge("resource.cpu_seconds", 1.25)
        recorder.gauge("resource.shm_peak_bytes", 1024.0**2)
        recorder.gauge("resource.shm_bytes", 0.0)
        recorder.gauge("resource.worker.123.rss_peak_bytes", 32.0 * 1024**2)
        recorder.gauge("resource.worker.123.cpu_seconds", 0.5)
        text = render_trace(recorder.to_document())
        assert "resources:" in text
        assert "64.0MiB" in text
        # The raw byte gauges stay off the generic gauges line.
        gauges_line = next(
            line for line in text.splitlines() if line.startswith("gauges:")
        )
        assert "resource." not in gauges_line
        assert "engine.workers=2" in gauges_line
        # Per-worker table row keyed by PID.
        assert "123" in text
        assert "32.0MiB" in text


# ----------------------------------------------------------------------
# overhead budget


class TestOverheadBudget:
    def test_disabled_hook_within_two_percent_of_em_fit(self):
        """The ISSUE's <2% ceiling, with ~2 orders of magnitude margin.

        An EM fit contains exactly one span hook, so "overhead under
        2%" means per-hook cost < 2% of the fit's runtime.  The hook is
        ~200ns and the fit milliseconds, so this only fails if the
        disabled path regresses catastrophically (e.g. starts
        allocating or serializing).
        """
        from repro.stats.em import UnivariateGaussianMixtureEM

        assert not trace.enabled()

        rng = np.random.default_rng(1105)
        samples = np.concatenate(
            [rng.normal(-2.0, 0.6, 1200), rng.normal(3.0, 1.0, 800)]
        )
        em = UnivariateGaussianMixtureEM(2)
        em.fit(samples, rng=np.random.default_rng(7))  # warmup
        started = time.perf_counter()
        em.fit(samples, rng=np.random.default_rng(7))
        fit_seconds = time.perf_counter() - started

        calls = 10_000
        started = time.perf_counter()
        for _ in range(calls):
            with trace.span("noop"):
                pass
        per_call = (time.perf_counter() - started) / calls

        assert per_call < 0.02 * fit_seconds

    def test_disabled_span_does_not_allocate_contexts(self):
        spans = {id(trace.span("a")) for _ in range(32)}
        assert len(spans) == 1  # always the shared NULL_SPAN singleton

    def test_disabled_tracker_hook_within_two_percent_of_em_fit(self):
        """The convergence layer's share of the <2% disabled budget.

        Every instrumented kernel iteration pays one ``enabled`` probe
        and (when the guard is mis-skipped) one no-op ``record()``;
        both together must stay far inside 2% of an EM fit's runtime.
        Mirrored on the record by ``telemetry.tracker_overhead.smoke``.
        """
        from repro.stats.em import UnivariateGaussianMixtureEM

        assert not trace.enabled()
        tracker = trace.iterations("noop")

        rng = np.random.default_rng(1105)
        samples = np.concatenate(
            [rng.normal(-2.0, 0.6, 1200), rng.normal(3.0, 1.0, 800)]
        )
        em = UnivariateGaussianMixtureEM(2)
        em.fit(samples, rng=np.random.default_rng(7))  # warmup
        started = time.perf_counter()
        em.fit(samples, rng=np.random.default_rng(7))
        fit_seconds = time.perf_counter() - started

        calls = 10_000
        started = time.perf_counter()
        for _ in range(calls):
            if tracker.enabled:
                tracker.record(objective=1.0, delta=0.1)
        per_call = (time.perf_counter() - started) / calls

        # An EM fit records ~once per iteration (tens of iterations),
        # so even 100 hooks must fit inside the 2% ceiling.
        assert per_call * 100 < 0.02 * fit_seconds


# ----------------------------------------------------------------------
# Sparklines and the viewer's convergence section


class TestSparkline:
    def test_empty_series_renders_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_renders_flat(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_ends_at_the_top_glyph(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == " "
        assert line[-1] == "%"

    def test_long_series_downsamples_to_width(self):
        assert len(sparkline([float(i) for i in range(100)], width=24)) == 24

    def test_nonfinite_values_render_as_bangs(self):
        line = sparkline([1.0, float("nan"), 2.0])
        assert line[1] == "!"
        assert sparkline([float("nan"), float("inf")]) == "!!"


class TestViewerConvergence:
    def _document_with_payload(self, **overrides):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("em.fit"):
                tracker = trace.iterations("em.fit")
                tracker.record(objective=-3.0, delta=1.0)
                tracker.record(objective=-2.0, delta=0.5)
                tracker.finish(converged=True)
        document = recorder.to_document()
        document["spans"][0]["attrs"]["convergence"].update(overrides)
        return document

    def test_section_renders_per_kernel_rows(self):
        text = render_trace(self._document_with_payload())
        assert "convergence:" in text
        assert "em.fit" in text
        assert "1/1" in text  # converged tally
        assert "-2" in text  # final objective

    def test_pre_convergence_trace_has_no_section(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("engine.run"):
                pass
        text = render_trace(recorder.to_document())
        assert "convergence:" not in text

    def test_zero_iteration_payload_renders(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit"):
                trace.iterations("cold.start").finish()
        text = render_trace(recorder.to_document())
        assert "convergence:" in text
        assert "cold.start" in text
        assert "0/0" in text  # iter med/max for the empty fit

    def test_single_iteration_fit_renders(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit"):
                tracker = trace.iterations("one.shot")
                tracker.record(objective=1.5)
                tracker.finish(converged=True)
        text = render_trace(recorder.to_document())
        assert "one.shot" in text
        assert "1/1" in text

    def test_nan_objective_survives_the_json_round_trip(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit"):
                tracker = trace.iterations("sick.fit")
                tracker.record(objective=float("nan"))
                tracker.finish(converged=False)
        document = json.loads(
            json.dumps(recorder.to_document(), allow_nan=False)
        )
        text = render_trace(document)
        assert "sick.fit" in text
        assert "nan" in text
        assert "!" in text  # non-finite trajectory glyph

    def test_condition_only_payload_gets_a_trajectory(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit"):
                tracker = trace.iterations("linalg.cholesky")
                tracker.record(condition=10.0)
                tracker.record(condition=100.0)
                tracker.finish(converged=True)
        text = render_trace(recorder.to_document())
        row = [
            line for line in text.splitlines() if "linalg.cholesky" in line
        ][0]
        assert not row.rstrip().endswith("-")
