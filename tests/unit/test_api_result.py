"""Unit tests for ExperimentResult aggregation and serialization."""

import json
import math

import numpy as np
import pytest

from repro.api.result import ExperimentResult, aggregate_payloads
from repro.api.spec import ExperimentSpec
from repro.engine import JobResult
from repro.exceptions import ValidationError
from repro.utils.serialization import NAN_SENTINEL

RAW_TASK = "repro.experiments.tasks:two_level_trial"


def raw_spec(n_points, trials=1, **kwargs):
    return ExperimentSpec(
        name="agg",
        task=RAW_TASK,
        points=tuple({"index": i} for i in range(n_points)),
        trials=trials,
        seed=1,
        **kwargs,
    )


class TestAggregation:
    def test_nested_dict_payloads_become_labeled_curves(self):
        spec = raw_spec(2, trials=2)
        payloads = [
            [{"rmse": {"UDR": 1.0, "BE-DR": 0.5}},
             {"rmse": {"UDR": 3.0, "BE-DR": 1.5}}],
            [{"rmse": {"UDR": 5.0, "BE-DR": 2.0}},
             {"rmse": {"UDR": 7.0, "BE-DR": 4.0}}],
        ]
        x, series = aggregate_payloads(spec, payloads)
        assert list(series) == ["UDR", "BE-DR"]
        np.testing.assert_array_equal(series["UDR"], [2.0, 6.0])
        np.testing.assert_array_equal(series["BE-DR"], [1.0, 3.0])
        np.testing.assert_array_equal(x, [0.0, 1.0])

    def test_flat_payloads_become_curves(self):
        spec = raw_spec(2)
        payloads = [[{"original": 0.9, "disguised": 0.7}],
                    [{"original": 0.8, "disguised": 0.6}]]
        _, series = aggregate_payloads(spec, payloads)
        np.testing.assert_array_equal(series["original"], [0.9, 0.8])
        np.testing.assert_array_equal(series["disguised"], [0.7, 0.6])

    def test_x_from_key_is_averaged_into_axis(self):
        spec = raw_spec(2, trials=2, x_from="dissimilarity")
        payloads = [
            [{"dissimilarity": 0.2, "rmse": {"SF": 1.0}},
             {"dissimilarity": 0.4, "rmse": {"SF": 2.0}}],
            [{"dissimilarity": 1.0, "rmse": {"SF": 3.0}},
             {"dissimilarity": 2.0, "rmse": {"SF": 4.0}}],
        ]
        x, series = aggregate_payloads(spec, payloads)
        np.testing.assert_allclose(x, [0.3, 1.5])
        assert "dissimilarity" not in series

    def test_nan_sentinel_decodes_to_nan(self):
        spec = raw_spec(1)
        _, series = aggregate_payloads(
            spec, [[{"rmse": {"SF": NAN_SENTINEL, "UDR": 1.0}}]]
        )
        assert math.isnan(series["SF"][0])
        assert series["UDR"][0] == 1.0

    def test_non_numeric_leaves_skipped(self):
        spec = raw_spec(1)
        _, series = aggregate_payloads(
            spec,
            [[{"rmse": {"UDR": 1.0}, "errors": {"SF": "boom"}}]],
        )
        assert list(series) == ["UDR"]

    def test_list_payload_single_job_becomes_curves(self):
        spec = raw_spec(1, x_values=[5.0, 20.0, 50.0])
        x, series = aggregate_payloads(
            spec, [[{"empirical": [1.0, 2.0, 3.0],
                     "analytic": [1.1, 2.1, 3.1]}]]
        )
        np.testing.assert_array_equal(x, [5.0, 20.0, 50.0])
        np.testing.assert_array_equal(series["empirical"], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(series["analytic"], [1.1, 2.1, 3.1])

    def test_no_numeric_values_rejected(self):
        spec = raw_spec(1)
        with pytest.raises(ValidationError, match="no numeric"):
            aggregate_payloads(spec, [[{"errors": {"SF": "boom"}}]])

    def test_wrong_trial_count_rejected(self):
        spec = raw_spec(1, trials=2)
        with pytest.raises(ValidationError, match="payloads"):
            aggregate_payloads(spec, [[{"rmse": {"UDR": 1.0}}]])


def make_result(spec, payload_rows):
    jobs = spec.compile_jobs()
    flat = [payload for row in payload_rows for payload in row]
    results = [
        JobResult(key=job.key(), values=values, duration=0.1)
        for job, values in zip(jobs, flat)
    ]
    return ExperimentResult.from_job_results(spec, results)


class TestExperimentResult:
    def test_from_job_results_counts(self):
        spec = raw_spec(2, trials=2)
        result = make_result(
            spec,
            [
                [{"rmse": {"UDR": 1.0}}, {"rmse": {"UDR": 2.0}}],
                [{"rmse": {"UDR": 3.0}}, {"rmse": {"UDR": 4.0}}],
            ],
        )
        assert result.stats["jobs"] == 4
        np.testing.assert_array_equal(result.curve("UDR"), [1.5, 3.5])

    def test_result_count_mismatch_rejected(self):
        spec = raw_spec(2)
        with pytest.raises(ValidationError, match="compiled to 2 jobs"):
            ExperimentResult.from_job_results(spec, [])

    def test_to_series_carries_metadata_and_labels(self):
        spec = raw_spec(1, x_label="sigma", metadata={"note": "n"})
        result = make_result(spec, [[{"rmse": {"UDR": 1.0}}]])
        series = result.to_series()
        assert series.name == "agg"
        assert series.x_label == "sigma"
        assert series.metadata == {"note": "n"}

    def test_json_round_trip_nan_safe(self):
        spec = raw_spec(2)
        result = make_result(
            spec,
            [[{"rmse": {"UDR": 1.0, "SF": NAN_SENTINEL}}],
             [{"rmse": {"UDR": 2.0, "SF": 3.0}}]],
        )
        text = result.to_json()
        json.loads(text)  # strict JSON — would fail on a bare NaN token
        clone = ExperimentResult.from_json(text)
        assert clone == result
        assert math.isnan(clone.curve("SF")[0])

    def test_unknown_curve_raises(self):
        spec = raw_spec(1)
        result = make_result(spec, [[{"rmse": {"UDR": 1.0}}]])
        with pytest.raises(KeyError, match="available"):
            result.curve("nope")


class TestXFromGuards:
    def test_missing_x_from_key_raises_instead_of_zero_axis(self):
        # Regression: a typoed/missing x_from key used to yield a
        # silent all-zero x-axis.
        spec = raw_spec(1, x_from="dissimilarity")
        with pytest.raises(ValidationError, match="dissimilarity"):
            aggregate_payloads(spec, [[{"rmse": {"SF": 1.0}}]])


class TestListPayloadRejection:
    def test_list_payload_rejected_across_points(self):
        spec = raw_spec(2)
        with pytest.raises(ValidationError, match="list-valued"):
            aggregate_payloads(
                spec,
                [[{"empirical": [1.0, 2.0]}], [{"empirical": [3.0, 4.0]}]],
            )

    def test_list_payload_rejected_across_trials(self):
        spec = raw_spec(1, trials=2)
        with pytest.raises(ValidationError, match="list-valued"):
            aggregate_payloads(
                spec,
                [[{"empirical": [1.0, 2.0]}, {"empirical": [3.0, 4.0]}]],
            )
