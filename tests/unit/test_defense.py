"""Unit tests for the Section 8 noise designer."""

import numpy as np
import pytest

from repro.core.defense import NoiseDesigner, design_noise_spectrum
from repro.data.covariance_builder import CovarianceModel
from repro.data.spectra import two_level_spectrum
from repro.exceptions import ValidationError


def _data_model():
    spectrum = two_level_spectrum(
        10, 5, total_variance=1000.0, non_principal_value=4.0
    )
    return CovarianceModel.from_spectrum(spectrum, rng=0)


class TestDesignNoiseSpectrum:
    def test_profile_zero_is_proportional(self):
        data = np.array([80.0, 15.0, 5.0])
        designed = design_noise_spectrum(
            data, noise_power=10.0, profile=0.0
        )
        np.testing.assert_allclose(designed, data * (10.0 / 100.0))

    def test_profile_one_is_flat(self):
        data = np.array([80.0, 15.0, 5.0])
        designed = design_noise_spectrum(
            data, noise_power=30.0, profile=1.0
        )
        np.testing.assert_allclose(designed, [10.0, 10.0, 10.0])

    def test_profile_two_is_reversed(self):
        data = np.array([80.0, 15.0, 5.0])
        designed = design_noise_spectrum(
            data, noise_power=100.0, profile=2.0
        )
        np.testing.assert_allclose(designed, [5.0, 15.0, 80.0])

    def test_power_always_preserved(self):
        data = np.array([400.0, 400.0, 4.0, 4.0])
        for profile in (0.0, 0.3, 1.0, 1.6, 2.0):
            designed = design_noise_spectrum(
                data, noise_power=100.0, profile=profile
            )
            assert designed.sum() == pytest.approx(100.0)

    def test_rejects_out_of_range_profile(self):
        with pytest.raises(ValidationError):
            design_noise_spectrum([1.0, 2.0], noise_power=1.0, profile=2.5)

    def test_rejects_negative_eigenvalues(self):
        with pytest.raises(ValidationError):
            design_noise_spectrum([1.0, -1.0], noise_power=1.0, profile=0.5)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValidationError):
            design_noise_spectrum([1.0, 2.0], noise_power=0.0, profile=0.5)


class TestNoiseDesigner:
    def test_profile_zero_gives_zero_dissimilarity(self):
        designer = NoiseDesigner(_data_model(), noise_power=250.0)
        designed = designer.design(0.0)
        assert designed.dissimilarity == pytest.approx(0.0, abs=1e-9)

    def test_profile_one_gives_independent_noise(self):
        designer = NoiseDesigner(_data_model(), noise_power=250.0)
        designed = designer.design(1.0)
        np.testing.assert_allclose(
            designed.scheme.covariance, 25.0 * np.eye(10), atol=1e-9
        )

    def test_dissimilarity_monotone_along_path(self):
        designer = NoiseDesigner(_data_model(), noise_power=250.0)
        sweep = designer.sweep([0.0, 0.5, 1.0, 1.5, 2.0])
        dissimilarities = [d.dissimilarity for d in sweep]
        assert all(
            later >= earlier - 1e-12
            for earlier, later in zip(dissimilarities, dissimilarities[1:])
        )

    def test_noise_power_constant_across_sweep(self):
        designer = NoiseDesigner(_data_model(), noise_power=250.0)
        for designed in designer.sweep([0.0, 0.7, 1.3, 2.0]):
            assert designed.scheme.total_power == pytest.approx(250.0)

    def test_noise_uses_data_eigenvectors(self):
        model = _data_model()
        designer = NoiseDesigner(model, noise_power=250.0)
        designed = designer.design(0.5)
        # The noise covariance must diagonalize in the data's eigenbasis.
        q = model.eigenvectors
        off_diagonal = q.T @ designed.scheme.covariance @ q
        off_diagonal -= np.diag(np.diag(off_diagonal))
        assert np.abs(off_diagonal).max() < 1e-9

    def test_rejects_non_model(self):
        with pytest.raises(ValidationError):
            NoiseDesigner(np.eye(3), noise_power=1.0)

    def test_rejects_bad_power(self):
        with pytest.raises(ValidationError):
            NoiseDesigner(_data_model(), noise_power=-1.0)
