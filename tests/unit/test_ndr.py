"""Unit tests for NDR (Section 4.1)."""

import numpy as np
import pytest

from repro.metrics.error import mean_square_error
from repro.randomization.base import NoiseModel
from repro.reconstruction.ndr import NoiseDistributionReconstructor


class TestNDR:
    def test_estimate_is_disguised_data(self, disguised_dataset):
        result = NoiseDistributionReconstructor().reconstruct(
            disguised_dataset
        )
        np.testing.assert_array_equal(
            result.estimate, disguised_dataset.disguised
        )

    def test_mse_equals_noise_variance(self, disguised_dataset):
        """Section 4.1: the m.s.e. of NDR is exactly the noise variance."""
        result = NoiseDistributionReconstructor().reconstruct(
            disguised_dataset
        )
        mse = mean_square_error(disguised_dataset.original, result)
        empirical_noise_variance = float(
            np.mean(disguised_dataset.noise**2)
        )
        assert mse == pytest.approx(empirical_noise_variance, rel=1e-12)

    def test_nonzero_noise_mean_subtracted(self):
        mean = np.array([2.0, -1.0])
        model = NoiseModel(covariance=np.eye(2), mean=mean)
        disguised = np.zeros((5, 2))
        result = NoiseDistributionReconstructor().reconstruct(
            disguised, model
        )
        np.testing.assert_allclose(result.estimate, -np.tile(mean, (5, 1)))

    def test_expected_mse_reported(self, disguised_dataset):
        result = NoiseDistributionReconstructor().reconstruct(
            disguised_dataset
        )
        assert result.details["expected_mse"] == pytest.approx(25.0)

    def test_method_name(self, disguised_dataset):
        result = NoiseDistributionReconstructor().reconstruct(
            disguised_dataset
        )
        assert result.method == "NDR"
