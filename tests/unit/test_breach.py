"""Unit tests for the Evfimievski-style privacy-breach metrics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.breach import (
    amplification_factor,
    amplification_prevents_breach,
    breach_occurs,
    posterior_distribution,
    worst_case_posterior,
)


def warner_channel(theta: float) -> np.ndarray:
    """Warner randomized response as a channel matrix P[y, x]."""
    return np.array([[theta, 1.0 - theta], [1.0 - theta, theta]])


class TestPosteriorDistribution:
    def test_matches_warner_posterior(self):
        channel = warner_channel(0.8)
        posterior = posterior_distribution([0.5, 0.5], channel, output=1)
        # P(x=1 | y=1) = 0.8 for a uniform prior.
        assert posterior[1] == pytest.approx(0.8)
        assert posterior.sum() == pytest.approx(1.0)

    def test_identity_channel_is_certain(self):
        posterior = posterior_distribution(
            [0.3, 0.7], np.eye(2), output=0
        )
        np.testing.assert_allclose(posterior, [1.0, 0.0])

    def test_uninformative_channel_returns_prior(self):
        channel = np.full((2, 2), 0.5)
        posterior = posterior_distribution([0.2, 0.8], channel, output=1)
        np.testing.assert_allclose(posterior, [0.2, 0.8])

    def test_rejects_non_stochastic_channel(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            posterior_distribution([0.5, 0.5], [[0.5, 0.5], [0.2, 0.5]], 0)

    def test_rejects_bad_prior(self):
        with pytest.raises(ValidationError, match="prior"):
            posterior_distribution([0.5, 0.2], warner_channel(0.8), 0)

    def test_rejects_impossible_output(self):
        channel = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValidationError, match="zero probability"):
            posterior_distribution([0.5, 0.5], channel, output=1)


class TestWorstCasePosterior:
    def test_warner_uniform_prior(self):
        worst = worst_case_posterior(
            [0.5, 0.5], warner_channel(0.9), property_inputs=[1]
        )
        assert worst == pytest.approx(0.9)

    def test_skewed_prior_amplifies(self):
        # Rare property (prior 0.1) under a strong channel.
        worst = worst_case_posterior(
            [0.9, 0.1], warner_channel(0.9), property_inputs=[1]
        )
        expected = 0.9 * 0.1 / (0.9 * 0.1 + 0.1 * 0.9)
        assert worst == pytest.approx(expected)

    def test_property_of_multiple_values(self):
        channel = np.eye(3)
        worst = worst_case_posterior(
            [1 / 3] * 3, channel, property_inputs=[0, 1]
        )
        assert worst == pytest.approx(1.0)


class TestBreachOccurs:
    def test_identity_channel_always_breaches(self):
        assert breach_occurs(
            [0.9, 0.1], np.eye(2), [1], rho1=0.2, rho2=0.8
        )

    def test_uninformative_channel_never_breaches(self):
        channel = np.full((2, 2), 0.5)
        assert not breach_occurs(
            [0.9, 0.1], channel, [1], rho1=0.2, rho2=0.8
        )

    def test_no_breach_when_prior_exceeds_rho1(self):
        # Property already likely: not a rho1-to-rho2 breach by definition.
        assert not breach_occurs(
            [0.5, 0.5], np.eye(2), [1], rho1=0.2, rho2=0.8
        )

    def test_rejects_rho2_below_rho1(self):
        with pytest.raises(ValidationError):
            breach_occurs(
                [0.5, 0.5], warner_channel(0.8), [1], rho1=0.8, rho2=0.2
            )


class TestAmplification:
    def test_warner_amplification(self):
        # gamma = theta / (1 - theta).
        assert amplification_factor(warner_channel(0.8)) == pytest.approx(
            4.0
        )

    def test_uninformative_channel_has_gamma_one(self):
        assert amplification_factor(np.full((2, 2), 0.5)) == 1.0

    def test_identity_channel_unbounded(self):
        assert amplification_factor(np.eye(2)) == float("inf")

    def test_bound_blocks_breach(self):
        """The sufficient condition must be... sufficient."""
        theta = 0.7  # gamma = 7/3
        channel = warner_channel(theta)
        rho1, rho2 = 0.3, 0.9
        # odds ratio = (0.9/0.1)/(0.3/0.7) = 21 > 7/3: no breach possible.
        assert amplification_prevents_breach(channel, rho1=rho1, rho2=rho2)
        # Verify empirically over a grid of priors for the property {1}.
        for prior_one in np.linspace(0.01, rho1, 15):
            assert not breach_occurs(
                [1 - prior_one, prior_one], channel, [1],
                rho1=rho1, rho2=rho2,
            )

    def test_bound_is_tight_enough_to_fail_sometimes(self):
        theta = 0.95  # gamma = 19
        channel = warner_channel(theta)
        rho1, rho2 = 0.3, 0.65
        # odds ratio = (0.65/0.35)/(0.3/0.7) ~ 4.33 < 19: condition fails...
        assert not amplification_prevents_breach(
            channel, rho1=rho1, rho2=rho2
        )
        # ...and an actual breach exists at prior = rho1.
        assert breach_occurs(
            [0.7, 0.3], channel, [1], rho1=rho1, rho2=rho2
        )

    def test_rejects_degenerate_rhos(self):
        with pytest.raises(ValidationError):
            amplification_prevents_breach(
                warner_channel(0.8), rho1=0.0, rho2=0.5
            )
