"""Unit tests for repro.stats.density."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.density import (
    GaussianDensity,
    GaussianMixtureDensity,
    HistogramDensity,
    LaplaceDensity,
    UniformDensity,
)


def _integrate(density, lo, hi, n=20001):
    grid = np.linspace(lo, hi, n)
    return float(np.trapezoid(density.pdf(grid), grid))


class TestGaussianDensity:
    def test_pdf_peak_at_mean(self):
        density = GaussianDensity(2.0, 1.5)
        assert density.pdf(2.0) == pytest.approx(
            1.0 / (1.5 * np.sqrt(2 * np.pi))
        )

    def test_integrates_to_one(self):
        density = GaussianDensity(0.0, 2.0)
        assert _integrate(density, -20, 20) == pytest.approx(1.0, abs=1e-6)

    def test_moments(self):
        density = GaussianDensity(-1.0, 3.0)
        assert density.mean == -1.0
        assert density.variance == 9.0
        assert density.std == 3.0

    def test_support_covers_samples(self):
        density = GaussianDensity(5.0, 2.0)
        lo, hi = density.support(0.999)
        samples = density.sample(2000, rng=0)
        assert np.mean((samples >= lo) & (samples <= hi)) > 0.99

    def test_sample_moments(self):
        samples = GaussianDensity(3.0, 2.0).sample(50000, rng=1)
        assert samples.mean() == pytest.approx(3.0, abs=0.05)
        assert samples.std() == pytest.approx(2.0, abs=0.05)

    def test_rejects_nonpositive_std(self):
        with pytest.raises(ValidationError):
            GaussianDensity(0.0, 0.0)


class TestUniformDensity:
    def test_pdf_inside_and_outside(self):
        density = UniformDensity(-2.0, 2.0)
        assert density.pdf(0.0) == pytest.approx(0.25)
        assert density.pdf(3.0) == 0.0
        assert density.pdf(-2.0) == pytest.approx(0.25)

    def test_moments(self):
        density = UniformDensity(0.0, 6.0)
        assert density.mean == 3.0
        assert density.variance == pytest.approx(3.0)

    def test_support_is_exact(self):
        assert UniformDensity(1.0, 4.0).support() == (1.0, 4.0)

    def test_sample_range(self):
        samples = UniformDensity(-1.0, 1.0).sample(1000, rng=2)
        assert samples.min() >= -1.0 and samples.max() <= 1.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            UniformDensity(2.0, 1.0)


class TestLaplaceDensity:
    def test_pdf_at_mean(self):
        density = LaplaceDensity(0.0, 2.0)
        assert density.pdf(0.0) == pytest.approx(0.25)

    def test_variance_is_two_scale_squared(self):
        assert LaplaceDensity(0.0, 3.0).variance == 18.0

    def test_integrates_to_one(self):
        assert _integrate(LaplaceDensity(0.0, 1.0), -30, 30) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_support_mass(self):
        density = LaplaceDensity(0.0, 1.0)
        lo, hi = density.support(0.999)
        assert _integrate(density, lo, hi) >= 0.999 - 1e-6


class TestGaussianMixtureDensity:
    def _bimodal(self):
        return GaussianMixtureDensity(
            weights=[0.4, 0.6], means=[-3.0, 2.0], stds=[1.0, 0.5]
        )

    def test_weights_normalized(self):
        mixture = GaussianMixtureDensity([2.0, 2.0], [0.0, 1.0], [1.0, 1.0])
        np.testing.assert_allclose(mixture.weights, [0.5, 0.5])

    def test_mean_is_weighted(self):
        assert self._bimodal().mean == pytest.approx(0.4 * -3.0 + 0.6 * 2.0)

    def test_variance_formula(self):
        mixture = self._bimodal()
        second = 0.4 * (1.0 + 9.0) + 0.6 * (0.25 + 4.0)
        assert mixture.variance == pytest.approx(second - mixture.mean**2)

    def test_pdf_integrates_to_one(self):
        assert _integrate(self._bimodal(), -20, 20) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_pdf_scalar_and_array_shapes(self):
        mixture = self._bimodal()
        assert np.ndim(mixture.pdf(0.0)) == 0
        assert mixture.pdf(np.zeros((3, 2))).shape == (3, 2)

    def test_samples_cover_both_modes(self):
        samples = self._bimodal().sample(5000, rng=0)
        assert np.mean(samples < -1.0) > 0.25
        assert np.mean(samples > 0.5) > 0.4

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            GaussianMixtureDensity([1.0], [0.0, 1.0], [1.0, 1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            GaussianMixtureDensity([-1.0, 2.0], [0.0, 1.0], [1.0, 1.0])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ValidationError):
            GaussianMixtureDensity([0.0, 0.0], [0.0, 1.0], [1.0, 1.0])

    def test_rejects_nonpositive_std(self):
        with pytest.raises(ValidationError):
            GaussianMixtureDensity([1.0, 1.0], [0.0, 1.0], [1.0, 0.0])


class TestHistogramDensity:
    def _simple(self):
        return HistogramDensity(
            edges=[0.0, 1.0, 2.0, 4.0], probabilities=[0.2, 0.3, 0.5]
        )

    def test_pdf_values(self):
        density = self._simple()
        assert density.pdf(0.5) == pytest.approx(0.2)
        assert density.pdf(1.5) == pytest.approx(0.3)
        assert density.pdf(3.0) == pytest.approx(0.25)  # 0.5 / width 2
        assert density.pdf(-1.0) == 0.0
        assert density.pdf(5.0) == 0.0

    def test_last_edge_belongs_to_last_bin(self):
        assert self._simple().pdf(4.0) == pytest.approx(0.25)

    def test_integrates_to_one(self):
        assert _integrate(self._simple(), -1, 5) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_mean(self):
        density = self._simple()
        expected = 0.2 * 0.5 + 0.3 * 1.5 + 0.5 * 3.0
        assert density.mean == pytest.approx(expected)

    def test_variance_positive_and_sensible(self):
        density = self._simple()
        samples = density.sample(200000, rng=0)
        assert density.variance == pytest.approx(samples.var(), rel=0.05)

    def test_from_samples_roundtrip(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0.0, 1.0, size=5000)
        density = HistogramDensity.from_samples(samples, bins=40)
        assert density.mean == pytest.approx(0.0, abs=0.1)
        assert density.variance == pytest.approx(1.0, abs=0.15)

    def test_probabilities_normalized(self):
        density = HistogramDensity([0.0, 1.0, 2.0], [2.0, 6.0])
        np.testing.assert_allclose(density.probabilities, [0.25, 0.75])

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ValidationError):
            HistogramDensity([0.0, 0.0, 1.0], [0.5, 0.5])

    def test_rejects_wrong_probability_count(self):
        with pytest.raises(ValidationError):
            HistogramDensity([0.0, 1.0, 2.0], [1.0])

    def test_rejects_negative_probability(self):
        with pytest.raises(ValidationError):
            HistogramDensity([0.0, 1.0, 2.0], [-0.5, 1.5])

    def test_sample_within_support(self):
        samples = self._simple().sample(1000, rng=3)
        assert samples.min() >= 0.0 and samples.max() <= 4.0
