"""Unit tests for repro.data.covariance_builder.CovarianceModel."""

import numpy as np
import pytest

from repro.data.covariance_builder import CovarianceModel
from repro.exceptions import SpectrumError, ValidationError
from repro.linalg.psd import is_positive_semidefinite


class TestFromSpectrum:
    def test_matrix_has_requested_spectrum(self):
        spectrum = [50.0, 20.0, 5.0, 1.0]
        model = CovarianceModel.from_spectrum(spectrum, rng=0)
        eigenvalues = np.sort(np.linalg.eigvalsh(model.matrix))[::-1]
        np.testing.assert_allclose(eigenvalues, spectrum, atol=1e-9)

    def test_matrix_is_psd_and_symmetric(self):
        model = CovarianceModel.from_spectrum([10.0, 5.0, 1.0], rng=1)
        matrix = model.matrix
        np.testing.assert_array_equal(matrix, matrix.T)
        assert is_positive_semidefinite(matrix)

    def test_trace_equals_eigenvalue_sum(self):
        # Eq. 12 of the paper.
        model = CovarianceModel.from_spectrum([7.0, 2.0, 1.0], rng=2)
        assert np.trace(model.matrix) == pytest.approx(model.trace)
        assert model.trace == pytest.approx(10.0)

    def test_unsorted_spectrum_is_sorted(self):
        model = CovarianceModel.from_spectrum([1.0, 9.0, 4.0], rng=3)
        np.testing.assert_allclose(model.eigenvalues, [9.0, 4.0, 1.0])

    def test_deterministic_given_seed(self):
        a = CovarianceModel.from_spectrum([3.0, 1.0], rng=5)
        b = CovarianceModel.from_spectrum([3.0, 1.0], rng=5)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_different_seeds_give_different_bases(self):
        a = CovarianceModel.from_spectrum([3.0, 1.0], rng=5)
        b = CovarianceModel.from_spectrum([3.0, 1.0], rng=6)
        assert not np.allclose(a.matrix, b.matrix)


class TestFromMatrix:
    def test_roundtrip(self):
        original = CovarianceModel.from_spectrum([8.0, 3.0, 0.5], rng=0)
        recovered = CovarianceModel.from_matrix(original.matrix)
        np.testing.assert_allclose(
            recovered.eigenvalues, original.eigenvalues, atol=1e-9
        )
        np.testing.assert_allclose(recovered.matrix, original.matrix, atol=1e-9)

    def test_negative_eigenvalues_clipped(self):
        indefinite = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        model = CovarianceModel.from_matrix(indefinite)
        assert model.eigenvalues.min() >= 0.0


class TestValidation:
    def test_rejects_negative_eigenvalues(self):
        with pytest.raises(SpectrumError):
            CovarianceModel(
                eigenvalues=np.array([1.0, -1.0]),
                eigenvectors=np.eye(2),
            )

    def test_rejects_unsorted_eigenvalues(self):
        with pytest.raises(SpectrumError):
            CovarianceModel(
                eigenvalues=np.array([1.0, 2.0]),
                eigenvectors=np.eye(2),
            )

    def test_rejects_non_orthonormal_vectors(self):
        with pytest.raises(ValidationError, match="orthonormal"):
            CovarianceModel(
                eigenvalues=np.array([2.0, 1.0]),
                eigenvectors=np.array([[1.0, 1.0], [0.0, 1.0]]),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            CovarianceModel(
                eigenvalues=np.array([2.0, 1.0]),
                eigenvectors=np.eye(3),
            )


class TestDerivedModels:
    def test_with_spectrum_keeps_covariance_eigenvectors(self):
        base = CovarianceModel.from_spectrum([10.0, 5.0, 1.0], rng=0)
        modified = base.with_spectrum([4.0, 3.0, 2.0])
        np.testing.assert_allclose(modified.eigenvalues, [4.0, 3.0, 2.0])
        # Eigenvector k still pairs with the k-th new eigenvalue: the new
        # matrix must diagonalize in the same basis.
        q = base.eigenvectors
        diagonal = q.T @ modified.matrix @ q
        np.testing.assert_allclose(
            np.diag(diagonal), [4.0, 3.0, 2.0], atol=1e-9
        )
        np.testing.assert_allclose(
            diagonal - np.diag(np.diag(diagonal)),
            np.zeros((3, 3)),
            atol=1e-9,
        )

    def test_with_spectrum_reversed_assigns_largest_to_last(self):
        # Section 8.2's reversed profile: the noise's biggest eigenvalue
        # sits on the data's *least* principal eigenvector.
        base = CovarianceModel.from_spectrum([9.0, 4.0, 1.0], rng=1)
        reversed_model = base.with_spectrum([1.0, 4.0, 9.0])
        last_vector = base.eigenvectors[:, 2]
        product = reversed_model.matrix @ last_vector
        np.testing.assert_allclose(product, 9.0 * last_vector, atol=1e-9)

    def test_with_spectrum_length_mismatch(self):
        base = CovarianceModel.from_spectrum([2.0, 1.0], rng=0)
        with pytest.raises(ValidationError):
            base.with_spectrum([1.0, 2.0, 3.0])

    def test_scaled(self):
        base = CovarianceModel.from_spectrum([2.0, 1.0], rng=0)
        doubled = base.scaled(2.0)
        np.testing.assert_allclose(doubled.matrix, 2.0 * base.matrix)

    def test_scaled_rejects_nonpositive(self):
        base = CovarianceModel.from_spectrum([2.0, 1.0], rng=0)
        with pytest.raises(ValidationError):
            base.scaled(0.0)

    def test_matrix_is_cached_copy(self):
        model = CovarianceModel.from_spectrum([2.0, 1.0], rng=0)
        first = model.matrix
        first[0, 0] = 999.0
        assert model.matrix[0, 0] != 999.0
