"""Unit tests for repro.linalg.psd."""

import numpy as np
import pytest

from repro.exceptions import NotPositiveDefiniteError
from repro.linalg.psd import (
    cholesky_with_jitter,
    is_positive_semidefinite,
    nearest_psd,
    psd_inverse,
)


def _indefinite_matrix():
    return np.array(
        [
            [1.0, 0.9, 0.0],
            [0.9, 1.0, 0.9],
            [0.0, 0.9, 0.2],
        ]
    )


class TestIsPositiveSemidefinite:
    def test_identity(self):
        assert is_positive_semidefinite(np.eye(3))

    def test_zero_matrix(self):
        assert is_positive_semidefinite(np.zeros((3, 3)))

    def test_indefinite(self):
        assert not is_positive_semidefinite(_indefinite_matrix())

    def test_tiny_negative_within_tolerance(self):
        matrix = np.eye(2)
        matrix[1, 1] = -1e-14
        assert is_positive_semidefinite(matrix)


class TestNearestPsd:
    def test_already_psd_returned_unchanged(self):
        matrix = np.array([[2.0, 0.5], [0.5, 1.0]])
        np.testing.assert_allclose(nearest_psd(matrix), matrix)

    def test_repair_produces_psd(self):
        repaired = nearest_psd(_indefinite_matrix())
        assert is_positive_semidefinite(repaired)

    def test_repair_is_frobenius_projection(self):
        # Clipping eigenvalues at zero is the nearest PSD matrix; any
        # further perturbation must increase the Frobenius distance.
        matrix = _indefinite_matrix()
        repaired = nearest_psd(matrix)
        base_distance = np.linalg.norm(matrix - repaired, "fro")
        rng = np.random.default_rng(0)
        for _ in range(10):
            bump = rng.standard_normal((3, 3)) * 0.05
            candidate = repaired + (bump + bump.T) / 2.0
            if is_positive_semidefinite(candidate):
                distance = np.linalg.norm(matrix - candidate, "fro")
                assert distance >= base_distance - 1e-9

    def test_floor_gives_positive_definite(self):
        repaired = nearest_psd(_indefinite_matrix(), floor=0.1)
        values = np.linalg.eigvalsh(repaired)
        assert values.min() >= 0.1 - 1e-9

    def test_negative_floor_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            nearest_psd(np.eye(2), floor=-1.0)


class TestCholeskyWithJitter:
    def test_plain_cholesky_when_pd(self):
        matrix = np.array([[4.0, 1.0], [1.0, 3.0]])
        lower = cholesky_with_jitter(matrix)
        np.testing.assert_allclose(lower @ lower.T, matrix, atol=1e-12)

    def test_singular_psd_gets_jitter(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank 1
        lower = cholesky_with_jitter(matrix)
        np.testing.assert_allclose(lower @ lower.T, matrix, atol=1e-6)

    def test_genuinely_indefinite_raises(self):
        matrix = np.diag([1.0, -5.0])
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_with_jitter(matrix, max_tries=3)

    def test_returns_lower_triangular(self):
        lower = cholesky_with_jitter(np.eye(3) * 2.0)
        assert np.allclose(lower, np.tril(lower))


class TestPsdInverse:
    def test_matches_plain_inverse_when_well_conditioned(self):
        matrix = np.array([[4.0, 1.0], [1.0, 3.0]])
        np.testing.assert_allclose(
            psd_inverse(matrix), np.linalg.inv(matrix), atol=1e-10
        )

    def test_near_singular_is_bounded(self):
        matrix = np.diag([1.0, 1e-16])
        inverse = psd_inverse(matrix, floor=1e-10)
        assert np.all(np.isfinite(inverse))
        assert inverse[1, 1] <= 1e10 + 1.0

    def test_result_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 5))
        matrix = a @ a.T + np.eye(5)
        inverse = psd_inverse(matrix)
        np.testing.assert_allclose(inverse, inverse.T, atol=1e-12)

    def test_no_positive_eigenvalues_raises(self):
        with pytest.raises(NotPositiveDefiniteError):
            psd_inverse(-np.eye(2))

    def test_floor_must_be_positive(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            psd_inverse(np.eye(2), floor=0.0)
