"""Unit tests for repro.metrics.error."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.error import (
    mean_square_error,
    per_attribute_rmse,
    root_mean_square_error,
)
from repro.reconstruction.base import ReconstructionResult


class TestMeanSquareError:
    def test_zero_for_identical(self):
        data = np.arange(12.0).reshape(4, 3)
        assert mean_square_error(data, data) == 0.0

    def test_known_value(self):
        original = np.zeros((2, 2))
        estimate = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert mean_square_error(original, estimate) == 1.0

    def test_accepts_reconstruction_result(self):
        original = np.zeros((2, 2))
        result = ReconstructionResult(
            estimate=np.full((2, 2), 2.0), method="X"
        )
        assert mean_square_error(original, result) == 4.0

    def test_accepts_1d_columns(self):
        assert mean_square_error([0.0, 0.0], [3.0, 4.0]) == 12.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="shape"):
            mean_square_error(np.zeros((2, 2)), np.zeros((3, 2)))


class TestRootMeanSquareError:
    def test_is_sqrt_of_mse(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(10, 4))
        b = rng.normal(size=(10, 4))
        assert root_mean_square_error(a, b) == pytest.approx(
            np.sqrt(mean_square_error(a, b))
        )

    def test_scale_equivariance(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(20, 3))
        b = rng.normal(size=(20, 3))
        assert root_mean_square_error(2 * a, 2 * b) == pytest.approx(
            2 * root_mean_square_error(a, b)
        )


class TestPerAttributeRmse:
    def test_per_column_values(self):
        original = np.zeros((4, 2))
        estimate = np.column_stack([np.full(4, 1.0), np.full(4, 3.0)])
        np.testing.assert_allclose(
            per_attribute_rmse(original, estimate), [1.0, 3.0]
        )

    def test_aggregates_to_overall_rmse(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(50, 5))
        b = rng.normal(size=(50, 5))
        per_attr = per_attribute_rmse(a, b)
        overall = root_mean_square_error(a, b)
        assert np.sqrt(np.mean(per_attr**2)) == pytest.approx(overall)
