"""Unit tests for the run-health layer: exporter, sampler, schema.

Covers the ``repro-metrics/v1`` validator, the OpenMetrics renderer,
the :class:`MetricsExporter` ring/progress/atomic-write behavior, the
``/proc`` resource sampler (including its documented no-op fallback),
the :func:`run_health` composition, and the ISSUE's <2% overhead budget
for one exporter tick plus one sampler tick.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exceptions import ValidationError
from repro.telemetry import (
    METRICS_SCHEMA,
    MetricsExporter,
    Recorder,
    ResourceSampler,
    render_openmetrics,
    run_health,
    sampling_supported,
    trace,
    validate_metrics,
)
from repro.telemetry.sampler import (
    announce_workers,
    announced_workers,
    clear_workers,
    read_process,
    read_shm_bytes,
)

_LINUX = sampling_supported()


@pytest.fixture(autouse=True)
def _isolated_worker_registry():
    clear_workers()
    yield
    clear_workers()


def _document(**overrides):
    document = {
        "schema": METRICS_SCHEMA,
        "created_unix": 100.0,
        "updated_unix": 101.0,
        "interval_s": 1.0,
        "ring": 8,
        "snapshots": [
            {"ts_unix": 101.0, "counters": {"c": 1.0}, "gauges": {}}
        ],
    }
    document.update(overrides)
    return document


class TestMetricsSchema:
    def test_accepts_minimal_document(self):
        assert validate_metrics(_document()) is not None

    def test_rejects_wrong_schema_tag(self):
        with pytest.raises(ValidationError, match="schema"):
            validate_metrics(_document(schema="bogus/v9"))

    def test_rejects_unknown_snapshot_field(self):
        bad = _document(
            snapshots=[{"ts_unix": 1.0, "counters": {}, "gauges": {},
                        "extra": 1}]
        )
        with pytest.raises(ValidationError, match="unknown snapshot"):
            validate_metrics(bad)

    def test_rejects_overfull_ring(self):
        snapshots = [
            {"ts_unix": float(i), "counters": {}, "gauges": {}}
            for i in range(3)
        ]
        with pytest.raises(ValidationError, match="ring"):
            validate_metrics(_document(ring=2, snapshots=snapshots))

    def test_rejects_bad_progress(self):
        bad = _document(
            snapshots=[{
                "ts_unix": 1.0,
                "counters": {},
                "gauges": {},
                "progress": {"total": "three"},
            }]
        )
        with pytest.raises(ValidationError, match="progress"):
            validate_metrics(bad)

    def test_collects_every_problem(self):
        with pytest.raises(ValidationError) as excinfo:
            validate_metrics(
                {"schema": "nope", "snapshots": "not-a-list"}
            )
        message = str(excinfo.value)
        assert "schema" in message
        assert "snapshots" in message
        assert "interval_s" in message


class TestOpenMetrics:
    def test_counters_gauges_progress_and_eof(self):
        text = render_openmetrics(
            {
                "ts_unix": 5.0,
                "counters": {"cache.hit": 3.0},
                "gauges": {"engine.workers": 4.0},
                "progress": {"total": 10.0, "completed": 2.0},
            }
        )
        assert "# TYPE repro_cache_hit_total counter" in text
        assert "repro_cache_hit_total 3" in text
        assert "# TYPE repro_engine_workers gauge" in text
        assert "repro_engine_progress_total 10" in text
        assert text.rstrip().endswith("# EOF")

    def test_names_are_sanitized(self):
        text = render_openmetrics(
            {"ts_unix": 0.0, "counters": {"a.b-c d": 1.0}, "gauges": {}}
        )
        assert "repro_a_b_c_d_total 1" in text


class TestMetricsExporter:
    def test_flush_writes_valid_json_and_prom(self, tmp_path):
        recorder = Recorder()
        recorder.count("cache.hit", 2)
        recorder.gauge("engine.workers", 4.0)
        exporter = MetricsExporter(recorder, tmp_path / "m.json")
        exporter.flush()
        document = json.loads((tmp_path / "m.json").read_text())
        validate_metrics(document)
        [snapshot] = document["snapshots"]
        assert snapshot["counters"] == {"cache.hit": 2}
        assert "repro_engine_workers 4" in (
            (tmp_path / "m.prom").read_text()
        )

    def test_ring_bounds_snapshots(self, tmp_path):
        recorder = Recorder()
        exporter = MetricsExporter(recorder, tmp_path / "m.json", ring=3)
        for _ in range(7):
            exporter.flush()
        document = json.loads((tmp_path / "m.json").read_text())
        assert len(document["snapshots"]) == 3
        assert document["ring"] == 3
        validate_metrics(document)

    def test_progress_derived_from_heartbeat_gauges(self, tmp_path):
        recorder = Recorder()
        exporter = MetricsExporter(recorder, tmp_path / "m.json")
        recorder.gauge("engine.jobs.total", 10.0)
        recorder.gauge("engine.jobs.completed", 2.0)
        recorder.gauge("engine.jobs.cached", 1.0)
        first = exporter.flush()
        assert first["progress"]["total"] == 10.0
        assert first["progress"]["completed"] == 2.0
        assert first["progress"]["cached"] == 1.0
        recorder.gauge("engine.jobs.completed", 6.0)
        time.sleep(0.01)
        second = exporter.flush()
        assert second["progress"]["rate_jobs_per_s"] > 0.0
        assert second["progress"]["eta_s"] > 0.0

    def test_no_progress_without_heartbeat(self, tmp_path):
        recorder = Recorder()
        exporter = MetricsExporter(recorder, tmp_path / "m.json")
        assert "progress" not in exporter.flush()

    def test_thread_lifecycle_and_final_flush(self, tmp_path):
        recorder = Recorder()
        recorder.count("events")
        exporter = MetricsExporter(
            recorder, tmp_path / "m.json", interval=0.02
        )
        with exporter:
            time.sleep(0.08)
        document = json.loads((tmp_path / "m.json").read_text())
        validate_metrics(document)
        # Periodic ticks plus the final stop() flush.
        assert len(document["snapshots"]) >= 2
        exporter.stop()  # idempotent

    def test_double_start_raises(self, tmp_path):
        exporter = MetricsExporter(Recorder(), tmp_path / "m.json")
        exporter.start()
        try:
            with pytest.raises(ValidationError, match="already running"):
                exporter.start()
        finally:
            exporter.stop()

    def test_rejects_bad_interval_and_ring(self, tmp_path):
        with pytest.raises(ValidationError, match="interval"):
            MetricsExporter(Recorder(), tmp_path / "m.json", interval=0.0)
        with pytest.raises(ValidationError, match="ring"):
            MetricsExporter(Recorder(), tmp_path / "m.json", ring=0)


class TestProcReaders:
    @pytest.mark.skipif(not _LINUX, reason="needs /proc")
    def test_read_own_process_is_plausible(self):
        reading = read_process(os.getpid())
        assert reading is not None
        # A running CPython interpreter resides in at least 1 MiB and
        # has burned some CPU getting here.
        assert reading["rss_bytes"] > 1024 * 1024
        assert reading["cpu_seconds"] >= 0.0

    def test_read_dead_process_returns_none(self):
        # PID 2**22+1 exceeds the default pid_max; never a live process.
        assert read_process(4194305) is None

    @pytest.mark.skipif(not _LINUX, reason="needs /dev/shm")
    def test_shm_bytes_without_segments_is_zero(self):
        assert read_shm_bytes() == 0

    def test_worker_registry_round_trip(self):
        assert announced_workers() == set()
        announce_workers([101, 102])
        announce_workers((102, 103))
        assert announced_workers() == {101, 102, 103}
        clear_workers()
        assert announced_workers() == set()


class TestResourceSampler:
    @pytest.mark.skipif(not _LINUX, reason="needs /proc")
    def test_sample_once_publishes_parent_gauges(self):
        recorder = Recorder()
        sampler = ResourceSampler(recorder)
        sampler.sample_once()
        assert recorder.gauges["resource.rss_bytes"] > 0.0
        assert recorder.gauges["resource.rss_peak_bytes"] >= (
            recorder.gauges["resource.rss_bytes"]
        )
        assert recorder.counters["resource.samples"] == 1

    @pytest.mark.skipif(not _LINUX, reason="needs /proc")
    def test_worker_attribution_gauges(self):
        # Announce our own PID as a "worker": always alive, always
        # readable, and the per-PID gauges must appear under it.
        pid = os.getpid()
        announce_workers([pid])
        recorder = Recorder()
        sampler = ResourceSampler(recorder)
        sampler.sample_once()
        assert recorder.gauges["resource.workers"] == 1.0
        assert recorder.gauges[
            f"resource.worker.{pid}.rss_peak_bytes"
        ] > 0.0
        assert pid in sampler.worker_peaks()

    @pytest.mark.skipif(not _LINUX, reason="needs /proc")
    def test_dead_worker_keeps_recorded_peaks(self):
        pid = os.getpid()
        announce_workers([pid, 4194305])
        recorder = Recorder()
        sampler = ResourceSampler(recorder)
        sampler.sample_once()
        # Only the live PID counts as a worker; the dead one never
        # produced a reading and gets a zeroed placeholder.
        assert recorder.gauges["resource.workers"] == 1.0

    @pytest.mark.skipif(not _LINUX, reason="needs /proc")
    def test_thread_lifecycle(self):
        recorder = Recorder()
        with ResourceSampler(recorder, interval=0.02) as sampler:
            assert sampler.enabled
            time.sleep(0.06)
        assert not sampler.enabled
        assert recorder.counters["resource.samples"] >= 2
        sampler.stop()  # idempotent

    def test_unsupported_platform_is_noop(self, monkeypatch):
        import repro.telemetry.sampler as sampler_module

        monkeypatch.setattr(
            sampler_module, "sampling_supported", lambda: False
        )
        recorder = Recorder()
        sampler = ResourceSampler(recorder).start()
        assert not sampler.enabled
        sampler.stop()
        assert recorder.gauges == {}
        assert recorder.counters == {}

    def test_rejects_bad_interval(self):
        with pytest.raises(ValidationError, match="interval"):
            ResourceSampler(Recorder(), interval=-1.0)


class TestRunHealth:
    def test_composes_exporter_and_sampler(self, tmp_path):
        recorder = Recorder()
        with trace.recording(recorder):
            with run_health(
                recorder, metrics_path=tmp_path / "m.json", interval=5.0
            ) as health:
                assert health.exporter is not None
                if _LINUX:
                    assert health.sampler is not None
                with trace.span("work"):
                    pass
        document = json.loads((tmp_path / "m.json").read_text())
        validate_metrics(document)
        if _LINUX:
            # The final snapshot (exporter stops after the sampler)
            # carries the sampler's gauges.
            final = document["snapshots"][-1]
            assert final["gauges"]["resource.rss_peak_bytes"] > 0.0

    def test_metrics_path_none_skips_exporter(self):
        recorder = Recorder()
        with run_health(recorder) as health:
            assert health.exporter is None

    def test_sampling_disabled_on_request(self, tmp_path):
        recorder = Recorder()
        with run_health(
            recorder,
            metrics_path=tmp_path / "m.json",
            sample_resources=False,
        ) as health:
            assert health.sampler is None


class TestRunHealthOverheadBudget:
    @pytest.mark.skipif(not _LINUX, reason="needs /proc")
    def test_tick_costs_fit_the_two_percent_budget(self, tmp_path):
        """One second of run-health ticks must cost < 2% of that second.

        At default cadence each wall-clock second holds one exporter
        flush (interval 1.0) and five sampler samples (interval 0.2);
        the summed tick costs must stay under 20ms.  Measuring per-tick
        cost directly (instead of A/B-ing two full runs) keeps the
        assertion robust to machine noise.
        """
        recorder = Recorder()
        # A realistically-sized recorder: dozens of metrics live.
        for i in range(40):
            recorder.count(f"counter.{i}", i)
            recorder.gauge(f"gauge.{i}", float(i))
        recorder.gauge("engine.jobs.total", 100.0)
        recorder.gauge("engine.jobs.completed", 50.0)
        announce_workers([os.getpid()])
        exporter = MetricsExporter(recorder, tmp_path / "m.json")
        sampler = ResourceSampler(recorder)
        exporter.flush()  # warmup: first write pays file creation
        sampler.sample_once()

        ticks = 20
        started = time.perf_counter()
        for _ in range(ticks):
            exporter.flush()
        flush_cost = (time.perf_counter() - started) / ticks

        started = time.perf_counter()
        for _ in range(ticks):
            sampler.sample_once()
        sample_cost = (time.perf_counter() - started) / ticks

        per_second = flush_cost * 1.0 + sample_cost * 5.0
        assert per_second < 0.02
