"""Unit tests for repro.engine.jobs: specs, keys, seed derivation."""

import numpy as np
import pytest

from repro.engine.jobs import (
    JobSpec,
    derive_rng,
    execute_job,
    resolve_task,
)
from repro.exceptions import JobExecutionError, ValidationError
from repro.utils.rng import spawn_generators

# Module-level tasks so specs can reference them by import path.


def echo_task(params, rng):
    return {"echo": params["value"]}


def draw_task(params, rng):
    return {"draws": rng.normal(size=int(params["count"])).tolist()}


def failing_task(params, rng):
    raise RuntimeError("boom")


def non_dict_task(params, rng):
    return [1, 2, 3]


_HERE = "tests.unit.test_engine_jobs"


class TestJobSpec:
    def test_key_is_stable(self):
        a = JobSpec(f"{_HERE}:echo_task", {"value": 1}, seed_root=7)
        b = JobSpec(f"{_HERE}:echo_task", {"value": 1}, seed_root=7)
        assert a.key() == b.key()

    def test_key_covers_every_field(self):
        base = JobSpec(f"{_HERE}:echo_task", {"value": 1}, 7, (0,))
        variants = [
            JobSpec(f"{_HERE}:draw_task", {"value": 1}, 7, (0,)),
            JobSpec(f"{_HERE}:echo_task", {"value": 2}, 7, (0,)),
            JobSpec(f"{_HERE}:echo_task", {"value": 1}, 8, (0,)),
            JobSpec(f"{_HERE}:echo_task", {"value": 1}, 7, (1,)),
            JobSpec(f"{_HERE}:echo_task", {"value": 1}, None, (0,)),
        ]
        keys = {spec.key() for spec in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_key_ignores_param_order(self):
        a = JobSpec(f"{_HERE}:echo_task", {"value": 1, "x": 2})
        b = JobSpec(f"{_HERE}:echo_task", {"x": 2, "value": 1})
        assert a.key() == b.key()

    def test_rejects_non_json_params(self):
        with pytest.raises(ValidationError):
            JobSpec(f"{_HERE}:echo_task", {"value": np.zeros(3)})

    def test_rejects_malformed_task(self):
        with pytest.raises(ValidationError):
            JobSpec("no-colon-here", {})

    def test_rejects_negative_seed(self):
        with pytest.raises(ValidationError):
            JobSpec(f"{_HERE}:echo_task", {}, seed_root=-1)

    def test_seed_path_normalized_to_ints(self):
        spec = JobSpec(f"{_HERE}:echo_task", {}, 7, (np.int64(2), 3))
        assert spec.seed_path == (2, 3)


class TestDeriveRng:
    def test_matches_spawn_generators_tree(self):
        """The engine's flat derivation equals the historical nested
        spawn tree, for any (point, trial) coordinate."""
        expected = spawn_generators(11, 4)[2].spawn(3)[1].normal(size=5)
        spec = JobSpec(f"{_HERE}:echo_task", {}, seed_root=11, seed_path=(2, 1))
        actual = derive_rng(spec).normal(size=5)
        np.testing.assert_array_equal(expected, actual)

    def test_empty_path_is_root_seed(self):
        spec = JobSpec(f"{_HERE}:echo_task", {}, seed_root=52)
        np.testing.assert_array_equal(
            derive_rng(spec).normal(size=3),
            np.random.default_rng(52).normal(size=3),
        )

    def test_self_seeding_specs_get_none(self):
        assert derive_rng(JobSpec(f"{_HERE}:echo_task", {})) is None


class TestExecuteJob:
    def test_runs_task_and_times_it(self):
        result = execute_job(JobSpec(f"{_HERE}:echo_task", {"value": 9}))
        assert result.values == {"echo": 9}
        assert result.duration >= 0.0
        assert result.cached is False

    def test_same_spec_same_draws(self):
        spec = JobSpec(f"{_HERE}:draw_task", {"count": 4}, 3, (1, 2))
        a = execute_job(spec)
        b = execute_job(spec)
        assert a.values == b.values
        assert a.key == b.key == spec.key()

    def test_task_exception_wrapped(self):
        with pytest.raises(JobExecutionError, match="RuntimeError: boom"):
            execute_job(JobSpec(f"{_HERE}:failing_task", {}))

    def test_non_dict_payload_rejected(self):
        with pytest.raises(JobExecutionError, match="expected a JSON"):
            execute_job(JobSpec(f"{_HERE}:non_dict_task", {}))

    def test_unresolvable_task(self):
        with pytest.raises(ValidationError, match="cannot resolve"):
            execute_job(JobSpec("repro.engine.jobs:no_such_function", {}))
        with pytest.raises(ValidationError, match="cannot resolve"):
            resolve_task("no.such.module:function")
