"""Unit tests for repro.experiments.reporting."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSeries
from repro.experiments.reporting import render_series, series_to_rows


def _series():
    return ExperimentSeries(
        name="figureX",
        x_label="m",
        x_values=[5.0, 10.0],
        series={"UDR": [4.5, 4.4999], "BE-DR": [3.0, 2.0]},
        metadata={"n_records": 100, "noise_std": 5.0},
    )


class TestSeriesToRows:
    def test_header_row(self):
        rows = series_to_rows(_series())
        assert rows[0] == ["m", "UDR", "BE-DR"]

    def test_one_row_per_point(self):
        rows = series_to_rows(_series())
        assert len(rows) == 3

    def test_integers_rendered_without_decimals(self):
        rows = series_to_rows(_series())
        assert rows[1][0] == "5"
        assert rows[1][2] == "3"

    def test_floats_rendered_with_precision(self):
        rows = series_to_rows(_series())
        assert rows[2][1] == "4.4999"

    def test_rejects_non_series(self):
        with pytest.raises(ValidationError):
            series_to_rows({"x": [1, 2]})


class TestRenderSeries:
    def test_contains_title_and_metadata(self):
        text = render_series(_series())
        assert "figureX" in text
        assert "n_records=100" in text
        assert "noise_std=5" in text

    def test_custom_title(self):
        text = render_series(_series(), title="Figure 1 (reproduced)")
        assert text.startswith("Figure 1 (reproduced)")

    def test_columns_aligned(self):
        text = render_series(_series())
        lines = [
            line for line in text.splitlines() if "|" in line and "-" not in line
        ]
        positions = [line.index("|") for line in lines]
        assert len(set(positions)) == 1

    def test_every_method_in_header(self):
        text = render_series(_series())
        assert "UDR" in text and "BE-DR" in text
