"""Unit tests for the ASCII series plotter."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.ascii_plot import plot_series
from repro.experiments.config import ExperimentSeries


def _series():
    return ExperimentSeries(
        name="demo",
        x_label="m",
        x_values=[0.0, 1.0, 2.0, 3.0],
        series={
            "flat": [4.0, 4.0, 4.0, 4.0],
            "falling": [5.0, 4.0, 3.0, 2.0],
        },
    )


class TestPlotSeries:
    def test_contains_legend_and_title(self):
        text = plot_series(_series())
        assert "demo" in text
        assert "* flat" in text
        assert "o falling" in text

    def test_dimensions_respected(self):
        text = plot_series(_series(), width=40, height=10)
        lines = text.splitlines()
        canvas_rows = [line for line in lines if "|" in line]
        assert len(canvas_rows) == 10

    def test_y_axis_labels_bracket_data(self):
        text = plot_series(_series())
        labelled = [
            line for line in text.splitlines()
            if "|" in line and line.split("|")[0].strip()
        ]
        top = float(labelled[0].split("|")[0])
        bottom = float(labelled[-1].split("|")[0])
        # Padded axis must bracket the data range [2, 5].
        assert top >= 5.0
        assert bottom <= 2.0

    def test_flat_curve_occupies_single_row(self):
        series = ExperimentSeries(
            name="flat-only",
            x_label="x",
            x_values=[0.0, 1.0, 2.0],
            series={"flat": [4.0, 4.0, 4.0]},
        )
        text = plot_series(series)
        rows_with_glyph = [
            line for line in text.splitlines() if "*" in line and "|" in line
        ]
        assert len(rows_with_glyph) == 1

    def test_monotone_curve_renders_monotone(self):
        series = ExperimentSeries(
            name="mono",
            x_label="x",
            x_values=np.arange(10.0),
            series={"down": np.linspace(10.0, 0.0, 10)},
        )
        text = plot_series(series, width=40, height=12)
        # First glyph column index per canvas row must increase downward.
        columns = []
        for line in text.splitlines():
            if "|" in line and "*" in line:
                columns.append(line.index("*"))
        assert columns == sorted(columns)

    def test_rejects_non_series(self):
        with pytest.raises(ValidationError):
            plot_series({"x": [1]})

    def test_rejects_too_many_curves(self):
        series = ExperimentSeries(
            name="many",
            x_label="x",
            x_values=[0.0, 1.0],
            series={f"c{i}": [1.0, 2.0] for i in range(9)},
        )
        with pytest.raises(ValidationError, match="more than"):
            plot_series(series)

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValidationError):
            plot_series(_series(), width=5)

    def test_single_point_series(self):
        series = ExperimentSeries(
            name="one",
            x_label="x",
            x_values=[2.0],
            series={"p": [3.0]},
        )
        text = plot_series(series)
        assert "*" in text


class TestBarChart:
    def test_basic_render(self):
        from repro.experiments.ascii_plot import bar_chart

        text = bar_chart(["a", "b"], [4.0, 2.0], width=8)
        first, second = text.splitlines()
        assert first.count("#") == 8
        assert second.count("#") == 4
        assert first.startswith("a")
        assert "|" in first

    def test_tiny_nonzero_value_keeps_one_glyph(self):
        from repro.experiments.ascii_plot import bar_chart

        text = bar_chart(["big", "tiny"], [1000.0, 0.001], width=10)
        assert text.splitlines()[1].count("#") == 1

    def test_zero_values_draw_no_bar(self):
        from repro.experiments.ascii_plot import bar_chart

        text = bar_chart(["empty"], [0.0])
        assert "#" not in text

    def test_value_format_hook(self):
        from repro.experiments.ascii_plot import bar_chart

        text = bar_chart(["x"], [0.5], value_format=lambda v: f"<{v}>")
        assert text.endswith("<0.5>")

    def test_long_labels_truncated(self):
        from repro.experiments.ascii_plot import bar_chart

        text = bar_chart(["L" * 50, "s"], [1.0, 1.0])
        assert text.splitlines()[0].startswith("L" * 32 + " ")

    def test_validation(self):
        from repro.experiments.ascii_plot import bar_chart

        with pytest.raises(ValidationError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValidationError, match="at least one"):
            bar_chart([], [])
        with pytest.raises(ValidationError, match="non-negative"):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValidationError, match="non-negative"):
            bar_chart(["a"], [float("nan")])
        with pytest.raises(ValidationError, match="width"):
            bar_chart(["a"], [1.0], width=4)
