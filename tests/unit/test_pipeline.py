"""Unit tests for repro.core.pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import AttackPipeline, evaluate_attacks
from repro.exceptions import ConfigurationError
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor

from tests.conftest import NOISE_STD


def _attacks():
    return {
        "NDR": NoiseDistributionReconstructor(),
        "BE-DR": BayesEstimateReconstructor(),
    }


class TestEvaluateAttacks:
    def test_outcomes_keyed_by_attack(self, disguised_dataset):
        outcomes = evaluate_attacks(disguised_dataset, _attacks())
        assert set(outcomes) == {"NDR", "BE-DR"}
        for name, outcome in outcomes.items():
            assert outcome.name == name
            assert outcome.rmse > 0.0
            assert outcome.attribute_rmse.shape == (
                disguised_dataset.n_attributes,
            )

    def test_rmse_consistent_with_result(self, disguised_dataset):
        from repro.metrics.error import root_mean_square_error

        outcomes = evaluate_attacks(disguised_dataset, _attacks())
        for outcome in outcomes.values():
            assert outcome.rmse == pytest.approx(
                root_mean_square_error(
                    disguised_dataset.original, outcome.result
                )
            )

    def test_empty_attacks_rejected(self, disguised_dataset):
        with pytest.raises(ConfigurationError):
            evaluate_attacks(disguised_dataset, {})


class TestAttackPipeline:
    def test_run_on_matrix(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), _attacks()
        )
        report = pipeline.run(small_dataset.values, rng=0)
        assert report.rmse("BE-DR") < report.rmse("NDR")

    def test_run_on_synthetic_dataset(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), _attacks()
        )
        report = pipeline.run(small_dataset, rng=0)
        assert report.dataset.n_records == small_dataset.n_records

    def test_ranking_sorted_by_rmse(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), _attacks()
        )
        report = pipeline.run(small_dataset, rng=1)
        ranking = report.ranking
        rmses = [report.rmse(name) for name in ranking]
        assert rmses == sorted(rmses)

    def test_metadata_attached(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), _attacks()
        )
        report = pipeline.run(small_dataset, rng=2, metadata={"m": 12})
        assert report.metadata == {"m": 12}

    def test_deterministic_given_seed(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), _attacks()
        )
        a = pipeline.run(small_dataset, rng=3)
        b = pipeline.run(small_dataset, rng=3)
        assert a.rmse("BE-DR") == b.rmse("BE-DR")

    def test_unknown_attack_name_raises(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), _attacks()
        )
        report = pipeline.run(small_dataset, rng=4)
        with pytest.raises(KeyError, match="available"):
            report.rmse("nope")

    def test_rejects_non_scheme(self):
        with pytest.raises(ConfigurationError, match="RandomizationScheme"):
            AttackPipeline("noise", _attacks())

    def test_rejects_empty_attacks(self):
        with pytest.raises(ConfigurationError):
            AttackPipeline(AdditiveNoiseScheme(std=1.0), {})

    def test_rejects_non_reconstructor_values(self):
        with pytest.raises(ConfigurationError, match="not a Reconstructor"):
            AttackPipeline(
                AdditiveNoiseScheme(std=1.0), {"bad": lambda y: y}
            )

    def test_attack_names_property(self):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=1.0), _attacks()
        )
        assert pipeline.attack_names == ["NDR", "BE-DR"]


class _ExplodingAttack(BayesEstimateReconstructor):
    def reconstruct(self, dataset):
        raise RuntimeError("singular covariance")


class TestPreDisguisedInput:
    def test_run_accepts_disguised_dataset(self, small_dataset):
        scheme = AdditiveNoiseScheme(std=NOISE_STD)
        disguised = scheme.disguise(small_dataset.values, rng=0)
        pipeline = AttackPipeline(scheme, _attacks())
        report = pipeline.run(disguised)
        assert report.dataset is disguised
        assert report.rmse("BE-DR") > 0.0

    def test_replay_matches_fresh_run(self, small_dataset):
        """Replaying the disguised table from a fresh run scores the
        attacks identically — no second noise draw happens."""
        scheme = AdditiveNoiseScheme(std=NOISE_STD)
        pipeline = AttackPipeline(scheme, _attacks())
        fresh = pipeline.run(small_dataset, rng=3)
        replayed = pipeline.run(fresh.dataset)
        for name in pipeline.attack_names:
            assert replayed.rmse(name) == fresh.rmse(name)

    def test_mismatched_noise_model_rejected(self, small_dataset):
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            small_dataset.values, rng=0
        )
        other = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD * 3), _attacks()
        )
        with pytest.raises(ConfigurationError, match="does not match"):
            other.run(disguised)


class TestFailFast:
    def _battery(self):
        return {
            "BE-DR": BayesEstimateReconstructor(),
            "broken": _ExplodingAttack(),
        }

    def test_default_propagates_attack_errors(self, disguised_dataset):
        with pytest.raises(RuntimeError, match="singular covariance"):
            evaluate_attacks(disguised_dataset, self._battery())

    def test_fail_fast_false_records_error(self, disguised_dataset):
        outcomes = evaluate_attacks(
            disguised_dataset, self._battery(), fail_fast=False
        )
        assert set(outcomes) == {"BE-DR", "broken"}
        broken = outcomes["broken"]
        assert broken.failed
        assert "RuntimeError: singular covariance" in broken.error
        assert np.isnan(broken.rmse)
        assert broken.result is None
        assert not outcomes["BE-DR"].failed

    def test_report_failures_and_ranking(self, small_dataset):
        pipeline = AttackPipeline(
            AdditiveNoiseScheme(std=NOISE_STD), self._battery()
        )
        report = pipeline.run(small_dataset, rng=1, fail_fast=False)
        assert report.failures == {
            "broken": "RuntimeError: singular covariance"
        }
        assert report.ranking == ["BE-DR"]
