"""Unit tests for PCA-DR (Section 5)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import FixedCountSelector

from tests.conftest import NOISE_STD


class TestPCAReconstruction:
    def test_beats_ndr_on_correlated_data(self, disguised_dataset):
        pca = PCAReconstructor().reconstruct(disguised_dataset)
        ndr = NoiseDistributionReconstructor().reconstruct(disguised_dataset)
        original = disguised_dataset.original
        assert root_mean_square_error(original, pca) < root_mean_square_error(
            original, ndr
        )

    def test_largest_gap_finds_true_rank(self, disguised_dataset):
        result = PCAReconstructor().reconstruct(disguised_dataset)
        # The fixture has exactly 3 principal components.
        assert result.details["n_components"] == 3

    def test_full_rank_projection_returns_disguised(self, disguised_dataset):
        m = disguised_dataset.n_attributes
        result = PCAReconstructor(FixedCountSelector(m)).reconstruct(
            disguised_dataset
        )
        # Section 5.2.2: with p = m nothing is filtered out.
        np.testing.assert_allclose(
            result.estimate, disguised_dataset.disguised, atol=1e-9
        )

    def test_estimate_lies_in_affine_principal_subspace(
        self, disguised_dataset
    ):
        result = PCAReconstructor(FixedCountSelector(3)).reconstruct(
            disguised_dataset
        )
        centered = result.estimate - disguised_dataset.disguised.mean(axis=0)
        # Rank of the centered estimate must be the selected p.
        singular_values = np.linalg.svd(centered, compute_uv=False)
        assert np.sum(singular_values > 1e-6) == 3

    def test_theorem52_bound_reported(self, disguised_dataset):
        result = PCAReconstructor(FixedCountSelector(3)).reconstruct(
            disguised_dataset
        )
        m = disguised_dataset.n_attributes
        expected = NOISE_STD**2 * 3 / m
        assert result.details["noise_mse_bound"] == pytest.approx(expected)

    def test_residual_noise_matches_theorem52(self, small_dataset):
        """The noise surviving the projection carries sigma^2 * p / m."""
        from repro.randomization.additive import AdditiveNoiseScheme

        scheme = AdditiveNoiseScheme(std=NOISE_STD)
        disguised = scheme.disguise(small_dataset.values, rng=3)
        result = PCAReconstructor(FixedCountSelector(3)).reconstruct(disguised)
        projector_details = result.details
        # Project the realized noise with the same projector the attack
        # used: reconstruct it from the estimate's linear map instead of
        # recomputing, by applying the attack to the pure noise matrix.
        from repro.linalg.covariance import covariance_from_disguised
        from repro.linalg.eigen import sorted_eigh

        covariance = covariance_from_disguised(
            disguised.disguised, NOISE_STD**2
        )
        projector = sorted_eigh(covariance).projector(3)
        projected_noise = disguised.noise @ projector
        expected = NOISE_STD**2 * 3 / small_dataset.n_attributes
        assert float(np.mean(projected_noise**2)) == pytest.approx(
            expected, rel=0.1
        )
        assert projector_details["n_components"] == 3

    def test_oracle_covariance_used(self, small_dataset, disguised_dataset):
        oracle = small_dataset.population_covariance
        result = PCAReconstructor(oracle_covariance=oracle).reconstruct(
            disguised_dataset
        )
        assert result.details["used_oracle_covariance"] is True
        assert result.details["n_components"] == 3

    def test_oracle_covariance_dim_checked(self, disguised_dataset):
        with pytest.raises(ValidationError, match="oracle covariance"):
            PCAReconstructor(oracle_covariance=np.eye(2)).reconstruct(
                disguised_dataset
            )

    def test_rejects_non_selector(self):
        with pytest.raises(ValidationError, match="ComponentSelector"):
            PCAReconstructor(selector="largest-gap")

    def test_correlated_noise_bound_is_none(self, small_dataset):
        from repro.randomization.correlated import CorrelatedNoiseScheme

        cov = small_dataset.population_covariance
        scheme = CorrelatedNoiseScheme.matching_data_covariance(
            cov, noise_power=cov.shape[0] * NOISE_STD**2
        )
        disguised = scheme.disguise(small_dataset.values, rng=5)
        result = PCAReconstructor().reconstruct(disguised)
        assert result.details["noise_mse_bound"] is None

    def test_means_restored(self):
        """Non-zero-mean data must come back centered correctly."""
        from repro.data.spectra import two_level_spectrum
        from repro.data.synthetic import generate_dataset
        from repro.randomization.additive import AdditiveNoiseScheme

        dataset = generate_dataset(
            spectrum=two_level_spectrum(8, 2, total_variance=800.0),
            n_records=2000,
            mean=np.full(8, 50.0),
            rng=0,
        )
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            dataset.values, rng=1
        )
        result = PCAReconstructor().reconstruct(disguised)
        np.testing.assert_allclose(
            result.estimate.mean(axis=0), np.full(8, 50.0), atol=0.5
        )
