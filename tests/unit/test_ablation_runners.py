"""Unit tests for the ablation runners' interfaces and validation.

Behavioural (shape) assertions live in tests/integration/test_ablations;
these cover the runner mechanics at tiny scale.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (
    run_ablation_covariance,
    run_ablation_marginals,
    run_ablation_samplesize,
    run_ablation_selection,
    run_ablation_utility,
)
from repro.experiments.config import ExperimentSeries


class TestInterfaces:
    def test_selection_returns_series(self):
        series = run_ablation_selection(
            n_attributes=12, n_principal=3, n_records=200, seed=1
        )
        assert isinstance(series, ExperimentSeries)
        assert series.name == "ablation-selection"
        assert len(series.methods) == 3
        assert series.x_values.size == 2  # two workloads

    def test_covariance_series_shape(self):
        series = run_ablation_covariance(
            sample_sizes=(100, 300), n_attributes=10, seed=2
        )
        assert series.x_values.tolist() == [100.0, 300.0]
        assert set(series.methods) == {
            "PCA-estimated",
            "PCA-oracle",
            "BE-estimated",
            "BE-oracle",
        }

    def test_samplesize_series_shape(self):
        series = run_ablation_samplesize(
            sample_sizes=(150, 400), n_attributes=10, seed=3
        )
        assert series.x_values.tolist() == [150.0, 400.0]
        assert "BE-DR" in series.methods

    def test_utility_series_shape(self):
        series = run_ablation_utility(n_train=600, n_test=400, seed=4)
        assert series.x_values.size == 2  # iid vs correlated
        assert set(series.methods) == {
            "original",
            "disguised_naive",
            "disguised_corrected",
        }
        for method in series.methods:
            values = series.curve(method)
            assert np.all((0.0 <= values) & (values <= 1.0))

    def test_marginals_series_records_shapes(self):
        series = run_ablation_marginals(
            marginals=("normal", "uniform"),
            n_attributes=10,
            n_records=300,
            seed=5,
        )
        assert series.metadata["marginals"] == ["normal", "uniform"]
        assert series.x_values.size == 2

    def test_deterministic_given_seed(self):
        a = run_ablation_samplesize(
            sample_sizes=(150,), n_attributes=8, seed=9
        )
        b = run_ablation_samplesize(
            sample_sizes=(150,), n_attributes=8, seed=9
        )
        for method in a.methods:
            np.testing.assert_array_equal(a.curve(method), b.curve(method))


class TestValidation:
    def test_covariance_rejects_empty_sizes(self):
        with pytest.raises(ConfigurationError):
            run_ablation_covariance(sample_sizes=())

    def test_samplesize_rejects_empty_sizes(self):
        with pytest.raises(ConfigurationError):
            run_ablation_samplesize(sample_sizes=())

    def test_marginals_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            run_ablation_marginals(marginals=())
