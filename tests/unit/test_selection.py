"""Unit tests for PCA-DR component-selection strategies."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.reconstruction.selection import (
    EnergyFractionSelector,
    FixedCountSelector,
    LargestGapSelector,
)

TWO_LEVEL = np.array([400.0, 400.0, 400.0, 4.0, 4.0, 4.0, 4.0, 4.0])


class TestFixedCountSelector:
    def test_returns_requested_count(self):
        assert FixedCountSelector(3).select(TWO_LEVEL) == 3

    def test_clamps_to_spectrum_length(self):
        assert FixedCountSelector(100).select(TWO_LEVEL) == 8

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            FixedCountSelector(0)

    def test_rejects_empty_spectrum(self):
        with pytest.raises(ValidationError):
            FixedCountSelector(1).select(np.array([]))

    def test_count_property(self):
        assert FixedCountSelector(5).count == 5


class TestEnergyFractionSelector:
    def test_selects_minimum_prefix(self):
        # Top 3 hold 1200 of 1220 total (98.4%).
        assert EnergyFractionSelector(0.95).select(TWO_LEVEL) == 3

    def test_full_energy_keeps_all(self):
        assert EnergyFractionSelector(1.0).select(TWO_LEVEL) == 8

    def test_small_fraction_keeps_one(self):
        assert EnergyFractionSelector(0.1).select(TWO_LEVEL) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            EnergyFractionSelector(0.0)
        with pytest.raises(ValidationError):
            EnergyFractionSelector(1.1)


class TestLargestGapSelector:
    def test_finds_two_level_split(self):
        assert LargestGapSelector().select(TWO_LEVEL) == 3

    def test_flat_spectrum_keeps_all(self):
        assert LargestGapSelector().select(np.full(6, 50.0)) == 6

    def test_max_rank_cap(self):
        # Gaps within the capped range are all zero (flat plateau), so the
        # first split wins; the point is that the cap is respected.
        assert LargestGapSelector(max_rank=2).select(TWO_LEVEL) <= 2
        spectrum = np.array([100.0, 90.0, 1.0, 0.5])
        assert LargestGapSelector().select(spectrum) == 2
        assert LargestGapSelector(max_rank=1).select(spectrum) == 1

    def test_rejects_bad_max_rank(self):
        with pytest.raises(ValidationError):
            LargestGapSelector(max_rank=0)

    def test_noisy_two_level_still_found(self):
        rng = np.random.default_rng(0)
        noisy = np.sort(TWO_LEVEL + rng.normal(0.0, 1.0, 8))[::-1]
        assert LargestGapSelector().select(noisy) == 3
