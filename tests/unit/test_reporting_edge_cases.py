"""Edge-case coverage for the series renderers.

`experiments/ascii_plot.py` and `experiments/reporting.py` sit at the
end of every CLI run, so they must cope with whatever the pipeline
hands them: empty sweeps, single-point sweeps, and the NaN curve
segments a failed attack leaves behind (the pipeline records the error
and carries on — see ``evaluate_attacks(fail_fast=False)``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.config import ExperimentSeries
from repro.exceptions import ValidationError
from repro.experiments.ascii_plot import plot_series
from repro.experiments.reporting import render_series, series_to_rows


def _series(x, curves, name="edge", metadata=None):
    return ExperimentSeries(
        name=name,
        x_label="x",
        x_values=np.asarray(x, dtype=np.float64),
        series={k: np.asarray(v, dtype=np.float64) for k, v in curves.items()},
        metadata=metadata or {},
    )


class TestReportingEmptySeries:
    def test_rows_are_header_only(self):
        rows = series_to_rows(_series([], {"UDR": []}))
        assert rows == [["x", "UDR"]]

    def test_render_produces_header_and_separator(self):
        text = render_series(_series([], {"UDR": []}))
        lines = text.splitlines()
        assert lines[0] == "Experiment: edge"
        assert "x | UDR" in text
        assert len(lines) == 3  # heading, header row, separator


class TestReportingSinglePoint:
    def test_single_point_renders_one_data_row(self):
        text = render_series(_series([5.0], {"UDR": [1.25]}))
        assert "1.2500" in text
        assert text.splitlines()[-1].strip().startswith("5")

    def test_integer_values_render_without_decimals(self):
        text = render_series(_series([2.0], {"UDR": [3.0]}))
        assert "3" in text.splitlines()[-1]
        assert "3.0000" not in text


class TestReportingNaN:
    def test_nan_renders_literally(self):
        text = render_series(
            _series([1.0, 2.0], {"UDR": [1.0, np.nan], "SF": [np.nan, 2.0]})
        )
        assert text.count("nan") == 2

    def test_inf_renders_literally(self):
        text = render_series(_series([1.0], {"UDR": [np.inf]}))
        assert "inf" in text

    def test_nan_metadata_value_renders(self):
        text = render_series(
            _series([1.0], {"UDR": [1.0]}, metadata={"rmse": float("nan")})
        )
        assert "rmse=nan" in text


class TestPlotEmptyAndDegenerate:
    def test_empty_series_raises_cleanly(self):
        with pytest.raises(ValidationError, match="no sweep points"):
            plot_series(_series([], {"UDR": []}))

    def test_no_curves_raises_cleanly(self):
        with pytest.raises(ValidationError, match="no curves"):
            plot_series(_series([1.0], {}))

    def test_all_nan_raises_cleanly(self):
        with pytest.raises(ValidationError, match="no finite values"):
            plot_series(
                _series([1.0, 2.0], {"UDR": [np.nan, np.nan]})
            )


class TestPlotSinglePoint:
    def test_single_point_plots(self):
        text = plot_series(_series([3.0], {"UDR": [2.0]}))
        assert "*" in text  # the single marker is drawn
        assert "legend: * UDR" in text

    def test_flat_curve_plots(self):
        text = plot_series(_series([1.0, 2.0, 3.0], {"UDR": [5.0, 5.0, 5.0]}))
        assert "*" in text


class TestPlotNaN:
    def test_partial_nan_curve_still_plots_finite_segment(self):
        text = plot_series(
            _series(
                [1.0, 2.0, 3.0, 4.0],
                {"UDR": [1.0, np.nan, 3.0, 4.0], "SF": [2.0, 2.5, 3.0, 3.5]},
            )
        )
        assert "*" in text  # UDR's finite points drawn
        assert "o" in text  # SF drawn
        assert "legend: * UDR   o SF" in text

    def test_one_all_nan_curve_among_finite_curves(self):
        text = plot_series(
            _series(
                [1.0, 2.0],
                {"UDR": [np.nan, np.nan], "SF": [1.0, 2.0]},
            )
        )
        assert "o" in text  # SF still plots; UDR contributes nothing
