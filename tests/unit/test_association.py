"""Unit tests for MASK randomized-response basket mining."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mining.association import AprioriMiner, FrequentItemset, MaskScheme


def _planted_baskets(n=20000, seed=0):
    """Baskets over 6 items with a planted frequent pair {0, 1}.

    Item 0 appears w.p. 0.5; item 1 copies item 0 w.p. 0.9 (strong
    association); items 2-5 are independent with decreasing supports.
    """
    rng = np.random.default_rng(seed)
    baskets = np.zeros((n, 6), dtype=np.int8)
    baskets[:, 0] = rng.random(n) < 0.5
    copy = rng.random(n) < 0.9
    baskets[:, 1] = np.where(copy, baskets[:, 0], rng.random(n) < 0.5)
    for item, support in zip(range(2, 6), (0.4, 0.3, 0.2, 0.05)):
        baskets[:, item] = rng.random(n) < support
    return baskets


class TestMaskScheme:
    def test_channel_matrix_single_bit(self):
        scheme = MaskScheme(0.9)
        np.testing.assert_allclose(
            scheme.channel_matrix(1), [[0.9, 0.1], [0.1, 0.9]]
        )

    def test_channel_matrix_columns_sum_to_one(self):
        scheme = MaskScheme(0.8)
        for k in (1, 2, 3):
            channel = scheme.channel_matrix(k)
            np.testing.assert_allclose(
                channel.sum(axis=0), np.ones(1 << k)
            )

    def test_disguise_flip_rate(self):
        scheme = MaskScheme(0.8)
        bits = np.ones((50000, 1), dtype=np.int8)
        out = scheme.disguise(bits, rng=0)
        assert out.mean() == pytest.approx(0.8, abs=0.01)

    def test_single_item_support_recovery(self):
        baskets = _planted_baskets()
        scheme = MaskScheme(0.85)
        disguised = scheme.disguise(baskets, rng=1)
        for item in range(6):
            truth = float(baskets[:, item].mean())
            estimate = scheme.estimate_support(disguised, [item])
            assert estimate == pytest.approx(truth, abs=0.03)

    def test_pair_support_recovery(self):
        baskets = _planted_baskets()
        scheme = MaskScheme(0.85)
        disguised = scheme.disguise(baskets, rng=2)
        truth = float(baskets[:, [0, 1]].all(axis=1).mean())
        estimate = scheme.estimate_support(disguised, [0, 1])
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_triple_support_recovery(self):
        baskets = _planted_baskets()
        scheme = MaskScheme(0.9)
        disguised = scheme.disguise(baskets, rng=3)
        truth = float(baskets[:, [0, 1, 2]].all(axis=1).mean())
        estimate = scheme.estimate_support(disguised, [0, 1, 2])
        assert estimate == pytest.approx(truth, abs=0.04)

    def test_estimate_clipped_to_unit_interval(self):
        scheme = MaskScheme(0.6)
        tiny = scheme.disguise(np.zeros((20, 2), dtype=np.int8), rng=4)
        estimate = scheme.estimate_support(tiny, [0, 1])
        assert 0.0 <= estimate <= 1.0

    def test_rejects_half_probability(self):
        with pytest.raises(ValidationError):
            MaskScheme(0.5)

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            MaskScheme(0.9).disguise([[0, 2]])

    def test_rejects_empty_itemset(self):
        scheme = MaskScheme(0.9)
        with pytest.raises(ValidationError):
            scheme.estimate_support(np.zeros((5, 3), dtype=np.int8), [])

    def test_rejects_out_of_range_item(self):
        scheme = MaskScheme(0.9)
        with pytest.raises(ValidationError, match="out of range"):
            scheme.estimate_support(np.zeros((5, 3), dtype=np.int8), [7])


class TestAprioriMiner:
    def test_plain_mining_finds_planted_pair(self):
        baskets = _planted_baskets()
        frequent = AprioriMiner(0.4).mine_plain(baskets)
        itemsets = {fs.items for fs in frequent}
        assert (0,) in itemsets and (1,) in itemsets
        assert (0, 1) in itemsets  # the planted association
        assert (5,) not in itemsets  # support 0.05 < 0.4

    def test_supports_are_exact_for_plain_mining(self):
        baskets = _planted_baskets()
        frequent = AprioriMiner(0.4).mine_plain(baskets)
        by_items = {fs.items: fs.support for fs in frequent}
        assert by_items[(0,)] == pytest.approx(
            float(baskets[:, 0].mean())
        )

    def test_disguised_mining_matches_plain(self):
        baskets = _planted_baskets()
        scheme = MaskScheme(0.9)
        disguised = scheme.disguise(baskets, rng=5)
        plain = {
            fs.items for fs in AprioriMiner(0.35).mine_plain(baskets)
        }
        recovered = {
            fs.items
            for fs in AprioriMiner(0.35).mine_disguised(disguised, scheme)
        }
        assert plain == recovered

    def test_apriori_prune_respects_downward_closure(self):
        baskets = _planted_baskets()
        frequent = AprioriMiner(0.3).mine_plain(baskets)
        itemsets = {fs.items for fs in frequent}
        for items in itemsets:
            if len(items) > 1:
                for drop in range(len(items)):
                    subset = items[:drop] + items[drop + 1:]
                    assert subset in itemsets

    def test_max_size_cap(self):
        baskets = _planted_baskets()
        frequent = AprioriMiner(0.05, max_size=1).mine_plain(baskets)
        assert max(len(fs) for fs in frequent) == 1

    def test_results_sorted(self):
        baskets = _planted_baskets()
        frequent = AprioriMiner(0.3).mine_plain(baskets)
        keys = [(len(fs.items), fs.items) for fs in frequent]
        assert keys == sorted(keys)

    def test_rejects_non_mask_scheme(self):
        with pytest.raises(ValidationError, match="MaskScheme"):
            AprioriMiner(0.5).mine_disguised(
                np.zeros((5, 2), dtype=np.int8), "scheme"
            )

    def test_rejects_bad_min_support(self):
        with pytest.raises(ValidationError):
            AprioriMiner(0.0)


class TestFrequentItemset:
    def test_items_sorted(self):
        fs = FrequentItemset((3, 1, 2), 0.5)
        assert fs.items == (1, 2, 3)

    def test_len(self):
        assert len(FrequentItemset((1, 2), 0.5)) == 2
