"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.covariance_builder import CovarianceModel
from repro.data.synthetic import generate_dataset
from repro.exceptions import ValidationError


class TestGenerateDataset:
    def test_shape_and_metadata(self):
        dataset = generate_dataset(
            spectrum=[10.0, 2.0], n_records=50, rng=0
        )
        assert dataset.values.shape == (50, 2)
        assert dataset.n_records == 50
        assert dataset.n_attributes == 2

    def test_sample_covariance_tracks_model(self):
        dataset = generate_dataset(
            spectrum=[100.0, 40.0, 4.0], n_records=50000, rng=1
        )
        sample_cov = np.cov(dataset.values, rowvar=False)
        np.testing.assert_allclose(
            sample_cov,
            dataset.population_covariance,
            atol=2.0,
        )

    def test_zero_mean_by_default(self):
        dataset = generate_dataset(
            spectrum=[50.0, 10.0], n_records=20000, rng=2
        )
        np.testing.assert_allclose(dataset.mean, [0.0, 0.0])
        np.testing.assert_allclose(
            dataset.values.mean(axis=0), [0.0, 0.0], atol=0.2
        )

    def test_custom_mean(self):
        dataset = generate_dataset(
            spectrum=[4.0, 1.0], n_records=20000, mean=[10.0, -5.0], rng=3
        )
        np.testing.assert_allclose(
            dataset.values.mean(axis=0), [10.0, -5.0], atol=0.1
        )

    def test_prebuilt_model_used_directly(self):
        model = CovarianceModel.from_spectrum([9.0, 1.0], rng=4)
        dataset = generate_dataset(model, n_records=10, rng=5)
        assert dataset.covariance_model is model

    def test_deterministic_given_seed(self):
        a = generate_dataset(spectrum=[5.0, 2.0], n_records=20, rng=6)
        b = generate_dataset(spectrum=[5.0, 2.0], n_records=20, rng=6)
        np.testing.assert_array_equal(a.values, b.values)

    def test_model_and_spectrum_mutually_exclusive(self):
        model = CovarianceModel.from_spectrum([2.0, 1.0], rng=0)
        with pytest.raises(ValidationError, match="exactly one"):
            generate_dataset(model, n_records=5, spectrum=[2.0, 1.0])
        with pytest.raises(ValidationError, match="exactly one"):
            generate_dataset(n_records=5)

    def test_mean_length_checked(self):
        with pytest.raises(ValidationError):
            generate_dataset(
                spectrum=[2.0, 1.0], n_records=5, mean=[0.0, 0.0, 0.0]
            )

    def test_rejects_zero_records(self):
        with pytest.raises(ValidationError):
            generate_dataset(spectrum=[1.0], n_records=0)
