"""Unit tests for repro.randomization.randomized_response."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.randomization.randomized_response import WarnerRandomizedResponse


class TestConstruction:
    def test_accepts_valid_theta(self):
        assert WarnerRandomizedResponse(0.8).truth_probability == 0.8

    def test_rejects_half(self):
        with pytest.raises(ValidationError, match="0.5"):
            WarnerRandomizedResponse(0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            WarnerRandomizedResponse(1.5)


class TestDisguise:
    def test_output_is_binary(self):
        scheme = WarnerRandomizedResponse(0.7)
        bits = np.array([0, 1, 1, 0, 1])
        out = scheme.disguise(bits, rng=0)
        assert set(np.unique(out)).issubset({0, 1})

    def test_flip_rate_matches_theta(self):
        scheme = WarnerRandomizedResponse(0.7)
        bits = np.ones(100000, dtype=int)
        out = scheme.disguise(bits, rng=1)
        assert out.mean() == pytest.approx(0.7, abs=0.01)

    def test_theta_one_is_identity(self):
        scheme = WarnerRandomizedResponse(1.0)
        bits = np.array([0, 1, 0, 1])
        np.testing.assert_array_equal(scheme.disguise(bits, rng=2), bits)

    def test_theta_zero_is_complement(self):
        scheme = WarnerRandomizedResponse(0.0)
        bits = np.array([0, 1, 0, 1])
        np.testing.assert_array_equal(
            scheme.disguise(bits, rng=3), 1 - bits
        )

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError, match="0 and 1"):
            WarnerRandomizedResponse(0.7).disguise([0, 2, 1])


class TestEstimateProportion:
    def test_unbiased_recovery(self):
        scheme = WarnerRandomizedResponse(0.75)
        rng = np.random.default_rng(4)
        true_pi = 0.3
        bits = (rng.random(200000) < true_pi).astype(int)
        responses = scheme.disguise(bits, rng=5)
        assert scheme.estimate_proportion(responses) == pytest.approx(
            true_pi, abs=0.01
        )

    def test_clipped_to_unit_interval(self):
        scheme = WarnerRandomizedResponse(0.9)
        # All-zero responses give a raw estimate below zero.
        assert scheme.estimate_proportion(np.zeros(10, dtype=int)) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            WarnerRandomizedResponse(0.7).estimate_proportion([])

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            WarnerRandomizedResponse(0.7).estimate_proportion([0, 3])


class TestPosterior:
    def test_bayes_update_direction(self):
        scheme = WarnerRandomizedResponse(0.9)
        prior = 0.5
        # Seeing a 1 under a mostly-truthful scheme raises belief in 1.
        assert scheme.posterior_truth_probability(1, prior) > prior
        assert scheme.posterior_truth_probability(0, prior) < prior

    def test_known_value(self):
        scheme = WarnerRandomizedResponse(0.8)
        # P(x=1 | r=1) = 0.8*0.5 / (0.8*0.5 + 0.2*0.5) = 0.8
        assert scheme.posterior_truth_probability(1, 0.5) == pytest.approx(0.8)

    def test_extreme_prior_fixed_points(self):
        scheme = WarnerRandomizedResponse(0.7)
        assert scheme.posterior_truth_probability(1, 0.0) == 0.0
        assert scheme.posterior_truth_probability(1, 1.0) == 1.0

    def test_rejects_bad_response(self):
        with pytest.raises(ValidationError):
            WarnerRandomizedResponse(0.7).posterior_truth_probability(2, 0.5)

    def test_privacy_decreases_with_theta(self):
        # Closer theta to 1 => responses more revealing.
        weak = WarnerRandomizedResponse(0.6)
        strong = WarnerRandomizedResponse(0.95)
        assert strong.posterior_truth_probability(
            1, 0.5
        ) > weak.posterior_truth_probability(1, 0.5)
