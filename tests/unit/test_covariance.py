"""Unit tests for repro.linalg.covariance (Theorem 5.1 / 8.2 estimators)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.covariance import (
    correlation_from_covariance,
    covariance_from_disguised,
    sample_covariance,
    sample_mean,
)
from repro.linalg.psd import is_positive_semidefinite


class TestSampleMoments:
    def test_sample_mean(self):
        data = np.array([[1.0, 10.0], [3.0, 30.0]])
        np.testing.assert_allclose(sample_mean(data), [2.0, 20.0])

    def test_sample_covariance_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((200, 4))
        np.testing.assert_allclose(
            sample_covariance(data), np.cov(data, rowvar=False), atol=1e-12
        )

    def test_sample_covariance_ddof_zero(self):
        data = np.array([[0.0, 0.0], [2.0, 2.0]])
        cov = sample_covariance(data, ddof=0)
        np.testing.assert_allclose(cov, np.ones((2, 2)))

    def test_needs_enough_rows(self):
        with pytest.raises(ValidationError, match="rows"):
            sample_covariance(np.ones((1, 3)))

    def test_result_symmetric(self):
        rng = np.random.default_rng(1)
        cov = sample_covariance(rng.standard_normal((50, 6)))
        np.testing.assert_array_equal(cov, cov.T)


class TestCovarianceFromDisguised:
    """Theorem 5.1: Cov(Y) = Cov(X) + sigma^2 I recovers Cov(X)."""

    def _make_disguised(self, n=20000, sigma=3.0, seed=0):
        rng = np.random.default_rng(seed)
        base = rng.standard_normal((n, 1))
        original = np.column_stack(
            [
                4.0 * base[:, 0],
                2.0 * base[:, 0] + rng.standard_normal(n),
                rng.standard_normal(n),
            ]
        )
        noise = rng.normal(0.0, sigma, size=original.shape)
        return original, original + noise, sigma

    def test_recovers_original_covariance(self):
        original, disguised, sigma = self._make_disguised()
        estimate = covariance_from_disguised(disguised, sigma**2)
        truth = sample_covariance(original)
        np.testing.assert_allclose(estimate, truth, atol=0.35)

    def test_off_diagonals_untouched(self):
        # Subtracting sigma^2 I must leave off-diagonals equal to the
        # disguised sample covariance's off-diagonals.
        _, disguised, sigma = self._make_disguised(n=500)
        estimate = covariance_from_disguised(
            disguised, sigma**2, ensure_psd=False
        )
        raw = sample_covariance(disguised)
        off_mask = ~np.eye(3, dtype=bool)
        np.testing.assert_allclose(estimate[off_mask], raw[off_mask])

    def test_diagonal_reduced_by_variance(self):
        _, disguised, sigma = self._make_disguised(n=500)
        estimate = covariance_from_disguised(
            disguised, sigma**2, ensure_psd=False
        )
        raw = sample_covariance(disguised)
        np.testing.assert_allclose(
            np.diag(raw) - np.diag(estimate), np.full(3, sigma**2)
        )

    def test_psd_repair_applied(self):
        # Tiny sample + big claimed noise variance forces negative
        # eigenvalues before repair.
        rng = np.random.default_rng(2)
        disguised = rng.standard_normal((10, 4))
        estimate = covariance_from_disguised(disguised, 25.0)
        assert is_positive_semidefinite(estimate)

    def test_vector_noise_variances(self):
        rng = np.random.default_rng(3)
        disguised = rng.standard_normal((100, 2)) * 5.0
        estimate = covariance_from_disguised(
            disguised, [1.0, 2.0], ensure_psd=False
        )
        raw = sample_covariance(disguised)
        assert raw[0, 0] - estimate[0, 0] == pytest.approx(1.0)
        assert raw[1, 1] - estimate[1, 1] == pytest.approx(2.0)

    def test_full_noise_covariance_theorem82(self):
        rng = np.random.default_rng(4)
        noise_cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        disguised = rng.standard_normal((100, 2)) * 4.0
        estimate = covariance_from_disguised(
            disguised, noise_cov, ensure_psd=False
        )
        raw = sample_covariance(disguised)
        np.testing.assert_allclose(raw - estimate, noise_cov)

    def test_rejects_negative_scalar_variance(self):
        with pytest.raises(ValidationError):
            covariance_from_disguised(np.ones((5, 2)) + np.eye(5, 2), -1.0)

    def test_rejects_wrong_length_vector(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValidationError, match="length"):
            covariance_from_disguised(
                rng.standard_normal((10, 3)), [1.0, 2.0]
            )

    def test_rejects_negative_vector_entries(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValidationError):
            covariance_from_disguised(
                rng.standard_normal((10, 2)), [1.0, -2.0]
            )

    def test_rejects_wrong_size_matrix(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValidationError):
            covariance_from_disguised(
                rng.standard_normal((10, 3)), np.eye(2)
            )


class TestCorrelationFromCovariance:
    def test_unit_diagonal(self):
        cov = np.array([[4.0, 2.0], [2.0, 9.0]])
        corr = correlation_from_covariance(cov)
        np.testing.assert_allclose(np.diag(corr), [1.0, 1.0])

    def test_known_value(self):
        cov = np.array([[4.0, 3.0], [3.0, 9.0]])
        corr = correlation_from_covariance(cov)
        assert corr[0, 1] == pytest.approx(0.5)

    def test_clipped_to_valid_range(self):
        # Numerically inflated covariance must not give |rho| > 1.
        cov = np.array([[1.0, 1.0 + 1e-12], [1.0 + 1e-12, 1.0]])
        corr = correlation_from_covariance(cov)
        assert np.abs(corr).max() <= 1.0

    def test_rejects_zero_variance(self):
        with pytest.raises(ValidationError, match="non-positive"):
            correlation_from_covariance(np.diag([1.0, 0.0]))
