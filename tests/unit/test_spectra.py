"""Unit tests for repro.data.spectra."""

import numpy as np
import pytest

from repro.exceptions import SpectrumError
from repro.data.spectra import (
    decaying_spectrum,
    rescale_to_trace,
    two_level_spectrum,
)


class TestTwoLevelSpectrum:
    def test_trace_constraint_satisfied(self):
        spectrum = two_level_spectrum(10, 3, total_variance=1000.0)
        assert spectrum.sum() == pytest.approx(1000.0)

    def test_structure(self):
        spectrum = two_level_spectrum(
            10, 3, total_variance=1000.0, non_principal_value=4.0
        )
        assert np.all(spectrum[:3] == spectrum[0])
        assert np.all(spectrum[3:] == 4.0)
        assert spectrum[0] > 4.0

    def test_sorted_descending(self):
        spectrum = two_level_spectrum(8, 2, total_variance=800.0)
        assert np.all(np.diff(spectrum) <= 0.0)

    def test_principal_value_mode(self):
        spectrum = two_level_spectrum(
            6, 2, principal_value=400.0, non_principal_value=10.0
        )
        np.testing.assert_allclose(spectrum[:2], 400.0)
        np.testing.assert_allclose(spectrum[2:], 10.0)

    def test_eq12_solves_principal_value(self):
        # Eq. 12: p*high + (m-p)*low = trace.
        m, p, low, trace = 20, 4, 2.0, 500.0
        spectrum = two_level_spectrum(
            m, p, total_variance=trace, non_principal_value=low
        )
        expected_high = (trace - (m - p) * low) / p
        assert spectrum[0] == pytest.approx(expected_high)

    def test_all_principal_allowed(self):
        spectrum = two_level_spectrum(5, 5, total_variance=500.0)
        np.testing.assert_allclose(spectrum, 100.0)

    def test_rejects_p_above_m(self):
        with pytest.raises(SpectrumError):
            two_level_spectrum(3, 4, total_variance=100.0)

    def test_rejects_both_modes(self):
        with pytest.raises(SpectrumError, match="exactly one"):
            two_level_spectrum(
                5, 2, total_variance=100.0, principal_value=50.0
            )

    def test_rejects_neither_mode(self):
        with pytest.raises(SpectrumError, match="exactly one"):
            two_level_spectrum(5, 2)

    def test_rejects_insufficient_trace(self):
        # Trace so small the principal value would fall below the floor.
        with pytest.raises(SpectrumError, match="too small"):
            two_level_spectrum(
                10, 2, total_variance=45.0, non_principal_value=5.0
            )

    def test_rejects_principal_below_non_principal(self):
        with pytest.raises(SpectrumError):
            two_level_spectrum(
                5, 2, principal_value=1.0, non_principal_value=10.0
            )


class TestDecayingSpectrum:
    def test_geometric_ratio(self):
        spectrum = decaying_spectrum(6, decay=0.5)
        ratios = spectrum[1:] / spectrum[:-1]
        np.testing.assert_allclose(ratios, 0.5)

    def test_trace_rescaling(self):
        spectrum = decaying_spectrum(10, decay=0.9, total_variance=250.0)
        assert spectrum.sum() == pytest.approx(250.0)

    def test_rejects_decay_out_of_range(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            decaying_spectrum(5, decay=1.0)
        with pytest.raises(ValidationError):
            decaying_spectrum(5, decay=0.0)


class TestRescaleToTrace:
    def test_rescales(self):
        result = rescale_to_trace([1.0, 2.0, 3.0], 12.0)
        np.testing.assert_allclose(result, [2.0, 4.0, 6.0])

    def test_rejects_negative_eigenvalues(self):
        with pytest.raises(SpectrumError):
            rescale_to_trace([1.0, -1.0], 10.0)

    def test_rejects_zero_sum(self):
        with pytest.raises(SpectrumError):
            rescale_to_trace([0.0, 0.0], 10.0)

    def test_rejects_nonpositive_target(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            rescale_to_trace([1.0, 2.0], 0.0)
