"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(as_generator(sequence), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(as_generator(np.int32(5)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            as_generator(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(ValidationError, match="rng must be"):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count_respected(self):
        children = spawn_generators(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_generators(0, 2)
        a = children[0].random(8)
        b = children[1].random(8)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        first = [g.random(3) for g in spawn_generators(9, 3)]
        second = [g.random(3) for g in spawn_generators(9, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_rejects_zero_count(self):
        with pytest.raises(ValidationError):
            spawn_generators(0, 0)

    def test_rejects_non_int_count(self):
        with pytest.raises(ValidationError):
            spawn_generators(0, 2.5)
