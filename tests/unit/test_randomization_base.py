"""Unit tests for repro.randomization.base."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.randomization.base import DisguisedDataset, NoiseModel


def _iid_model(m=3, variance=4.0):
    return NoiseModel(
        covariance=variance * np.eye(m), mean=np.zeros(m), family="gaussian"
    )


class TestNoiseModel:
    def test_dim(self):
        assert _iid_model(5).dim == 5

    def test_is_isotropic_true_for_scaled_identity(self):
        assert _iid_model().is_isotropic

    def test_is_isotropic_false_for_unequal_variances(self):
        model = NoiseModel(
            covariance=np.diag([1.0, 2.0]), mean=np.zeros(2)
        )
        assert not model.is_isotropic

    def test_is_isotropic_false_for_correlated(self):
        covariance = np.array([[1.0, 0.5], [0.5, 1.0]])
        model = NoiseModel(covariance=covariance, mean=np.zeros(2))
        assert not model.is_isotropic

    def test_scalar_variance(self):
        assert _iid_model(variance=9.0).scalar_variance == pytest.approx(9.0)

    def test_scalar_variance_rejected_for_correlated(self):
        covariance = np.array([[1.0, 0.5], [0.5, 1.0]])
        model = NoiseModel(covariance=covariance, mean=np.zeros(2))
        with pytest.raises(ValidationError, match="not isotropic"):
            model.scalar_variance

    def test_covariance_symmetrized(self):
        lightly_asymmetric = np.array([[1.0, 0.3 + 1e-12], [0.3, 1.0]])
        model = NoiseModel(covariance=lightly_asymmetric, mean=np.zeros(2))
        np.testing.assert_array_equal(model.covariance, model.covariance.T)

    def test_rejects_mean_length_mismatch(self):
        with pytest.raises(ValidationError):
            NoiseModel(covariance=np.eye(2), mean=np.zeros(3))

    def test_rejects_rectangular_covariance(self):
        with pytest.raises(ValidationError):
            NoiseModel(covariance=np.zeros((2, 3)), mean=np.zeros(2))


class TestDisguisedDataset:
    def _build(self, n=4, m=3):
        original = np.arange(n * m, dtype=float).reshape(n, m)
        noise = np.ones((n, m))
        return DisguisedDataset(
            disguised=original + noise,
            noise_model=_iid_model(m),
            original=original,
            noise=noise,
        )

    def test_shapes(self):
        dataset = self._build()
        assert dataset.n_records == 4
        assert dataset.n_attributes == 3

    def test_additive_consistency(self):
        dataset = self._build()
        np.testing.assert_array_equal(
            dataset.disguised, dataset.original + dataset.noise
        )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError, match="share one shape"):
            DisguisedDataset(
                disguised=np.zeros((4, 3)),
                noise_model=_iid_model(3),
                original=np.zeros((5, 3)),
                noise=np.zeros((4, 3)),
            )

    def test_rejects_noise_model_dim_mismatch(self):
        with pytest.raises(ValidationError, match="attributes"):
            DisguisedDataset(
                disguised=np.zeros((4, 3)),
                noise_model=_iid_model(2),
                original=np.zeros((4, 3)),
                noise=np.zeros((4, 3)),
            )

    def test_repr_mentions_family(self):
        assert "gaussian" in repr(self._build())
