"""Unit tests for iteration-level convergence telemetry.

Covers the :class:`~repro.telemetry.convergence.IterationTracker`
payload contract, the null fast path, heartbeat metrics, the sentinel
round-trip for non-finite values, bit-identity of kernel numerics with
tracing on vs. off, :class:`~repro.exceptions.ConvergenceError`
diagnostics, and the forward-compatibility warnings the schema
validator emits for unknown payload versions.
"""

import json
import math

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.linalg.psd import cholesky_with_jitter
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.kalman import KalmanSmootherReconstructor
from repro.reconstruction.map_gd import MAPGradientReconstructor
from repro.stats.density import GaussianDensity
from repro.stats.em import UnivariateGaussianMixtureEM
from repro.stats.kde import cv_bandwidth
from repro.telemetry import trace
from repro.telemetry.convergence import (
    CONDITION_CAP,
    CONVERGENCE_SCHEMA,
    MAX_TRAJECTORY,
    NULL_TRACKER,
    IterationTracker,
    collect_payloads,
    payload_scalar,
    summarize_payloads,
    trajectory_values,
)
from repro.telemetry.recorder import Recorder
from repro.telemetry.schema import validate_metrics, validate_trace


def _bimodal_samples(n=600, seed=0):
    rng = np.random.default_rng(seed)
    left = rng.normal(-4.0, 1.0, n // 2)
    right = rng.normal(3.0, 0.5, n // 2)
    return np.concatenate([left, right])


class TestNullTracker:
    def test_disabled_facade_hands_out_the_singleton(self):
        assert trace.iterations("em.fit") is NULL_TRACKER
        assert trace.iterations("kalman.filter") is NULL_TRACKER

    def test_null_tracker_is_inert(self):
        assert NULL_TRACKER.enabled is False
        assert NULL_TRACKER.record(objective=1.0, rejected=3) is None
        assert NULL_TRACKER.finish(converged=True) is None

    def test_enabled_facade_hands_out_live_trackers(self):
        with trace.recording():
            tracker = trace.iterations("em.fit")
            assert isinstance(tracker, IterationTracker)
            assert tracker.enabled is True


class TestIterationTracker:
    def test_payload_shape(self):
        tracker = IterationTracker("em.fit")
        tracker.record(objective=-3.0, delta=1.0)
        tracker.record(objective=-2.5, delta=0.5, rejected=2)
        payload = tracker.payload(converged=True)
        assert payload == {
            "schema": CONVERGENCE_SCHEMA,
            "kernel": "em.fit",
            "iterations": 2,
            "rejections": 2,
            "nonfinite": 0,
            "converged": True,
            "final_objective": -2.5,
            "final_delta": 0.5,
            "objective": [-3.0, -2.5],
            "delta": [1.0, 0.5],
        }

    def test_optional_fields_are_omitted(self):
        tracker = IterationTracker("k")
        payload = tracker.payload()
        assert payload == {
            "schema": CONVERGENCE_SCHEMA,
            "kernel": "k",
            "iterations": 0,
            "rejections": 0,
            "nonfinite": 0,
        }

    def test_trajectory_truncates_but_counts_stay_exact(self):
        tracker = IterationTracker("k")
        for step in range(MAX_TRAJECTORY + 40):
            tracker.record(objective=float(step), rejected=1)
        payload = tracker.payload()
        assert payload["iterations"] == MAX_TRAJECTORY + 40
        assert payload["rejections"] == MAX_TRAJECTORY + 40
        assert payload["truncated"] is True
        assert len(payload["objective"]) == MAX_TRAJECTORY
        # The final value keeps tracking past the truncation point.
        assert payload["final_objective"] == float(MAX_TRAJECTORY + 39)

    def test_nonfinite_values_are_counted(self):
        tracker = IterationTracker("k")
        tracker.record(objective=math.nan)
        tracker.record(delta=math.inf)
        tracker.record(objective=1.0, delta=0.5)
        assert tracker.payload()["nonfinite"] == 2

    def test_condition_numbers_are_capped(self):
        tracker = IterationTracker("k")
        tracker.record(condition=math.inf)
        tracker.record(condition=1e308)
        tracker.record(condition=12.5)
        assert tracker.payload()["condition"] == [
            CONDITION_CAP,
            CONDITION_CAP,
            12.5,
        ]

    def test_heartbeat_metrics_reach_the_recorder(self):
        recorder = Recorder()
        tracker = IterationTracker("em.fit", recorder)
        tracker.record(objective=-2.0, delta=0.5, condition=3.0)
        tracker.record(objective=math.nan, rejected=1)
        tracker.finish(converged=False)
        assert recorder.gauges["kernel.em.fit.iterations"] == 2.0
        # The NaN objective never reaches the gauge: the last finite
        # value sticks.
        assert recorder.gauges["kernel.em.fit.objective"] == -2.0
        assert recorder.gauges["kernel.em.fit.condition"] == 3.0
        assert recorder.gauges["kernel.em.fit.converged"] == 0.0
        assert recorder.counters["kernel.em.fit.fits"] == 1
        assert recorder.counters["kernel.em.fit.rejections"] == 1
        assert recorder.counters["kernel.em.fit.nonfinite"] == 1
        assert recorder.counters["kernel.em.fit.nonconverged"] == 1

    def test_one_payload_per_span_extras_drop(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit"):
                first = trace.iterations("a")
                first.record(objective=1.0)
                first.finish(converged=True)
                second = trace.iterations("b")
                second.record(objective=2.0)
                second.finish(converged=True)
        document = recorder.to_document()
        payloads = [
            found
            for span in document["spans"]
            for found in collect_payloads(span)
        ]
        assert [p["kernel"] for p in payloads] == ["a"]
        assert recorder.counters["telemetry.convergence.dropped"] == 1


class TestSentinelRoundTrip:
    def test_nan_objective_survives_serialization(self):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit"):
                tracker = trace.iterations("k")
                tracker.record(objective=math.nan, delta=math.inf)
                tracker.finish(converged=False)
        document = recorder.to_document()
        # The writer contract: documents serialize with allow_nan=False.
        text = json.dumps(document, allow_nan=False)
        restored = json.loads(text)
        (payload,) = [
            found
            for span in restored["spans"]
            for found in collect_payloads(span)
        ]
        assert payload["final_objective"] == "__nan__"
        final = payload_scalar(payload, "final_objective")
        assert math.isnan(final)
        assert payload_scalar(payload, "final_delta") == math.inf
        assert math.isnan(trajectory_values(payload, "objective")[0])
        assert trajectory_values(payload, "delta") == [math.inf]

    def test_payload_scalar_rejects_foreign_types(self):
        payload = {"final_objective": True, "final_delta": "__other__"}
        assert payload_scalar(payload, "final_objective") is None
        assert payload_scalar(payload, "final_delta") is None
        assert payload_scalar(payload, "absent") is None

    def test_trajectory_values_skip_unrecognized_entries(self):
        payload = {"objective": [1.0, "__nan__", "future", None, 2]}
        values = trajectory_values(payload, "objective")
        assert values[0] == 1.0
        assert math.isnan(values[1])
        assert values[2] == 2.0
        assert trajectory_values({"objective": "not-a-list"}, "objective") == []


class TestCollectAndSummarize:
    def test_collects_depth_first_and_ignores_foreign_shapes(self):
        span = {
            "attrs": {"convergence": {"schema": CONVERGENCE_SCHEMA, "kernel": "a"}},
            "children": [
                {"attrs": {"convergence": {"schema": "other/v1"}}},
                {
                    "attrs": {},
                    "children": [
                        {
                            "attrs": {
                                "convergence": {
                                    "schema": "repro-convergence/v9",
                                    "kernel": "b",
                                }
                            }
                        }
                    ],
                },
            ],
        }
        assert [p["kernel"] for p in collect_payloads(span)] == ["a", "b"]
        assert collect_payloads(None) == []
        assert collect_payloads({"attrs": "bogus"}) == []

    def test_summarize_folds_per_kernel(self):
        payloads = [
            {"kernel": "em.fit", "iterations": 9, "rejections": 0,
             "nonfinite": 0, "converged": True},
            {"kernel": "em.fit", "iterations": 3, "rejections": 1,
             "nonfinite": 2, "converged": False},
            {"kernel": "kalman.filter", "iterations": 100},
        ]
        assert summarize_payloads(payloads) == {
            "em.fit": {
                "fits": 2,
                "iterations": 12,
                "rejections": 1,
                "nonfinite": 2,
                "nonconverged": 1,
            },
            "kalman.filter": {
                "fits": 1,
                "iterations": 100,
                "rejections": 0,
                "nonfinite": 0,
                "nonconverged": 0,
            },
        }

    def test_summarize_ignores_malformed_counts(self):
        payloads = [{"kernel": "k", "iterations": "many", "nonfinite": True}]
        assert summarize_payloads(payloads)["k"]["iterations"] == 0
        assert summarize_payloads(payloads)["k"]["nonfinite"] == 0


def _gaussian_map_case():
    prior = GaussianDensity(0.0, 8.0)
    original = prior.sample(120, rng=1).reshape(-1, 1)
    disguised = AdditiveNoiseScheme(std=4.0).disguise(original, rng=2)
    return prior, disguised


class TestBitIdentityTracedVsUntraced:
    """Tracing must observe the numerics, never perturb them."""

    def test_em(self):
        samples = _bimodal_samples()
        plain = UnivariateGaussianMixtureEM(2).fit(samples, rng=1)
        with trace.recording():
            traced = UnivariateGaussianMixtureEM(2).fit(samples, rng=1)
        np.testing.assert_array_equal(plain.means, traced.means)
        np.testing.assert_array_equal(plain.stds, traced.stds)
        np.testing.assert_array_equal(plain.weights, traced.weights)

    def test_map_gd(self):
        prior, disguised = _gaussian_map_case()
        attack = MAPGradientReconstructor([prior], max_iter=60)
        plain = attack.reconstruct(disguised).estimate
        with trace.recording():
            traced = attack.reconstruct(disguised).estimate
        np.testing.assert_array_equal(plain, traced)

    def test_kalman(self):
        rng = np.random.default_rng(3)
        series = np.cumsum(rng.normal(size=(80, 2)), axis=0) * 0.1
        disguised = AdditiveNoiseScheme(std=1.0).disguise(series, rng=4)
        attack = KalmanSmootherReconstructor()
        plain = attack.reconstruct(disguised).estimate
        with trace.recording():
            traced = attack.reconstruct(disguised).estimate
        np.testing.assert_array_equal(plain, traced)

    def test_kde_bandwidth(self):
        samples = _bimodal_samples(200, seed=7)
        plain = cv_bandwidth(samples)
        with trace.recording():
            traced = cv_bandwidth(samples)
        assert plain == traced

    def test_cholesky_with_jitter(self):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(6, 6))
        nearly = base @ base.T - 1e-9 * np.eye(6)
        plain = cholesky_with_jitter(nearly)
        with trace.recording():
            traced = cholesky_with_jitter(nearly)
        np.testing.assert_array_equal(plain, traced)


class TestKernelPayloads:
    def test_em_fit_attaches_a_valid_payload(self):
        recorder = Recorder()
        with trace.recording(recorder):
            UnivariateGaussianMixtureEM(2).fit(_bimodal_samples(), rng=1)
        document = recorder.to_document()
        validate_trace(document)
        (payload,) = [
            found
            for span in document["spans"]
            for found in collect_payloads(span)
        ]
        assert payload["kernel"] == "em.fit"
        assert payload["converged"] is True
        assert payload["iterations"] >= 2
        assert payload["iterations"] == len(payload["objective"])
        # EM's first recorded delta is None (improvement over nothing).
        assert len(payload["delta"]) == payload["iterations"] - 1
        objective = payload["objective"]
        assert objective == sorted(objective)  # monotone ascent

    def test_kalman_records_condition_numbers(self):
        rng = np.random.default_rng(3)
        series = np.cumsum(rng.normal(size=(60, 2)), axis=0) * 0.1
        disguised = AdditiveNoiseScheme(std=1.0).disguise(series, rng=4)
        recorder = Recorder()
        with trace.recording(recorder):
            KalmanSmootherReconstructor().reconstruct(disguised)
        document = recorder.to_document()
        validate_trace(document)
        payloads = [
            found
            for span in document["spans"]
            for found in collect_payloads(span)
        ]
        kalman = [p for p in payloads if p["kernel"] == "kalman.filter"]
        assert len(kalman) == 1
        assert kalman[0]["iterations"] == 60
        assert len(kalman[0]["condition"]) == 60
        assert all(c >= 1.0 for c in kalman[0]["condition"])
        assert "converged" not in kalman[0]  # fixed-sweep filter


class TestConvergenceErrorDiagnostics:
    def test_em_failure_carries_the_final_state(self):
        samples = _bimodal_samples(800, seed=5)
        em = UnivariateGaussianMixtureEM(2, max_iter=3, tol=1e-12)
        with pytest.raises(ConvergenceError) as excinfo:
            em.fit(samples, rng=1)
        error = excinfo.value
        assert error.iterations == 3
        assert error.final_objective is not None
        assert error.last_delta is not None and error.last_delta > 0
        assert error.trajectory_tail is not None
        assert len(error.trajectory_tail) <= 5
        assert error.trajectory_tail[-1] == error.final_objective
        message = str(error)
        assert "final objective" in message
        assert "trajectory tail" in message

    def test_attributes_default_to_none(self):
        error = ConvergenceError("gave up")
        assert error.iterations is None
        assert error.final_objective is None
        assert error.last_delta is None
        assert error.trajectory_tail is None

    def test_trajectory_tail_is_a_float_tuple(self):
        error = ConvergenceError(
            "gave up", 7, final_objective=-2, last_delta=1,
            trajectory_tail=[-3, -2],
        )
        assert error.trajectory_tail == (-3.0, -2.0)
        assert isinstance(error.final_objective, float)


class TestSchemaForwardCompat:
    def _document(self, **attrs):
        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("kernel.fit") as open_span:
                open_span.attrs.update(attrs)
        return recorder.to_document()

    def test_unknown_trace_version_warns_instead_of_failing(self):
        document = self._document()
        document["schema"] = "repro-trace/v99"
        warnings = []
        validate_trace(document, warnings=warnings)
        assert len(warnings) == 1
        assert warnings[0].startswith("unknown-schema-version")

    def test_unknown_convergence_version_warns(self):
        document = self._document(
            convergence={"schema": "repro-convergence/v99", "kernel": "k"}
        )
        warnings = []
        validate_trace(document, warnings=warnings)
        assert len(warnings) == 1
        assert warnings[0].startswith("unknown-payload-schema")

    def test_foreign_payload_schema_still_fails(self):
        document = self._document(
            convergence={"schema": "something-else/v1"}
        )
        with pytest.raises(ValidationError, match="schema"):
            validate_trace(document)

    def test_malformed_payload_fields_fail(self):
        document = self._document(
            convergence={
                "schema": CONVERGENCE_SCHEMA,
                "kernel": "k",
                "iterations": -1,
            }
        )
        with pytest.raises(ValidationError, match="iterations"):
            validate_trace(document)

    def test_unknown_metrics_version_warns(self):
        payload = {"schema": "repro-metrics/v99"}
        warnings = []
        validate_metrics(payload, warnings=warnings)
        assert len(warnings) == 1
        assert warnings[0].startswith("unknown-schema-version")

    def test_without_a_sink_warnings_are_silent_but_valid(self):
        document = self._document()
        document["schema"] = "repro-trace/v99"
        validate_trace(document)  # must not raise

    def test_job_convergence_summary_is_validated(self):
        recorder = Recorder()
        manifest = {
            "jobs": [
                {
                    "key": "job-0",
                    "convergence": {"em.fit": {"fits": 1, "iterations": 9}},
                }
            ]
        }
        validate_trace(recorder.to_document(manifest=manifest))
        manifest["jobs"][0]["convergence"]["em.fit"]["fits"] = 1.5
        with pytest.raises(ValidationError, match="count must be an integer"):
            validate_trace(recorder.to_document(manifest=manifest))
