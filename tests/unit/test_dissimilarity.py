"""Unit tests for Definition 8.1's correlation dissimilarity."""

import numpy as np
import pytest

from repro.data.covariance_builder import CovarianceModel
from repro.exceptions import ValidationError
from repro.metrics.dissimilarity import correlation_dissimilarity


class TestCovarianceInputs:
    def test_identical_correlations_give_zero(self):
        cov = CovarianceModel.from_spectrum([10.0, 4.0, 1.0], rng=0).matrix
        assert correlation_dissimilarity(
            cov, 3.0 * cov, inputs="covariance"
        ) == pytest.approx(0.0, abs=1e-12)

    def test_known_two_by_two_value(self):
        # C_X has rho = 0.8, C_R has rho = 0.2: RMS of off-diagonal
        # differences = sqrt(2 * 0.6^2 / 2) = 0.6.
        cov_x = np.array([[1.0, 0.8], [0.8, 1.0]])
        cov_r = np.array([[1.0, 0.2], [0.2, 1.0]])
        assert correlation_dissimilarity(
            cov_x, cov_r, inputs="covariance"
        ) == pytest.approx(0.6)

    def test_literal_convention_divides_by_pairs(self):
        cov_x = np.array([[1.0, 0.8], [0.8, 1.0]])
        cov_r = np.array([[1.0, 0.2], [0.2, 1.0]])
        # literal: sqrt(2 * 0.36) / (4 - 2) = sqrt(0.72) / 2
        expected = np.sqrt(0.72) / 2.0
        assert correlation_dissimilarity(
            cov_x, cov_r, inputs="covariance", convention="literal"
        ) == pytest.approx(expected)

    def test_symmetry_in_arguments(self):
        a = CovarianceModel.from_spectrum([5.0, 2.0, 1.0], rng=1).matrix
        b = CovarianceModel.from_spectrum([5.0, 2.0, 1.0], rng=2).matrix
        assert correlation_dissimilarity(
            a, b, inputs="covariance"
        ) == pytest.approx(
            correlation_dissimilarity(b, a, inputs="covariance")
        )

    def test_diagonal_ignored(self):
        # Same off-diagonals, wildly different variances: dissimilarity 0.
        cov_x = np.array([[1.0, 0.5], [0.5, 1.0]])
        cov_r = np.array([[100.0, 50.0], [50.0, 100.0]])
        assert correlation_dissimilarity(
            cov_x, cov_r, inputs="covariance"
        ) == pytest.approx(0.0, abs=1e-12)

    def test_bounded_by_two(self):
        # Perfectly opposite correlations: difference 2 per pair, RMS 2.
        cov_x = np.array([[1.0, 0.999999], [0.999999, 1.0]])
        cov_r = np.array([[1.0, -0.999999], [-0.999999, 1.0]])
        value = correlation_dissimilarity(cov_x, cov_r, inputs="covariance")
        assert value == pytest.approx(2.0, abs=1e-4)


class TestDataInputs:
    def test_data_mode_estimates_correlations(self):
        rng = np.random.default_rng(3)
        base = rng.standard_normal((20000, 1))
        x = np.column_stack([base[:, 0], base[:, 0] * 2.0 + 0.01 * rng.standard_normal(20000)])
        r = rng.standard_normal((20000, 2))
        # X near-perfectly correlated, R independent: expect ~1.
        value = correlation_dissimilarity(x, r, inputs="data")
        assert value == pytest.approx(1.0, abs=0.05)

    def test_same_data_gives_zero(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((100, 3))
        assert correlation_dissimilarity(x, x) == pytest.approx(0.0)


class TestValidation:
    def test_rejects_unknown_convention(self):
        with pytest.raises(ValidationError, match="convention"):
            correlation_dissimilarity(
                np.eye(2), np.eye(2), convention="L1", inputs="covariance"
            )

    def test_rejects_unknown_inputs(self):
        with pytest.raises(ValidationError, match="inputs"):
            correlation_dissimilarity(np.eye(2), np.eye(2), inputs="corr")

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValidationError, match="mismatch"):
            correlation_dissimilarity(
                np.eye(2), np.eye(3), inputs="covariance"
            )

    def test_rejects_single_attribute(self):
        with pytest.raises(ValidationError, match="at least 2"):
            correlation_dissimilarity(
                np.eye(1), np.eye(1), inputs="covariance"
            )
