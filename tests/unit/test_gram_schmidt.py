"""Unit tests for repro.linalg.gram_schmidt."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.gram_schmidt import (
    gram_schmidt,
    is_orthonormal,
    random_orthogonal,
)


class TestGramSchmidt:
    def test_orthonormalizes_random_matrix(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((8, 8))
        q = gram_schmidt(matrix)
        np.testing.assert_allclose(q.T @ q, np.eye(8), atol=1e-12)

    def test_preserves_column_span(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((6, 3))
        q = gram_schmidt(matrix)
        # Each original column must be reproducible from the basis.
        reconstructed = q @ (q.T @ matrix)
        np.testing.assert_allclose(reconstructed, matrix, atol=1e-10)

    def test_tall_matrix_supported(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((10, 4))
        q = gram_schmidt(matrix)
        assert q.shape == (10, 4)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-12)

    def test_rejects_wide_matrix(self):
        with pytest.raises(ValidationError, match="too many columns"):
            gram_schmidt(np.ones((2, 3)))

    def test_rejects_dependent_columns(self):
        matrix = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])
        with pytest.raises(ValidationError, match="dependent"):
            gram_schmidt(matrix)

    def test_rejects_zero_column(self):
        matrix = np.array([[0.0, 1.0], [0.0, 2.0]])
        with pytest.raises(ValidationError, match="zero"):
            gram_schmidt(matrix)

    def test_ill_conditioned_input_stays_orthonormal(self):
        # Nearly parallel columns stress the re-orthogonalization sweep.
        base = np.random.default_rng(3).standard_normal(50)
        second = base + 1e-7 * np.random.default_rng(4).standard_normal(50)
        q = gram_schmidt(np.column_stack([base, second]))
        np.testing.assert_allclose(q.T @ q, np.eye(2), atol=1e-10)

    def test_single_sweep_option_runs(self):
        rng = np.random.default_rng(5)
        q = gram_schmidt(rng.standard_normal((5, 5)), reorthogonalize=False)
        np.testing.assert_allclose(q.T @ q, np.eye(5), atol=1e-8)


class TestIsOrthonormal:
    def test_identity_is_orthonormal(self):
        assert is_orthonormal(np.eye(4))

    def test_scaled_identity_is_not(self):
        assert not is_orthonormal(2.0 * np.eye(4))

    def test_rectangular_orthonormal_columns(self):
        q = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        assert is_orthonormal(q)


class TestRandomOrthogonal:
    def test_result_is_orthogonal(self):
        q = random_orthogonal(7, rng=0)
        np.testing.assert_allclose(q @ q.T, np.eye(7), atol=1e-10)
        np.testing.assert_allclose(q.T @ q, np.eye(7), atol=1e-10)

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            random_orthogonal(5, rng=3), random_orthogonal(5, rng=3)
        )

    def test_determinant_magnitude_one(self):
        q = random_orthogonal(6, rng=1)
        assert abs(abs(np.linalg.det(q)) - 1.0) < 1e-10

    def test_dim_one(self):
        q = random_orthogonal(1, rng=0)
        assert q.shape == (1, 1)
        assert abs(abs(q[0, 0]) - 1.0) < 1e-12

    def test_rejects_bad_dim(self):
        with pytest.raises(ValidationError):
            random_orthogonal(0)

    def test_mean_is_centered(self):
        # Haar-distributed entries have zero mean; check loosely over draws.
        total = np.zeros((4, 4))
        for seed in range(200):
            total += random_orthogonal(4, rng=seed)
        assert np.abs(total / 200).max() < 0.15
