"""Unit tests for the serial and process-pool executors."""

import pytest

from repro.engine import Engine
from repro.engine.executor import (
    ParallelExecutor,
    SerialExecutor,
    default_worker_count,
)
from repro.engine.jobs import JobSpec
from repro.engine.progress import ProgressReporter, ThroughputReporter
from repro.exceptions import JobExecutionError, ValidationError

_HERE = "tests.unit.test_engine_executor"


def square_task(params, rng):
    return {"square": params["x"] ** 2}


def draw_task(params, rng):
    return {"draw": float(rng.normal())}


def sometimes_failing_task(params, rng):
    if params["x"] == 2:
        raise ValueError("x=2 is cursed")
    return {"square": params["x"] ** 2}


def _specs(count, task="square_task"):
    return [
        JobSpec(f"{_HERE}:{task}", {"x": x}, seed_root=5, seed_path=(x,))
        for x in range(count)
    ]


class TestSerialExecutor:
    def test_order_preserved(self):
        results = SerialExecutor().run(_specs(5))
        assert [r.values["square"] for r in results] == [0, 1, 4, 9, 16]

    def test_callback_per_job(self):
        seen = []
        SerialExecutor().run(_specs(3), callback=seen.append)
        assert [r.values["square"] for r in seen] == [0, 1, 4]

    def test_failure_propagates(self):
        with pytest.raises(JobExecutionError, match="x=2 is cursed"):
            SerialExecutor().run(_specs(4, "sometimes_failing_task"))


class TestParallelExecutor:
    def test_order_preserved(self):
        results = ParallelExecutor(workers=2).run(_specs(6))
        assert [r.values["square"] for r in results] == [0, 1, 4, 9, 16, 25]

    def test_matches_serial_bit_for_bit(self):
        serial = SerialExecutor().run(_specs(6, "draw_task"))
        parallel = ParallelExecutor(workers=3).run(_specs(6, "draw_task"))
        assert [r.values for r in serial] == [r.values for r in parallel]
        assert [r.key for r in serial] == [r.key for r in parallel]

    def test_failure_propagates_across_processes(self):
        with pytest.raises(JobExecutionError, match="x=2 is cursed"):
            ParallelExecutor(workers=2).run(
                _specs(4, "sometimes_failing_task")
            )

    def test_empty_run(self):
        assert ParallelExecutor(workers=2).run([]) == []

    def test_single_worker_uses_serial_path(self):
        results = ParallelExecutor(workers=1).run(_specs(3))
        assert [r.values["square"] for r in results] == [0, 1, 4]

    def test_autodetect_workers(self):
        assert ParallelExecutor().workers == default_worker_count()
        assert ParallelExecutor(workers=0).workers == default_worker_count()
        assert default_worker_count() >= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            ParallelExecutor(workers=-2)
        with pytest.raises(ValidationError):
            ParallelExecutor(workers=2, chunk_size=0)

    def test_chunk_autosizing(self):
        executor = ParallelExecutor(workers=2)
        assert executor._chunk_for(1) == 1
        assert executor._chunk_for(16) == 2
        assert executor._chunk_for(10_000) == 16
        assert ParallelExecutor(workers=2, chunk_size=5)._chunk_for(100) == 5


class TestFailureHandling:
    def test_serial_traceback_preserved(self):
        with pytest.raises(JobExecutionError, match="x=2 is cursed") as info:
            SerialExecutor().run(_specs(4, "sometimes_failing_task"))
        assert "ValueError: x=2 is cursed" in info.value.traceback
        assert "sometimes_failing_task" in info.value.traceback

    def test_parallel_traceback_survives_process_boundary(self):
        with pytest.raises(JobExecutionError, match="x=2 is cursed") as info:
            ParallelExecutor(workers=2, chunk_size=1).run(
                _specs(4, "sometimes_failing_task")
            )
        assert info.value.traceback is not None
        assert "ValueError: x=2 is cursed" in info.value.traceback

    def test_job_execution_error_pickle_round_trip(self):
        import pickle

        error = JobExecutionError("job died", traceback="Traceback ...")
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == "job died"
        assert clone.traceback == "Traceback ..."

    def test_serial_drain_mode_collects_failures(self):
        results = SerialExecutor().run(
            _specs(4, "sometimes_failing_task"), fail_fast=False
        )
        assert [r.failed for r in results] == [False, False, True, False]
        failed = results[2]
        assert failed.values == {}
        assert failed.error["type"] == "ValueError"
        assert "x=2 is cursed" in failed.error["message"]
        assert "ValueError: x=2 is cursed" in failed.error["traceback"]
        assert [r.values.get("square") for r in results] == [0, 1, None, 9]

    def test_parallel_drain_mode_collects_failures(self):
        results = ParallelExecutor(workers=2, chunk_size=1).run(
            _specs(4, "sometimes_failing_task"), fail_fast=False
        )
        assert [r.failed for r in results] == [False, False, True, False]
        assert "ValueError: x=2 is cursed" in results[2].error["traceback"]

    def test_drain_mode_callback_sees_failures(self):
        seen = []
        SerialExecutor().run(
            _specs(4, "sometimes_failing_task"),
            callback=seen.append,
            fail_fast=False,
        )
        assert sorted(r.failed for r in seen) == [False, False, False, True]

    def test_engine_drain_mode_never_caches_failures(self, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(tmp_path)
        engine = Engine(cache=cache, fail_fast=False)
        results = engine.run(_specs(4, "sometimes_failing_task"))
        assert [r.failed for r in results] == [False, False, True, False]
        assert len(cache) == 3
        # Re-running recovers the three successes and re-fails the rest.
        again = Engine(cache=cache, fail_fast=False).run(
            _specs(4, "sometimes_failing_task")
        )
        assert [r.cached for r in again] == [True, True, False, True]
        assert again[2].failed

    def test_cache_refuses_failed_results(self, tmp_path):
        from repro.engine import ResultCache
        from repro.engine.jobs import failed_result

        spec = _specs(1)[0]
        result = failed_result(spec, ValueError("nope"))
        with pytest.raises(ValidationError, match="failed result"):
            ResultCache(tmp_path).put(spec, result)

    def test_failed_result_shape(self):
        from repro.engine.jobs import failed_result

        spec = _specs(1)[0]
        result = failed_result(spec, ValueError("nope"), traceback="tb")
        assert result.failed
        assert result.key == spec.key()
        assert result.error == {
            "type": "ValueError",
            "message": "nope",
            "traceback": "tb",
        }


class TestProgressReporting:
    def test_engine_emits_progress_events(self):
        events = []

        class Recorder(ProgressReporter):
            def on_start(self, total):
                events.append(("start", total))

            def on_result(self, result, completed, total):
                events.append(("result", completed, total))

            def on_finish(self, elapsed, completed, cached):
                events.append(("finish", completed, cached))

        Engine(progress=Recorder()).run(_specs(3))
        assert events[0] == ("start", 3)
        assert events[1:4] == [
            ("result", 1, 3),
            ("result", 2, 3),
            ("result", 3, 3),
        ]
        assert events[-1] == ("finish", 3, 0)

    def test_throughput_reporter_writes_eta_lines(self):
        import io

        stream = io.StringIO()
        reporter = ThroughputReporter(stream=stream, min_interval=0.0)
        engine = Engine(progress=reporter)
        engine.run(_specs(3))
        output = stream.getvalue()
        assert "3/3 jobs" in output
        assert "jobs/s" in output
        assert "3 jobs in" in output


class TestTraceReporterConvergence:
    def _worker_fragment(self):
        """A fragment as a worker process would export it."""
        from repro.telemetry import Recorder, trace

        recorder = Recorder()
        with trace.recording(recorder):
            with trace.span("engine.job"):
                tracker = trace.iterations("em.fit")
                tracker.record(objective=-3.0)
                tracker.record(objective=-2.0, delta=1.0)
                tracker.finish(converged=True)
        return recorder.export_fragment()

    def _result(self, key="job-0", fragment=None):
        from repro.engine.jobs import JobResult

        return JobResult(
            key=key, values={}, duration=0.1, trace=fragment
        )

    def test_worker_fragment_rows_carry_a_summary(self):
        from repro.engine.progress import TraceReporter

        reporter = TraceReporter()
        reporter.on_start(2)
        reporter.on_result(self._result("a", self._worker_fragment()), 1, 2)
        reporter.on_result(self._result("b"), 2, 2)
        with_summary, without = reporter.rows
        assert with_summary["convergence"] == {
            "em.fit": {
                "fits": 1,
                "iterations": 2,
                "rejections": 0,
                "nonfinite": 0,
                "nonconverged": 0,
            }
        }
        assert "convergence" not in without

    def test_manifest_join_keeps_the_summary(self):
        from repro.telemetry import build_manifest, validate_trace
        from repro.telemetry.recorder import Recorder

        rows = [
            {
                "key": "bench.case",
                "duration": 0.5,
                "cached": False,
                "convergence": {"em.fit": {"fits": 1, "iterations": 2}},
            }
        ]
        manifest = build_manifest(rows=rows)
        (job,) = manifest["jobs"]
        assert job["convergence"]["em.fit"]["iterations"] == 2
        validate_trace(Recorder().to_document(manifest=manifest))
