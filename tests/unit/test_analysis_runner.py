"""Unit tests for the analysis runner, registry, suppressions, reporters."""

import json
import textwrap

import pytest

from repro.analysis import (
    REPORT_VERSION,
    RULES,
    discover_files,
    render_report,
    render_rules,
    report_payload,
    run_check,
)
from repro.analysis.runner import module_name_for
from repro.analysis.suppressions import (
    ALL_RULES,
    is_suppressed,
    parse_suppressions,
)
from repro.exceptions import ValidationError

EXPECTED_RULES = [
    "bare-lock",
    "float-eq",
    "global-rng",
    "iter-hotpath",
    "mutable-default",
    "ndarray-eq",
    "shm-lifecycle",
    "spec-signature",
    "task-pickle",
    "wall-clock",
]


class TestRegistry:
    def test_catalog_holds_the_ten_rules(self):
        assert RULES.names() == EXPECTED_RULES

    def test_get_unknown_rule_raises(self):
        with pytest.raises(ValidationError, match="unknown rule"):
            RULES.get("no-such-rule")

    def test_select_subset_preserves_order(self):
        rules = RULES.select(["wall-clock", "float-eq"])
        assert [rule.key for rule in rules] == ["wall-clock", "float-eq"]

    def test_every_rule_documents_itself(self):
        for key in RULES.names():
            rule = RULES.get(key)
            assert rule.title, key
            assert rule.rationale, key
            assert rule.hint, key
            assert rule.severity in ("error", "warning"), key


class TestSuppressions:
    def test_bare_marker_suppresses_everything(self):
        suppressions = parse_suppressions("x = 1  # repro: ignore\n")
        assert suppressions == {1: {ALL_RULES}}
        assert is_suppressed(suppressions, 1, "float-eq")
        assert not is_suppressed(suppressions, 2, "float-eq")

    def test_listed_rules_only(self):
        suppressions = parse_suppressions(
            "a = 1\nb = 2  # repro: ignore[float-eq, wall-clock] why\n"
        )
        assert suppressions == {2: {"float-eq", "wall-clock"}}
        assert is_suppressed(suppressions, 2, "wall-clock")
        assert not is_suppressed(suppressions, 2, "global-rng")

    def test_marker_inside_string_is_data(self):
        suppressions = parse_suppressions('text = "# repro: ignore[x]"\n')
        assert suppressions == {}

    def test_unreadable_source_yields_nothing(self):
        assert parse_suppressions("def broken(:\n") == {}


class TestRunner:
    def test_discover_skips_cache_dirs_and_dedupes(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        files = discover_files([tmp_path, tmp_path / "pkg" / "mod.py"])
        assert [f.name for f in files] == ["mod.py"]

    def test_discover_missing_path_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            discover_files([tmp_path / "absent"])

    def test_module_name_walks_packages(self, tmp_path):
        package = tmp_path / "outer" / "inner"
        package.mkdir(parents=True)
        (tmp_path / "outer" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "mod.py").write_text("")
        assert module_name_for(package / "mod.py") == "outer.inner.mod"
        assert module_name_for(package / "__init__.py") == "outer.inner"
        script = tmp_path / "script.py"
        script.write_text("")
        assert module_name_for(script) == "script"

    def test_unknown_rule_key_raises(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        with pytest.raises(ValidationError, match="unknown rule"):
            run_check([path], rules=["bogus"])

    def test_syntax_error_becomes_report_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        report = run_check([path])
        assert not report.ok
        assert len(report.errors) == 1
        assert "SyntaxError" in report.errors[0][1]

    def test_findings_sorted_by_location(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            textwrap.dedent(
                """
                def later(x):
                    return x == 2.5

                def earlier(values=[]):
                    return values
                """
            )
        )
        report = run_check([path])
        assert [f.rule for f in report.active] == [
            "float-eq",
            "mutable-default",
        ]
        assert report.active[0].line < report.active[1].line


class TestReporters:
    @pytest.fixture()
    def failing_report(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def check(x):\n"
            "    return x == 0.5\n"
            "\n"
            "def guard(y):\n"
            "    return y == 0.0  # repro: ignore[float-eq] exact guard\n"
        )
        return run_check([path])

    def test_text_report_lines_and_summary(self, failing_report):
        text = render_report(failing_report)
        assert ":2:12: warning[float-eq]" in text
        assert "repro check: FAILED" in text
        assert "1 finding (1 suppressed)" in text

    def test_fix_hints_render_once_per_rule(self, failing_report):
        text = render_report(failing_report, fix_hints=True)
        assert text.count("hint:") == 1
        assert "tolerance" in text

    def test_clean_report_says_clean(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        text = render_report(run_check([path]))
        assert "repro check: clean" in text

    def test_json_payload_shape(self, failing_report):
        payload = report_payload(failing_report)
        assert payload["version"] == REPORT_VERSION
        assert json.loads(json.dumps(payload)) == payload
        assert [rule["key"] for rule in payload["rules"]] == EXPECTED_RULES
        assert payload["summary"] == {
            "files": 1,
            "findings": 1,
            "suppressed": 1,
            "errors": 0,
            "ok": False,
        }
        active = [f for f in payload["findings"] if not f["suppressed"]]
        assert active[0]["rule"] == "float-eq"
        assert active[0]["col"] == 12  # 1-based in the JSON document

    def test_rule_catalog_lists_every_rule(self):
        catalog = render_rules()
        for key in EXPECTED_RULES:
            assert key in catalog
        assert "scope:" in catalog
