"""Regression tests: equality on ndarray-holding result dataclasses.

The generated dataclass ``__eq__`` compared ndarray fields with ``==``
and raised ``ValueError: The truth value of an array ... is ambiguous``;
these pin the fixed, well-defined semantics (element-wise, nan-aware).
Also covers the nan-safe PipelineReport JSON round trip.
"""

import json

import numpy as np
import pytest

from repro.core.pipeline import (
    AttackOutcome,
    PipelineReport,
    evaluate_attacks,
)
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.base import DisguisedDataset, NoiseModel
from repro.reconstruction.base import ReconstructionResult
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor


@pytest.fixture()
def disguised():
    rng = np.random.default_rng(3)
    table = rng.normal(size=(60, 4)) @ np.diag([6.0, 3.0, 1.0, 1.0])
    return AdditiveNoiseScheme(std=2.0).disguise(table, rng=4)


def make_result(seed=0):
    rng = np.random.default_rng(seed)
    return ReconstructionResult(
        estimate=rng.normal(size=(5, 3)),
        method="PCA-DR",
        details={"n_components": 2, "spectrum": np.array([3.0, 1.0])},
    )


class TestReconstructionResultEquality:
    def test_equal_to_identical_copy(self):
        # Regression: this raised "truth value of an array is ambiguous".
        assert make_result(0) == make_result(0)

    def test_unequal_estimates(self):
        assert make_result(0) != make_result(1)

    def test_unequal_to_other_types(self):
        assert make_result(0) != "PCA-DR"

    def test_nan_details_compare_equal(self):
        a = ReconstructionResult(
            estimate=np.ones((2, 2)), method="X",
            details={"score": float("nan")},
        )
        b = ReconstructionResult(
            estimate=np.ones((2, 2)), method="X",
            details={"score": float("nan")},
        )
        assert a == b


def make_outcome(rmse=1.5, error=None):
    return AttackOutcome(
        name="BE-DR",
        rmse=rmse,
        attribute_rmse=np.array([1.0, 2.0]),
        result=None if error else make_result(0),
        error=error,
    )


class TestAttackOutcomeEquality:
    def test_equal_to_identical_copy(self):
        # Regression: this raised "truth value of an array is ambiguous".
        assert make_outcome() == make_outcome()

    def test_failed_outcomes_with_nan_rmse_compare_equal(self):
        a = make_outcome(rmse=float("nan"), error="ValueError: boom")
        b = make_outcome(rmse=float("nan"), error="ValueError: boom")
        assert a == b

    def test_different_rmse_unequal(self):
        assert make_outcome(1.5) != make_outcome(2.5)


class TestDatasetEquality:
    def test_noise_model_equality(self):
        a = NoiseModel(np.eye(2) * 4.0, np.zeros(2))
        b = NoiseModel(np.eye(2) * 4.0, np.zeros(2))
        assert a == b
        assert a != NoiseModel(np.eye(2) * 9.0, np.zeros(2))

    def test_disguised_dataset_equality(self, disguised):
        clone = DisguisedDataset(
            disguised=disguised.disguised.copy(),
            noise_model=disguised.noise_model,
            original=disguised.original.copy(),
            noise=disguised.noise.copy(),
        )
        assert disguised == clone


class TestPipelineReportRoundTrip:
    def make_report(self, disguised, fail=False):
        attacks = {
            "NDR": NoiseDistributionReconstructor(),
            "BE-DR": BayesEstimateReconstructor(),
        }
        if fail:
            # Wiener needs more steps than its window: guaranteed error
            # path with fail_fast=False -> a nan-rmse outcome.
            attacks["Wiener"] = WienerSmootherReconstructor(window=121)
        outcomes = evaluate_attacks(disguised, attacks, fail_fast=not fail)
        return PipelineReport(
            outcomes=outcomes, dataset=disguised, metadata={"point": 3}
        )

    def test_report_equality(self, disguised):
        assert self.make_report(disguised) == self.make_report(disguised)

    def test_round_trip_is_strict_json_and_lossless(self, disguised):
        report = self.make_report(disguised)
        text = json.dumps(report.to_dict(), allow_nan=False)
        assert PipelineReport.from_dict(json.loads(text)) == report

    def test_round_trip_with_nan_outcomes(self, disguised):
        report = self.make_report(disguised, fail=True)
        assert np.isnan(report.outcomes["Wiener"].rmse)
        text = json.dumps(report.to_dict(), allow_nan=False)
        clone = PipelineReport.from_dict(json.loads(text))
        assert clone == report
        assert np.isnan(clone.outcomes["Wiener"].rmse)

    def test_compact_form_drops_matrices(self, disguised):
        report = self.make_report(disguised)
        compact = report.to_dict(
            include_dataset=False, include_estimates=False
        )
        assert compact["dataset"] is None
        assert compact["outcomes"]["BE-DR"]["result"]["estimate"] is None
        clone = PipelineReport.from_dict(compact)
        assert clone.dataset is None
        assert clone.outcomes["BE-DR"].result is None
        assert clone.outcomes["BE-DR"].rmse == report.outcomes["BE-DR"].rmse
