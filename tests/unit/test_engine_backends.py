"""Unit tests for the executor-backend seam."""

import pytest

from repro.engine import (
    BACKENDS,
    ParallelExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    backend_names,
    create_backend,
    register_backend,
)
from repro.exceptions import ValidationError


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == ["parallel", "serial", "shared-memory"]

    def test_create_builtin_backends(self):
        assert isinstance(create_backend("serial"), SerialExecutor)
        parallel = create_backend("parallel", workers=3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 3
        shm = create_backend("shared-memory", workers=2, chunk_size=5)
        assert isinstance(shm, SharedMemoryExecutor)
        assert (shm.workers, shm.chunk_size) == (2, 5)

    def test_backend_names_match_class_attribute(self):
        for name in backend_names():
            assert create_backend(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown executor backend"):
            create_backend("carrier-pigeon")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_backend("serial", lambda workers, chunk: None)

    def test_reregistering_same_factory_is_idempotent(self):
        register_backend("serial", BACKENDS["serial"])

    def test_bad_name_rejected(self):
        with pytest.raises(ValidationError):
            register_backend("", lambda workers, chunk: None)

    def test_custom_backend_round_trip(self):
        def factory(workers, chunk_size):
            return SerialExecutor()

        register_backend("test-custom", factory)
        try:
            assert "test-custom" in backend_names()
            assert isinstance(create_backend("test-custom"), SerialExecutor)
        finally:
            del BACKENDS["test-custom"]
