"""Unit tests for the Kalman/RTS smoother attack."""

import numpy as np
import pytest

from repro.data.timeseries import VectorAutoregressiveGenerator
from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.kalman import KalmanSmootherReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor


def _coupled_var_case(n=4000, sigma=2.0, seed=0):
    """VAR(1) with cross-channel coupling: channel 1 leads channel 0."""
    transition = np.array([[0.85, 0.3], [0.0, 0.9]])
    generator = VectorAutoregressiveGenerator(
        transition, innovation_std=1.0
    )
    series = generator.sample(n, rng=seed)
    disguised = AdditiveNoiseScheme(std=sigma).disguise(
        series, rng=seed + 1
    )
    return series, disguised, generator


class TestKalmanSmoother:
    def test_beats_ndr_strongly(self):
        series, disguised, _ = _coupled_var_case()
        kalman = root_mean_square_error(
            series, KalmanSmootherReconstructor().reconstruct(disguised)
        )
        ndr = root_mean_square_error(
            series,
            NoiseDistributionReconstructor().reconstruct(disguised),
        )
        assert kalman < 0.6 * ndr

    def test_beats_per_channel_wiener_on_coupled_system(self):
        """Cross-channel coupling is invisible to the per-channel
        smoother; the joint state-space model exploits it."""
        series, disguised, _ = _coupled_var_case(seed=3)
        kalman = root_mean_square_error(
            series, KalmanSmootherReconstructor().reconstruct(disguised)
        )
        wiener = root_mean_square_error(
            series,
            WienerSmootherReconstructor(window=21).reconstruct(disguised),
        )
        assert kalman < wiener

    def test_matches_wiener_on_diagonal_system(self):
        """Without coupling the two attacks model the same process."""
        generator = VectorAutoregressiveGenerator(
            0.9, innovation_std=1.0, n_channels=2
        )
        series = generator.sample(4000, rng=5)
        disguised = AdditiveNoiseScheme(std=2.0).disguise(series, rng=6)
        kalman = root_mean_square_error(
            series, KalmanSmootherReconstructor().reconstruct(disguised)
        )
        wiener = root_mean_square_error(
            series,
            WienerSmootherReconstructor(window=41).reconstruct(disguised),
        )
        assert kalman == pytest.approx(wiener, rel=0.1)

    def test_transition_estimate_close_to_truth(self):
        _, disguised, generator = _coupled_var_case(n=20000, seed=7)
        result = KalmanSmootherReconstructor().reconstruct(disguised)
        np.testing.assert_allclose(
            result.details["transition"],
            generator.transition,
            atol=0.08,
        )

    def test_stability_cap_applied(self):
        # Near-unit-root process: the estimate must stay stable.
        generator = VectorAutoregressiveGenerator(
            0.995, innovation_std=1.0, n_channels=1
        )
        series = generator.sample(500, rng=8)
        disguised = AdditiveNoiseScheme(std=3.0).disguise(series, rng=9)
        attack = KalmanSmootherReconstructor(max_spectral_radius=0.99)
        result = attack.reconstruct(disguised)
        assert result.details["spectral_radius"] <= 0.99 + 1e-9
        assert np.all(np.isfinite(result.estimate))

    def test_estimate_shape_and_mean_restored(self):
        generator = VectorAutoregressiveGenerator(
            0.8, innovation_std=1.0, n_channels=3
        )
        series = generator.sample(800, rng=10) + 50.0
        disguised = AdditiveNoiseScheme(std=2.0).disguise(series, rng=11)
        result = KalmanSmootherReconstructor().reconstruct(disguised)
        assert result.estimate.shape == series.shape
        np.testing.assert_allclose(
            result.estimate.mean(axis=0), np.full(3, 50.0), atol=1.0
        )

    def test_white_data_shrinks_like_udr(self):
        """No serial structure: the smoother reduces to static shrinkage."""
        rng = np.random.default_rng(12)
        white = rng.normal(0.0, 3.0, size=(3000, 1))
        disguised = AdditiveNoiseScheme(std=2.0).disguise(white, rng=13)
        result = KalmanSmootherReconstructor().reconstruct(disguised)
        rmse = root_mean_square_error(white, result)
        # Static shrinkage bound: sqrt(9*4/13).
        assert rmse == pytest.approx(np.sqrt(36.0 / 13.0), rel=0.08)

    def test_needs_minimum_length(self):
        disguised = AdditiveNoiseScheme(std=1.0).disguise(
            np.zeros((3, 2)) + np.arange(3)[:, None], rng=14
        )
        with pytest.raises(ValidationError, match="at least 4"):
            KalmanSmootherReconstructor().reconstruct(disguised)

    def test_radius_parameter_validated(self):
        with pytest.raises(ValidationError):
            KalmanSmootherReconstructor(max_spectral_radius=1.0)

    def test_method_name(self):
        series, disguised, _ = _coupled_var_case(n=100, seed=15)
        result = KalmanSmootherReconstructor().reconstruct(disguised)
        assert result.method == "Kalman"
