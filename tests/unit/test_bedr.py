"""Unit tests for BE-DR (Section 6, Theorem 8.1)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.psd import psd_inverse
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor

from tests.conftest import NOISE_STD


class TestEquation11:
    def test_matches_equation_11_with_oracle_inputs(self, small_dataset):
        """x_hat = (Sigma_x^-1 + I/sigma^2)^-1 (Sigma_x^-1 mu_x + y/sigma^2)."""
        scheme = AdditiveNoiseScheme(std=NOISE_STD)
        disguised = scheme.disguise(small_dataset.values, rng=0)
        sigma_x = small_dataset.population_covariance
        mu_x = np.zeros(small_dataset.n_attributes)
        attack = BayesEstimateReconstructor(
            oracle_covariance=sigma_x, oracle_mean=mu_x
        )
        result = attack.reconstruct(disguised)

        precision = np.linalg.inv(sigma_x)
        a = precision + np.eye(sigma_x.shape[0]) / NOISE_STD**2
        a_inv = np.linalg.inv(a)
        for i in [0, 17, 599]:
            y = disguised.disguised[i]
            expected = a_inv @ (precision @ mu_x + y / NOISE_STD**2)
            np.testing.assert_allclose(result.estimate[i], expected, atol=1e-8)

    def test_beats_pca_and_ndr_on_correlated_data(self, disguised_dataset):
        original = disguised_dataset.original
        be = root_mean_square_error(
            original,
            BayesEstimateReconstructor().reconstruct(disguised_dataset),
        )
        pca = root_mean_square_error(
            original, PCAReconstructor().reconstruct(disguised_dataset)
        )
        ndr = root_mean_square_error(
            original,
            NoiseDistributionReconstructor().reconstruct(disguised_dataset),
        )
        assert be <= pca * 1.02  # BE at least ties PCA
        assert be < ndr

    def test_posterior_shrinks_toward_mean_for_weak_data(self, weak_disguised):
        """With a flat, weak prior the estimate shrinks y toward the mean."""
        result = BayesEstimateReconstructor().reconstruct(weak_disguised)
        y = weak_disguised.disguised
        column_means = y.mean(axis=0)
        # Shrinkage: estimate strictly between the observation and mean.
        gap_y = np.abs(result.estimate - y)
        gap_mean = np.abs(result.estimate - column_means)
        # On average the estimate moved off the observation toward mean.
        assert gap_y.mean() > 0.1
        assert (
            np.abs(result.estimate - column_means).mean()
            < np.abs(y - column_means).mean()
        )

    def test_estimated_covariance_close_to_truth(self, disguised_dataset,
                                                 small_dataset):
        result = BayesEstimateReconstructor().reconstruct(disguised_dataset)
        estimated = result.details["estimated_covariance"]
        truth = small_dataset.population_covariance
        # Loose check: same scale, strongly correlated entries.
        assert np.corrcoef(estimated.ravel(), truth.ravel())[0, 1] > 0.95

    def test_expected_mse_matches_empirical_for_oracle(self, small_dataset):
        """trace(A^-1)/m is the Bayes-optimal MSE with the true prior."""
        scheme = AdditiveNoiseScheme(std=NOISE_STD)
        disguised = scheme.disguise(small_dataset.values, rng=9)
        attack = BayesEstimateReconstructor(
            oracle_covariance=small_dataset.population_covariance,
            oracle_mean=np.zeros(small_dataset.n_attributes),
        )
        result = attack.reconstruct(disguised)
        empirical = float(
            np.mean((result.estimate - small_dataset.values) ** 2)
        )
        assert empirical == pytest.approx(
            result.details["expected_mse"], rel=0.1
        )

    def test_expected_mse_below_noise_variance(self, disguised_dataset):
        """The Bayes estimate must promise (and deliver) less than NDR."""
        result = BayesEstimateReconstructor().reconstruct(disguised_dataset)
        assert result.details["expected_mse"] < NOISE_STD**2


class TestTheorem81:
    def test_matches_theorem_81_formula(self, small_dataset):
        """Correlated noise: x_hat = (Sx^-1+Sr^-1)^-1 (Sx^-1 mu - Sr^-1 mu_r + Sr^-1 y)."""
        sigma_x = small_dataset.population_covariance
        m = sigma_x.shape[0]
        scheme = CorrelatedNoiseScheme.matching_data_covariance(
            sigma_x, noise_power=m * NOISE_STD**2
        )
        disguised = scheme.disguise(small_dataset.values, rng=1)
        mu_x = np.zeros(m)
        attack = BayesEstimateReconstructor(
            oracle_covariance=sigma_x, oracle_mean=mu_x
        )
        result = attack.reconstruct(disguised)

        sigma_r = scheme.covariance
        px = psd_inverse(sigma_x)
        pr = psd_inverse(sigma_r)
        a_inv = psd_inverse(px + pr)
        for i in [3, 100]:
            y = disguised.disguised[i]
            expected = a_inv @ (px @ mu_x + pr @ y)
            np.testing.assert_allclose(
                result.estimate[i], expected, atol=1e-6
            )

    def test_correlated_noise_hurts_attack(self, small_dataset):
        """Section 8: similarity-matched noise must raise BE-DR's error."""
        m = small_dataset.n_attributes
        power = m * NOISE_STD**2
        iid = AdditiveNoiseScheme(std=NOISE_STD)
        matched = CorrelatedNoiseScheme.matching_data_covariance(
            small_dataset.population_covariance, noise_power=power
        )
        attack = BayesEstimateReconstructor()
        rmse_iid = root_mean_square_error(
            small_dataset.values,
            attack.reconstruct(iid.disguise(small_dataset.values, rng=2)),
        )
        rmse_matched = root_mean_square_error(
            small_dataset.values,
            attack.reconstruct(
                matched.disguise(small_dataset.values, rng=2)
            ),
        )
        assert rmse_matched > rmse_iid


class TestValidation:
    def test_oracle_covariance_dim_checked(self, disguised_dataset):
        with pytest.raises(ValidationError):
            BayesEstimateReconstructor(
                oracle_covariance=np.eye(3)
            ).reconstruct(disguised_dataset)

    def test_oracle_mean_dim_checked(self, disguised_dataset):
        with pytest.raises(ValidationError):
            BayesEstimateReconstructor(
                oracle_mean=np.zeros(2)
            ).reconstruct(disguised_dataset)

    def test_method_name(self, disguised_dataset):
        result = BayesEstimateReconstructor().reconstruct(disguised_dataset)
        assert result.method == "BE-DR"
