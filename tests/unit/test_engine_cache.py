"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro.engine import Engine, ParallelExecutor, SerialExecutor
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.jobs import JobResult, JobSpec
from repro.exceptions import ValidationError

_HERE = "tests.unit.test_engine_cache"


def logging_task(params, rng):
    """Appends to a side-effect file so tests can count real executions."""
    with open(params["log"], "a") as stream:
        stream.write("ran\n")
    return {"value": params["value"]}


def _spec(tmp_path, value=1):
    return JobSpec(
        f"{_HERE}:logging_task",
        {"log": str(tmp_path / "log.txt"), "value": value},
    )


def _executions(tmp_path):
    log = tmp_path / "log.txt"
    return len(log.read_text().splitlines()) if log.exists() else 0


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_spec(tmp_path)) is None
        assert len(cache) == 0

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(tmp_path)
        result = JobResult(key=spec.key(), values={"value": 1}, duration=0.5)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.cached is True
        assert hit.values == {"value": 1}
        assert hit.duration == 0.5
        assert len(cache) == 1

    def test_key_mismatch_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(tmp_path)
        wrong = JobResult(key="0" * 64, values={}, duration=0.0)
        with pytest.raises(ValidationError, match="does not match"):
            cache.put(spec, wrong)

    def test_different_params_different_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        one, two = _spec(tmp_path, 1), _spec(tmp_path, 2)
        cache.put(one, JobResult(one.key(), {"value": 1}, 0.0))
        assert cache.get(two) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(tmp_path)
        cache.put(spec, JobResult(spec.key(), {"value": 1}, 0.0))
        path = cache.path_for(spec.key())
        path.write_text("{truncated")
        assert cache.get(spec) is None
        assert not path.exists()

    def test_task_mismatch_is_a_miss(self, tmp_path):
        """Hash-collision paranoia: a stored entry must name the task."""
        cache = ResultCache(tmp_path)
        spec = _spec(tmp_path)
        cache.put(spec, JobResult(spec.key(), {"value": 1}, 0.0))
        path = cache.path_for(spec.key())
        payload = json.loads(path.read_text())
        payload["task"] = "other.module:function"
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for value in range(3):
            spec = _spec(tmp_path, value)
            cache.put(spec, JobResult(spec.key(), {"value": value}, 0.0))
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert ResultCache().directory == tmp_path / "alt"


class TestEngineCaching:
    def test_second_run_skips_all_jobs(self, tmp_path):
        specs = [_spec(tmp_path, value) for value in range(4)]
        engine = Engine(SerialExecutor(), cache=ResultCache(tmp_path / "c"))
        first = engine.run(specs)
        assert _executions(tmp_path) == 4
        assert all(not result.cached for result in first)

        second = engine.run(specs)
        assert _executions(tmp_path) == 4, "cached jobs must not re-run"
        assert all(result.cached for result in second)
        assert [r.values for r in second] == [r.values for r in first]

    def test_partial_hit_runs_only_misses(self, tmp_path):
        engine = Engine(cache=ResultCache(tmp_path / "c"))
        engine.run([_spec(tmp_path, 0)])
        engine.run([_spec(tmp_path, 0), _spec(tmp_path, 1)])
        assert _executions(tmp_path) == 2

    def test_no_cache_always_executes(self, tmp_path):
        engine = Engine()
        engine.run([_spec(tmp_path, 0)])
        engine.run([_spec(tmp_path, 0)])
        assert _executions(tmp_path) == 2

    def test_duplicate_spec_objects_both_get_results(self, tmp_path):
        spec = _spec(tmp_path, 7)
        results = Engine().run([spec, spec])
        assert all(result is not None for result in results)
        assert [r.values for r in results] == [{"value": 7}, {"value": 7}]

    def test_completed_jobs_cached_despite_later_failure(self, tmp_path):
        """A mid-sweep failure must not discard already-finished work."""
        cache = ResultCache(tmp_path / "c")
        ok = [_spec(tmp_path, value) for value in (0, 1)]
        bad = JobSpec(
            "tests.unit.test_engine_cache:no_such_task_function", {}
        )
        with pytest.raises(ValidationError):
            Engine(cache=cache).run(ok + [bad])
        assert len(cache) == 2
        assert _executions(tmp_path) == 2
        # The rerun without the bad job is served entirely from cache.
        Engine(cache=cache).run(ok)
        assert _executions(tmp_path) == 2

    def test_parallel_failure_preserves_completed_chunks(self, tmp_path):
        """Out-of-order completions must reach the cache even when a
        sibling chunk fails (chunk_size=1: one job per chunk)."""
        cache = ResultCache(tmp_path / "c")
        ok = [_spec(tmp_path, value) for value in (0, 1)]
        bad = JobSpec(
            "tests.unit.test_engine_cache:no_such_task_function", {}
        )
        executor = ParallelExecutor(workers=2, chunk_size=1)
        with pytest.raises(ValidationError):
            Engine(executor, cache=cache).run([bad] + ok)
        assert len(cache) == 2
        # The rerun without the bad job executes nothing new.
        Engine(executor, cache=cache).run(ok)
        assert _executions(tmp_path) == 2
