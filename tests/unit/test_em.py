"""Unit tests for repro.stats.em.UnivariateGaussianMixtureEM."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.stats.density import GaussianMixtureDensity
from repro.stats.em import UnivariateGaussianMixtureEM


def _bimodal_samples(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    left = rng.normal(-4.0, 1.0, n // 2)
    right = rng.normal(3.0, 0.5, n // 2)
    return np.concatenate([left, right])


class TestFit:
    def test_returns_mixture_density(self):
        fit = UnivariateGaussianMixtureEM(2).fit(_bimodal_samples(), rng=1)
        assert isinstance(fit, GaussianMixtureDensity)
        assert fit.n_components == 2

    def test_recovers_bimodal_structure(self):
        fit = UnivariateGaussianMixtureEM(2).fit(_bimodal_samples(), rng=1)
        means = np.sort(fit.means)
        assert means[0] == pytest.approx(-4.0, abs=0.3)
        assert means[1] == pytest.approx(3.0, abs=0.3)
        np.testing.assert_allclose(fit.weights, [0.5, 0.5], atol=0.05)

    def test_single_component_matches_moments(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(5.0, 2.0, 3000)
        fit = UnivariateGaussianMixtureEM(1).fit(samples, rng=3)
        assert fit.means[0] == pytest.approx(5.0, abs=0.15)
        assert fit.stds[0] == pytest.approx(2.0, abs=0.15)

    def test_likelihood_never_decreases(self):
        samples = _bimodal_samples(800, seed=5)
        em = UnivariateGaussianMixtureEM(2, max_iter=50, tol=1e-12)
        weights, means, stds = em._initialize(
            samples, np.random.default_rng(0)
        )
        previous = -np.inf
        for _ in range(25):
            responsibilities, log_likelihood = em._e_step(
                samples, weights, means, stds
            )
            assert log_likelihood >= previous - 1e-9
            previous = log_likelihood
            weights, means, stds = em._m_step(samples, responsibilities)

    def test_variance_floor_respected(self):
        # Two identical points invite variance collapse.
        samples = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        fit = UnivariateGaussianMixtureEM(2, min_std=0.5).fit(samples, rng=0)
        assert np.all(fit.stds >= 0.5 - 1e-12)

    def test_convergence_error_on_tiny_budget(self):
        with pytest.raises(ConvergenceError):
            UnivariateGaussianMixtureEM(2, max_iter=1, tol=1e-300).fit(
                _bimodal_samples(500, seed=7), rng=0
            )

    def test_deterministic_given_seed(self):
        samples = _bimodal_samples(600, seed=8)
        a = UnivariateGaussianMixtureEM(2).fit(samples, rng=4)
        b = UnivariateGaussianMixtureEM(2).fit(samples, rng=4)
        np.testing.assert_allclose(a.means, b.means)

    def test_needs_enough_samples(self):
        with pytest.raises(ValidationError):
            UnivariateGaussianMixtureEM(3).fit([1.0, 2.0])


class TestValidation:
    def test_rejects_zero_components(self):
        with pytest.raises(ValidationError):
            UnivariateGaussianMixtureEM(0)

    def test_rejects_bad_tol(self):
        with pytest.raises(ValidationError):
            UnivariateGaussianMixtureEM(2, tol=0.0)

    def test_rejects_bad_min_std(self):
        with pytest.raises(ValidationError):
            UnivariateGaussianMixtureEM(2, min_std=-1.0)
