"""Unit tests for repro.data.census."""

import numpy as np
import pytest

from repro.data.census import CensusLikeGenerator
from repro.linalg.covariance import correlation_from_covariance
from repro.linalg.psd import is_positive_semidefinite


class TestCensusLikeGenerator:
    def test_schema(self):
        generator = CensusLikeGenerator()
        assert generator.n_attributes == 10
        assert "income" in generator.column_names
        assert "systolic_bp" in generator.column_names

    def test_sample_shape_and_names(self):
        table = CensusLikeGenerator().sample(100, rng=0)
        assert table.values.shape == (100, 10)
        assert table.n_records == 100
        assert table.column_names == CensusLikeGenerator().column_names

    def test_population_covariance_is_psd(self):
        assert is_positive_semidefinite(
            CensusLikeGenerator().population_covariance
        )

    def test_sample_moments_match_population(self):
        generator = CensusLikeGenerator()
        table = generator.sample(100000, rng=1)
        np.testing.assert_allclose(
            table.values.mean(axis=0),
            generator.population_mean,
            rtol=0.05,
            atol=0.5,
        )
        sample_cov = np.cov(table.values, rowvar=False)
        np.testing.assert_allclose(
            sample_cov,
            generator.population_covariance,
            rtol=0.3,
            atol=15.0,
        )

    def test_attributes_strongly_correlated(self):
        # The whole point of the generator: a correlated table.
        corr = correlation_from_covariance(
            CensusLikeGenerator().population_covariance
        )
        off = corr[~np.eye(10, dtype=bool)]
        assert np.abs(off).max() > 0.7

    def test_latent_structure_gives_low_rank_spectrum(self):
        # Three latent factors -> the top three eigenvalues dominate.
        eigenvalues = np.sort(
            np.linalg.eigvalsh(CensusLikeGenerator().population_covariance)
        )[::-1]
        assert eigenvalues[:3].sum() > 0.9 * eigenvalues.sum()

    def test_column_accessor(self):
        table = CensusLikeGenerator().sample(50, rng=2)
        np.testing.assert_array_equal(
            table.column("age"), table.values[:, 0]
        )
        with pytest.raises(KeyError):
            table.column("missing")

    def test_scale_preserves_correlations(self):
        base = CensusLikeGenerator()
        scaled = CensusLikeGenerator(scale=3.0)
        np.testing.assert_allclose(
            correlation_from_covariance(base.population_covariance),
            correlation_from_covariance(scaled.population_covariance),
            atol=1e-9,
        )

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            CensusLikeGenerator(scale=0.0)

    def test_deterministic_given_seed(self):
        a = CensusLikeGenerator().sample(20, rng=5)
        b = CensusLikeGenerator().sample(20, rng=5)
        np.testing.assert_array_equal(a.values, b.values)
