"""Unit tests for UDR (Section 4.2)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.udr import (
    UnivariateReconstructor,
    noise_marginal_density,
)
from repro.stats.density import GaussianDensity, UniformDensity

from tests.conftest import NOISE_STD


class TestNoiseMarginalDensity:
    def test_gaussian_marginal(self):
        model = AdditiveNoiseScheme(std=3.0).noise_model(2)
        density = noise_marginal_density(model, 0)
        assert isinstance(density, GaussianDensity)
        assert density.variance == pytest.approx(9.0)

    def test_uniform_marginal(self):
        model = AdditiveNoiseScheme(std=3.0, family="uniform").noise_model(2)
        density = noise_marginal_density(model, 1)
        assert isinstance(density, UniformDensity)
        assert density.variance == pytest.approx(9.0)

    def test_rejects_zero_variance(self):
        from repro.randomization.base import NoiseModel

        model = NoiseModel(covariance=np.diag([1.0, 0.0]), mean=np.zeros(2))
        with pytest.raises(ValidationError):
            noise_marginal_density(model, 1)


class TestGaussianPrior:
    def test_exact_shrinkage_for_gaussian_data(self):
        """For N(mu, s^2) data the posterior mean is linear shrinkage."""
        rng = np.random.default_rng(0)
        prior_var = 75.0
        original = rng.normal(10.0, np.sqrt(prior_var), size=(50000, 1))
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            original, rng=1
        )
        result = UnivariateReconstructor().reconstruct(disguised)
        y = disguised.disguised[:, 0]
        sample_shrinkage = (y.var() - NOISE_STD**2) / y.var()
        expected = y.mean() + sample_shrinkage * (y - y.mean())
        np.testing.assert_allclose(result.estimate[:, 0], expected, atol=1e-6)

    def test_beats_ndr(self, disguised_dataset):
        original = disguised_dataset.original
        udr = root_mean_square_error(
            original, UnivariateReconstructor().reconstruct(disguised_dataset)
        )
        ndr = root_mean_square_error(
            original,
            NoiseDistributionReconstructor().reconstruct(disguised_dataset),
        )
        assert udr < ndr

    def test_rmse_matches_theory(self):
        """Gaussian prior+noise: posterior std = sqrt(s^2 sigma^2/(s^2+sigma^2))."""
        rng = np.random.default_rng(2)
        prior_var = 100.0
        original = rng.normal(0.0, 10.0, size=(80000, 1))
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            original, rng=3
        )
        result = UnivariateReconstructor().reconstruct(disguised)
        rmse = root_mean_square_error(original, result)
        theory = np.sqrt(
            prior_var * NOISE_STD**2 / (prior_var + NOISE_STD**2)
        )
        assert rmse == pytest.approx(theory, rel=0.02)

    def test_pure_noise_column_collapses_to_mean(self):
        """A column whose variance is all noise reconstructs as the mean."""
        original = np.zeros((5000, 1))
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            original, rng=4
        )
        result = UnivariateReconstructor().reconstruct(disguised)
        spread = result.estimate[:, 0].std()
        assert spread < 0.5  # nearly constant


class TestReconstructedPrior:
    def test_non_gaussian_data_beats_gaussian_prior(self):
        """Bimodal data: the AS-reconstructed prior beats moment matching."""
        rng = np.random.default_rng(5)
        original = np.concatenate(
            [rng.normal(-15.0, 1.0, 3000), rng.normal(15.0, 1.0, 3000)]
        ).reshape(-1, 1)
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            original, rng=6
        )
        gaussian = UnivariateReconstructor(prior="gaussian").reconstruct(
            disguised
        )
        reconstructed = UnivariateReconstructor(
            prior="reconstructed", n_bins=80
        ).reconstruct(disguised)
        rmse_gaussian = root_mean_square_error(original, gaussian)
        rmse_reconstructed = root_mean_square_error(original, reconstructed)
        assert rmse_reconstructed < rmse_gaussian

    def test_explicit_prior_densities(self):
        rng = np.random.default_rng(7)
        original = rng.normal(0.0, 8.0, size=(2000, 2))
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            original, rng=8
        )
        priors = [GaussianDensity(0.0, 8.0), GaussianDensity(0.0, 8.0)]
        result = UnivariateReconstructor(prior=priors).reconstruct(disguised)
        # Grid-based posterior mean with the true prior must track the
        # closed-form shrinkage closely.
        shrinkage = 64.0 / (64.0 + 25.0)
        expected = shrinkage * disguised.disguised
        np.testing.assert_allclose(
            result.estimate, expected, atol=0.4
        )

    def test_explicit_prior_count_checked(self, disguised_dataset):
        with pytest.raises(ValidationError, match="explicit priors"):
            UnivariateReconstructor(
                prior=[GaussianDensity(0.0, 1.0)]
            ).reconstruct(disguised_dataset)


class TestValidation:
    def test_unknown_prior_mode_rejected(self):
        with pytest.raises(ValidationError, match="prior must be"):
            UnivariateReconstructor(prior="parametric")

    def test_non_density_sequence_rejected(self):
        with pytest.raises(ValidationError):
            UnivariateReconstructor(prior=[1.0, 2.0])

    def test_grid_size_validated(self):
        with pytest.raises(ValidationError):
            UnivariateReconstructor(n_grid=4)

    def test_method_name(self, disguised_dataset):
        result = UnivariateReconstructor().reconstruct(disguised_dataset)
        assert result.method == "UDR"
