"""Unit tests for the benchmark subsystem behind ``repro bench``."""

from __future__ import annotations

import json

import pytest

from repro.bench.registry import (
    _REGISTRY,
    BenchmarkCase,
    iter_benchmarks,
    register_benchmark,
)
from repro.bench.runner import (
    SCHEMA,
    compare_to_baseline,
    load_payload,
    render_comparison,
    render_report,
    run_benchmarks,
    time_case,
    write_payload,
)
from repro.cli import main
from repro.exceptions import ValidationError


@pytest.fixture
def scratch_case():
    """Register a trivial benchmark; unregister on teardown."""
    calls = {"setup": 0, "run": 0}

    @register_benchmark(
        "test.scratch.smoke",
        group="test",
        tags=("smoke", "scratch"),
        params={"n": 1},
    )
    def _setup():
        calls["setup"] += 1

        def run():
            calls["run"] += 1

        return run

    yield calls
    _REGISTRY.pop("test.scratch.smoke", None)


class TestRegistry:
    def test_register_and_filter(self, scratch_case):
        names = [case.name for case in iter_benchmarks("scratch")]
        assert names == ["test.scratch.smoke"]

    def test_filter_matches_substring_and_tag(self, scratch_case):
        assert iter_benchmarks("test.scratch")  # name substring
        assert iter_benchmarks("scratch")  # exact tag
        assert not any(
            c.name == "test.scratch.smoke" for c in iter_benchmarks("nope")
        )

    def test_duplicate_name_rejected(self, scratch_case):
        with pytest.raises(ValidationError, match="already registered"):
            register_benchmark("test.scratch.smoke", group="test")(lambda: None)

    def test_case_matches(self):
        case = BenchmarkCase(
            name="a.b.c", group="g", setup=lambda: (lambda: None), tags=("t",)
        )
        assert case.matches("b.c")
        assert case.matches("t")
        assert not case.matches("z")


class TestTimeCase:
    def test_warmup_plus_repeats(self, scratch_case):
        case = _REGISTRY["test.scratch.smoke"]
        entry = time_case(case, repeat=2)
        assert scratch_case["setup"] == 1
        assert scratch_case["run"] == 3  # 1 warmup + 2 timed
        assert len(entry["seconds"]) == 2
        assert entry["seconds_min"] == min(entry["seconds"])
        assert entry["group"] == "test"
        assert entry["params"] == {"n": 1}

    def test_case_repeat_override(self):
        ran = []
        case = BenchmarkCase(
            name="t.override",
            group="test",
            setup=lambda: (lambda: ran.append(1)),
            repeat=1,
        )
        entry = time_case(case, repeat=5)
        assert len(entry["seconds"]) == 1  # case repeat wins

    def test_invalid_repeat(self, scratch_case):
        case = _REGISTRY["test.scratch.smoke"]
        with pytest.raises(ValidationError, match="repeat"):
            time_case(case, repeat=0)

    def test_record_extra_captures_final_run_payload(self):
        case = BenchmarkCase(
            name="t.extra",
            group="test",
            setup=lambda: (lambda: {"curve": [1, 2, 3]}),
            repeat=1,
            record_extra=True,
        )
        entry = time_case(case)
        assert entry["extra"] == {"curve": [1, 2, 3]}

    def test_record_extra_requires_dict_payload(self):
        case = BenchmarkCase(
            name="t.extra.bad",
            group="test",
            setup=lambda: (lambda: 42),
            repeat=1,
            record_extra=True,
        )
        with pytest.raises(ValidationError, match="record_extra"):
            time_case(case)

    def test_extra_omitted_by_default(self, scratch_case):
        entry = time_case(_REGISTRY["test.scratch.smoke"], repeat=1)
        assert "extra" not in entry


class TestRunBenchmarks:
    def test_payload_shape(self, scratch_case):
        payload = run_benchmarks(filter_token="scratch", repeat=1)
        assert payload["schema"] == SCHEMA
        assert payload["filter"] == "scratch"
        assert "test.scratch.smoke" in payload["benchmarks"]

    def test_no_match_raises(self):
        with pytest.raises(ValidationError, match="no benchmarks match"):
            run_benchmarks(filter_token="definitely-not-a-benchmark")

    def test_progress_hook(self, scratch_case):
        seen = []
        run_benchmarks(
            filter_token="scratch",
            repeat=1,
            progress=lambda case, entry: seen.append(case.name),
        )
        assert seen == ["test.scratch.smoke"]


class TestPayloadIO:
    def test_write_and_load_roundtrip(self, scratch_case, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # outside the repo: no mirror copy
        payload = run_benchmarks(filter_token="scratch", repeat=1)
        target = tmp_path / "BENCH_test.json"
        written = write_payload(payload, target)
        assert written == [target]
        loaded = load_payload(target)
        assert loaded["benchmarks"].keys() == payload["benchmarks"].keys()

    def test_write_mirrors_into_repo_results(
        self, scratch_case, tmp_path, monkeypatch
    ):
        utils = tmp_path / "benchmarks" / "_bench_utils.py"
        utils.parent.mkdir()
        utils.write_text(
            "import json, pathlib\n"
            "RESULTS_DIR = pathlib.Path(__file__).parent / 'results'\n"
            "def emit_json(name, payload):\n"
            "    RESULTS_DIR.mkdir(exist_ok=True)\n"
            "    (RESULTS_DIR / f'{name}.json').write_text("
            "json.dumps(payload))\n"
        )
        monkeypatch.chdir(tmp_path)
        payload = run_benchmarks(filter_token="scratch", repeat=1)
        written = write_payload(payload, tmp_path / "BENCH_mirror.json")
        assert len(written) == 2
        assert (tmp_path / "benchmarks/results/BENCH_mirror.json").is_file()

    def test_load_rejects_non_payload(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"not": "a payload"}))
        with pytest.raises(ValidationError, match="benchmarks"):
            load_payload(bogus)


class TestCompare:
    @staticmethod
    def _payload(**times):
        return {
            "schema": SCHEMA,
            "benchmarks": {
                name: {"seconds_min": t, "seconds_mean": t, "seconds": [t]}
                for name, t in times.items()
            },
        }

    def test_speedup_and_regression_flags(self):
        baseline = self._payload(a=1.0, b=1.0, c=1.0)
        current = self._payload(a=0.5, b=2.0, d=1.0)
        result = compare_to_baseline(current, baseline, regression_ratio=1.5)
        rows = {row["name"]: row for row in result["rows"]}
        assert rows["a"]["speedup"] == pytest.approx(2.0)
        assert rows["b"]["ratio"] == pytest.approx(2.0)
        assert result["regressions"] == ["b"]
        assert result["missing"] == ["d"]

    def test_render_helpers(self):
        baseline = self._payload(a=1.0)
        current = self._payload(a=0.25)
        comparison = compare_to_baseline(current, baseline)
        report = render_report(current)
        assert "a" in report and "0.2500" in report
        table = render_comparison(comparison)
        assert "4.00x" in table

    def test_render_empty_comparison(self):
        comparison = compare_to_baseline(self._payload(a=1.0), self._payload())
        assert "no overlapping" in render_comparison(comparison)


class TestBenchCLI:
    def test_list(self, capsys):
        assert main(["bench", "--list", "--filter", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "hotpath.em_recon.smoke" in out
        assert "pipeline.figure1.smoke" in out

    def test_run_single_benchmark_with_json(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "bench",
                "--filter",
                "hotpath.breach_metrics.smoke",
                "--repeat",
                "1",
                "--no-baseline",
                "--json",
                str(target),
            ]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert "hotpath.breach_metrics.smoke" in payload["benchmarks"]

    def test_unknown_filter_exits_2(self, capsys):
        assert main(["bench", "--filter", "no-such-bench"]) == 2

    def test_fail_on_regression(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        baseline = {
            "schema": SCHEMA,
            "benchmarks": {
                "hotpath.breach_metrics.smoke": {
                    "seconds_min": 1e-9,
                    "seconds_mean": 1e-9,
                    "seconds": [1e-9],
                }
            },
        }
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(baseline))
        code = main(
            [
                "bench",
                "--filter",
                "hotpath.breach_metrics.smoke",
                "--repeat",
                "1",
                "--baseline",
                str(base_path),
                "--fail-on-regression",
            ]
        )
        assert code == 1
