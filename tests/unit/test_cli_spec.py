"""Unit tests for the spec-driven CLI subcommands (run / list)."""

import json

import pytest

from repro.cli import build_parser, main


def write_spec(tmp_path, **overrides):
    payload = {
        "name": "cli-sweep",
        "dataset": {"kind": "synthetic", "spectrum": [40.0, 4.0, 4.0]},
        "scheme": {"kind": "additive", "std": 5.0},
        "attacks": {"UDR": {"kind": "udr"}, "BE-DR": {"kind": "be-dr"}},
        "params": {"n_records": 80},
        "grid": {"scheme.std": [2.0, 5.0]},
        "x_param": "scheme.std",
        "seed": 3,
    }
    payload.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return path


class TestParser:
    def test_run_subcommand(self):
        args = build_parser().parse_args(["run", "spec.json", "--jobs", "2"])
        assert args.experiment == "run"
        assert args.spec == "spec.json"
        assert args.jobs == 2

    def test_list_subcommand(self):
        args = build_parser().parse_args(["list", "attacks"])
        assert args.registry == "attacks"

    def test_list_rejects_unknown_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "warp-drives"])


class TestListCommand:
    @pytest.mark.parametrize(
        "registry,expected",
        [
            ("schemes", "additive"),
            ("attacks", "be-dr"),
            ("datasets", "census"),
        ],
    )
    def test_lists_registered_keys(self, capsys, registry, expected):
        assert main(["list", registry]) == 0
        out = capsys.readouterr().out
        assert expected in out


class TestRunCommand:
    def test_runs_spec_and_prints_table(self, capsys, tmp_path):
        path = write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out
        assert "UDR" in out and "BE-DR" in out

    def test_json_output_is_structured(self, capsys, tmp_path):
        path = write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "cli-sweep"
        assert set(payload["series"]) == {"UDR", "BE-DR"}
        assert payload["stats"]["jobs"] == 2

    def test_parallel_matches_serial(self, capsys, tmp_path):
        path = write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", str(path), "--no-cache", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_reused_across_runs(self, capsys, tmp_path):
        path = write_spec(tmp_path)
        cache_dir = tmp_path / "cache"
        argv = ["run", str(path), "--cache-dir", str(cache_dir), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["stats"]["cached"] == 0
        assert second["stats"]["cached"] == second["stats"]["jobs"]
        assert second["series"] == first["series"]

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_spec_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "task": "no-colon"}))
        assert main(["run", str(path)]) == 2
        assert "invalid spec" in capsys.readouterr().err

    def test_plot_flag_draws_chart(self, capsys, tmp_path):
        path = write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache", "--plot"]) == 0
        assert "+" in capsys.readouterr().out
