"""Unit tests for repro.stats.mvn.MultivariateNormal."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.mvn import MultivariateNormal


def _example():
    mean = np.array([1.0, -2.0, 0.5])
    cov = np.array(
        [
            [4.0, 1.0, 0.5],
            [1.0, 3.0, -0.2],
            [0.5, -0.2, 2.0],
        ]
    )
    return MultivariateNormal(mean, cov)


class TestConstruction:
    def test_properties(self):
        model = _example()
        assert model.dim == 3
        np.testing.assert_allclose(model.mean, [1.0, -2.0, 0.5])

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValidationError):
            MultivariateNormal([0.0, 0.0], np.eye(3))

    def test_standard_factory(self):
        model = MultivariateNormal.standard(4)
        np.testing.assert_allclose(model.covariance, np.eye(4))

    def test_fit_recovers_moments(self):
        truth = _example()
        samples = truth.sample(40000, rng=0)
        fitted = MultivariateNormal.fit(samples)
        np.testing.assert_allclose(fitted.mean, truth.mean, atol=0.06)
        np.testing.assert_allclose(
            fitted.covariance, truth.covariance, atol=0.15
        )

    def test_precision_is_inverse(self):
        model = _example()
        np.testing.assert_allclose(
            model.precision @ model.covariance, np.eye(3), atol=1e-9
        )


class TestDensity:
    def test_logpdf_matches_direct_formula(self):
        model = _example()
        point = np.array([0.0, 0.0, 0.0])
        cov = model.covariance
        centered = point - model.mean
        expected = (
            -0.5 * centered @ np.linalg.inv(cov) @ centered
            - 0.5 * np.log(np.linalg.det(cov))
            - 1.5 * np.log(2 * np.pi)
        )
        assert model.logpdf(point) == pytest.approx(expected)

    def test_pdf_batch_shape(self):
        model = _example()
        points = np.zeros((5, 3))
        assert model.pdf(points).shape == (5,)

    def test_pdf_maximal_at_mean(self):
        model = _example()
        at_mean = model.pdf(model.mean)
        rng = np.random.default_rng(0)
        for _ in range(20):
            other = model.mean + rng.standard_normal(3)
            assert model.pdf(other) <= at_mean

    def test_mahalanobis_zero_at_mean(self):
        model = _example()
        assert model.mahalanobis(model.mean) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValidationError):
            _example().logpdf(np.zeros(4))


class TestSampling:
    def test_sample_shape(self):
        assert _example().sample(10, rng=0).shape == (10, 3)

    def test_sample_moments(self):
        model = _example()
        samples = model.sample(60000, rng=1)
        np.testing.assert_allclose(samples.mean(axis=0), model.mean, atol=0.05)
        np.testing.assert_allclose(
            np.cov(samples, rowvar=False), model.covariance, atol=0.1
        )

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(
            _example().sample(5, rng=9), _example().sample(5, rng=9)
        )

    def test_rejects_zero_size(self):
        with pytest.raises(ValidationError):
            _example().sample(0)


class TestMarginalConditional:
    def test_marginal_selects_blocks(self):
        model = _example()
        marginal = model.marginal([0, 2])
        np.testing.assert_allclose(marginal.mean, [1.0, 0.5])
        np.testing.assert_allclose(
            marginal.covariance,
            [[4.0, 0.5], [0.5, 2.0]],
        )

    def test_conditional_reduces_variance(self):
        model = _example()
        conditional = model.condition([0], [3.0])
        assert conditional.dim == 2
        marginal = model.marginal([1, 2])
        assert np.all(
            np.diag(conditional.covariance) <= np.diag(marginal.covariance) + 1e-12
        )

    def test_conditional_mean_formula_bivariate(self):
        cov = np.array([[4.0, 2.0], [2.0, 9.0]])
        model = MultivariateNormal([0.0, 0.0], cov)
        conditional = model.condition([0], [2.0])
        # mu_{1|0} = rho * sigma1/sigma0 * x0 = (2/4) * 2 = 1
        assert conditional.mean[0] == pytest.approx(1.0)
        # var_{1|0} = 9 - 4/4 * ... = 9 - 2*2/4 = 8
        assert conditional.covariance[0, 0] == pytest.approx(8.0)

    def test_independent_coordinates_unaffected(self):
        model = MultivariateNormal([0.0, 5.0], np.diag([1.0, 2.0]))
        conditional = model.condition([0], [10.0])
        assert conditional.mean[0] == pytest.approx(5.0)
        assert conditional.covariance[0, 0] == pytest.approx(2.0)

    def test_conditioning_on_everything_rejected(self):
        with pytest.raises(ValidationError):
            _example().condition([0, 1, 2], [0.0, 0.0, 0.0])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValidationError):
            _example().condition([0, 0], [1.0, 1.0])

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValidationError):
            _example().marginal([5])

    def test_value_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            _example().condition([0, 1], [1.0])

    def test_conditional_agrees_with_sampling(self):
        model = _example()
        samples = model.sample(200000, rng=2)
        mask = np.abs(samples[:, 0] - 1.0) < 0.05
        empirical_mean = samples[mask][:, 1:].mean(axis=0)
        conditional = model.condition([0], [1.0])
        np.testing.assert_allclose(conditional.mean, empirical_mean, atol=0.1)
