"""Unit tests for SF (the Kargupta et al. baseline)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
    marchenko_pastur_bounds,
)


class TestMarchenkoPasturBounds:
    def test_known_values(self):
        lower, upper = marchenko_pastur_bounds(1.0, 400, 100)
        # sqrt(m/n) = 0.5 -> bounds (0.25, 2.25).
        assert lower == pytest.approx(0.25)
        assert upper == pytest.approx(2.25)

    def test_scales_with_variance(self):
        l1, u1 = marchenko_pastur_bounds(1.0, 1000, 100)
        l2, u2 = marchenko_pastur_bounds(4.0, 1000, 100)
        assert l2 == pytest.approx(4.0 * l1)
        assert u2 == pytest.approx(4.0 * u1)

    def test_bounds_tighten_with_more_samples(self):
        _, upper_small = marchenko_pastur_bounds(1.0, 200, 100)
        _, upper_large = marchenko_pastur_bounds(1.0, 20000, 100)
        assert upper_large < upper_small
        assert upper_large == pytest.approx(1.0, abs=0.2)

    def test_empirical_noise_eigenvalues_inside_bounds(self):
        rng = np.random.default_rng(0)
        n, m, sigma = 2000, 50, 3.0
        noise = rng.normal(0.0, sigma, size=(n, m))
        eigenvalues = np.linalg.eigvalsh(np.cov(noise, rowvar=False))
        lower, upper = marchenko_pastur_bounds(sigma**2, n, m)
        # Asymptotic bounds; allow a tiny finite-size overshoot.
        assert eigenvalues.max() < upper * 1.1
        assert eigenvalues.min() > lower * 0.9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            marchenko_pastur_bounds(-1.0, 10, 5)
        with pytest.raises(ValidationError):
            marchenko_pastur_bounds(1.0, 0, 5)


class TestSpectralFiltering:
    def test_identifies_signal_components(self, disguised_dataset):
        result = SpectralFilteringReconstructor().reconstruct(
            disguised_dataset
        )
        # The fixture has 3 strong components; SF should find roughly that.
        assert 3 <= result.details["n_signal"] <= 5

    def test_beats_ndr_on_correlated_data(self, disguised_dataset):
        original = disguised_dataset.original
        sf = root_mean_square_error(
            original,
            SpectralFilteringReconstructor().reconstruct(disguised_dataset),
        )
        ndr = root_mean_square_error(
            original,
            NoiseDistributionReconstructor().reconstruct(disguised_dataset),
        )
        assert sf < ndr

    def test_keeps_at_least_one_component(self):
        """Pure noise input must not produce an empty signal subspace."""
        rng = np.random.default_rng(1)
        pure_noise = rng.normal(0.0, 5.0, size=(500, 8))
        from repro.randomization.base import NoiseModel

        model = NoiseModel(
            covariance=25.0 * np.eye(8), mean=np.zeros(8)
        )
        result = SpectralFilteringReconstructor().reconstruct(
            pure_noise, model
        )
        assert result.details["n_signal"] == 1

    def test_bounds_in_details(self, disguised_dataset):
        result = SpectralFilteringReconstructor().reconstruct(
            disguised_dataset
        )
        lower, upper = result.details["noise_bounds"]
        n, m = disguised_dataset.disguised.shape
        expected = marchenko_pastur_bounds(25.0, n, m)
        assert (lower, upper) == pytest.approx(expected)

    def test_tolerance_raises_threshold(self, disguised_dataset):
        strict = SpectralFilteringReconstructor(tolerance=0.0).reconstruct(
            disguised_dataset
        )
        loose = SpectralFilteringReconstructor(tolerance=5.0).reconstruct(
            disguised_dataset
        )
        assert loose.details["n_signal"] <= strict.details["n_signal"]

    def test_needs_two_records(self):
        from repro.randomization.base import NoiseModel

        model = NoiseModel(covariance=np.eye(2), mean=np.zeros(2))
        with pytest.raises(ValidationError):
            SpectralFilteringReconstructor().reconstruct(
                np.zeros((1, 2)), model
            )

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValidationError):
            SpectralFilteringReconstructor(tolerance=-0.1)

    def test_method_name(self, disguised_dataset):
        result = SpectralFilteringReconstructor().reconstruct(
            disguised_dataset
        )
        assert result.method == "SF"
