"""Per-rule fixture tests: triggering, clean, and suppressed snippets.

Each rule gets (at least) three fixtures written into a temporary
package tree so scoped rules see a realistic dotted module name:

* a *triggering* snippet that must produce exactly the expected finding,
* a *clean* snippet exercising the sanctioned alternative, and
* the triggering snippet with an inline ``# repro: ignore[...]``, which
  must mark the finding suppressed (and therefore pass the check).
"""

import textwrap

from repro.analysis import run_check


def check_snippet(tmp_path, source, *, module="snippet", rules=None):
    """Write ``source`` at the package location ``module`` and check it."""
    parts = module.split(".")
    directory = tmp_path
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(source))
    return run_check([path], rules=rules)


def fired(report, rule):
    """Active (unsuppressed) findings of one rule."""
    return [f for f in report.active if f.rule == rule]


class TestGlobalRng:
    def test_np_random_module_call_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            values = np.random.rand(4)
            """,
        )
        (finding,) = fired(report, "global-rng")
        assert "np.random.rand" in finding.message
        assert finding.severity == "error"
        assert not report.ok

    def test_bad_from_import_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from numpy.random import normal

            values = normal(size=4)
            """,
        )
        assert fired(report, "global-rng")

    def test_stdlib_random_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import random

            value = random.random()
            """,
        )
        (finding,) = fired(report, "global-rng")
        assert "random.random" in finding.message

    def test_explicit_generator_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            rng = np.random.default_rng(np.random.SeedSequence(7))
            values = rng.random(4)
            """,
        )
        assert not fired(report, "global-rng")
        assert report.ok

    def test_suppression_covers_the_line(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            values = np.random.rand(4)  # repro: ignore[global-rng] legacy demo
            """,
        )
        assert not fired(report, "global-rng")
        assert len(report.suppressed) == 1
        assert report.ok


class TestWallClock:
    TRIGGER = """
    import time

    def kernel(x):
        return x + time.perf_counter()
    """

    def test_clock_in_scoped_module_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path, self.TRIGGER, module="repro.stats.snippet"
        )
        (finding,) = fired(report, "wall-clock")
        assert "time.perf_counter" in finding.message

    def test_from_import_and_datetime_trigger(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from datetime import datetime
            from time import monotonic

            def kernel():
                return monotonic(), datetime.now()
            """,
            module="repro.linalg.snippet",
        )
        assert len(fired(report, "wall-clock")) == 2

    def test_out_of_scope_module_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, self.TRIGGER, module="scripts.timer")
        assert not fired(report, "wall-clock")

    def test_clockless_kernel_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def kernel(x):
                return 2.0 * x
            """,
            module="repro.stats.snippet",
        )
        assert report.ok

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import time

            def kernel(x):
                start = time.perf_counter()  # repro: ignore[wall-clock] timing
                return x, start
            """,
            module="repro.stats.snippet",
        )
        assert not fired(report, "wall-clock")
        assert report.suppressed

    def test_exporter_module_in_scope(self, tmp_path):
        # The run-health modules carry kernel-grade clock discipline:
        # a direct time read in the exporter is a finding.
        report = check_snippet(
            tmp_path, self.TRIGGER, module="repro.telemetry.exporter"
        )
        assert fired(report, "wall-clock")

    def test_sampler_module_in_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from time import monotonic

            def sample():
                return monotonic()
            """,
            module="repro.telemetry.sampler",
        )
        assert fired(report, "wall-clock")

    def test_diff_and_history_modules_in_scope(self, tmp_path):
        for module in (
            "repro.telemetry.diff",
            "repro.telemetry.history",
        ):
            report = check_snippet(tmp_path, self.TRIGGER, module=module)
            assert fired(report, "wall-clock"), module

    def test_clock_shim_module_is_exempt(self, tmp_path):
        # The _clock shims are the sanctioned touch point: direct reads
        # there are the whole point and must not fire.
        report = check_snippet(
            tmp_path,
            """
            import time

            def wall_now():
                return time.time()
            """,
            module="repro.telemetry._clock",
        )
        assert not fired(report, "wall-clock")

    def test_runhealth_clean_via_shims(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry._clock import mono_now, wall_now

            def snapshot():
                return {"ts_unix": wall_now(), "mono": mono_now()}
            """,
            module="repro.telemetry.exporter",
        )
        assert not fired(report, "wall-clock")
        assert report.ok


class TestNdarrayEq:
    def test_frozen_dataclass_with_array_field_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            import numpy as np

            @dataclass(frozen=True)
            class Point:
                values: np.ndarray
            """,
        )
        (finding,) = fired(report, "ndarray-eq")
        assert "Point" in finding.message

    def test_eq_false_with_custom_eq_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            import numpy as np

            @dataclass(frozen=True, eq=False)
            class Point:
                values: np.ndarray

                def __eq__(self, other):
                    if not isinstance(other, Point):
                        return NotImplemented
                    return bool((self.values == other.values).all())
            """,
        )
        assert report.ok

    def test_compare_false_field_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from dataclasses import dataclass, field

            import numpy as np

            @dataclass(frozen=True)
            class Point:
                name: str
                values: np.ndarray = field(compare=False, repr=False)
            """,
        )
        assert report.ok

    def test_plain_fields_are_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Point:
                x: float
                y: float
            """,
        )
        assert report.ok

    def test_suppression_on_class_line(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            import numpy as np

            @dataclass(frozen=True)
            class Point:  # repro: ignore[ndarray-eq] prototype container
                values: np.ndarray
            """,
        )
        assert not fired(report, "ndarray-eq")
        assert report.suppressed


class TestTaskPickle:
    def test_module_level_lambda_in_tasks_module_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            double = lambda params, rng: {"x": 2 * params["x"]}
            """,
            module="repro.experiments.tasks",
        )
        assert fired(report, "task-pickle")

    def test_global_statement_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            _CACHE = {}

            def warm(params, rng):
                global _CACHE
                _CACHE = dict(params)
                return _CACHE
            """,
            module="repro.experiments.tasks",
        )
        assert fired(report, "task-pickle")

    def test_factory_returning_closure_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def make_task(scale):
                def task(params, rng):
                    return {"x": scale * params["x"]}
                return task
            """,
            module="repro.experiments.tasks",
        )
        assert fired(report, "task-pickle")

    def test_plain_module_level_task_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def double(params, rng):
                return {"x": 2 * params["x"]}
            """,
            module="repro.experiments.tasks",
        )
        assert report.ok

    def test_non_tasks_module_is_out_of_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            double = lambda params, rng: {"x": 2 * params["x"]}
            """,
            module="repro.experiments.helpers",
        )
        assert not fired(report, "task-pickle")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            double = lambda p, r: {}  # repro: ignore[task-pickle] serial only
            """,
            module="repro.experiments.tasks",
        )
        assert not fired(report, "task-pickle")
        assert report.suppressed


class TestMutableDefault:
    def test_list_literal_default_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def collect(values=[]):
                return values
            """,
        )
        (finding,) = fired(report, "mutable-default")
        assert "collect" in finding.message

    def test_bare_dict_call_and_kwonly_trigger(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def configure(options=dict(), *, extras=[]):
                return options, extras
            """,
        )
        assert len(fired(report, "mutable-default")) == 2

    def test_none_default_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def collect(values=None):
                return [] if values is None else values
            """,
        )
        assert report.ok

    def test_private_function_is_exempt(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def _collect(values=[]):
                return values
            """,
        )
        assert not fired(report, "mutable-default")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def collect(values=[]):  # repro: ignore[mutable-default] read-only
                return values
            """,
        )
        assert not fired(report, "mutable-default")
        assert report.suppressed


class TestFloatEq:
    def test_equality_against_float_literal_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def degenerate(x):
                return x == 0.5
            """,
        )
        (finding,) = fired(report, "float-eq")
        assert finding.severity == "warning"
        assert "0.5" in finding.message

    def test_negative_literal_and_noteq_trigger(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def check(x, y):
                return x != -1.0 or y == 2.5
            """,
        )
        assert len(fired(report, "float-eq")) == 2

    def test_tolerance_comparison_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def degenerate(x):
                return abs(x - 0.5) < 1e-12
            """,
        )
        assert report.ok

    def test_nan_idiom_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def is_nan(x):
                return x != x
            """,
        )
        assert report.ok

    def test_integer_equality_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def check(n):
                return n == 0
            """,
        )
        assert report.ok

    def test_test_modules_are_exempt(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def helper(x):
                assert x == 0.5
            """,
            module="test_exact",
        )
        assert not fired(report, "float-eq")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def degenerate(x):
                return x == 0.0  # repro: ignore[float-eq] exact guard
            """,
        )
        assert not fired(report, "float-eq")
        assert report.suppressed


class TestSpecSignature:
    def test_drifted_to_spec_and_bare_from_spec_trigger(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.registry import register_scheme

            @register_scheme("demo")
            class Demo:
                def to_spec(self, verbose):
                    return {"kind": "demo"}

                def from_spec(cls, spec):
                    return cls()
            """,
        )
        findings = fired(report, "spec-signature")
        assert len(findings) == 2
        assert any("to_spec" in f.message for f in findings)
        assert any("@classmethod" in f.message for f in findings)

    def test_from_spec_extra_required_arg_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.registry import register_attack

            @register_attack("demo")
            class Demo:
                def to_spec(self):
                    return {"kind": "demo"}

                @classmethod
                def from_spec(cls, spec, registry):
                    return cls()
            """,
        )
        (finding,) = fired(report, "spec-signature")
        assert "(cls, spec)" in finding.message

    def test_conforming_component_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.registry import register_dataset

            @register_dataset("demo")
            class Demo:
                def to_spec(self):
                    return {"kind": "demo"}

                @classmethod
                def from_spec(cls, spec):
                    return cls()
            """,
        )
        assert report.ok

    def test_unregistered_class_is_out_of_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            class Demo:
                def to_spec(self, verbose):
                    return {}
            """,
        )
        assert not fired(report, "spec-signature")

    def test_inherited_methods_are_not_flagged(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.registry import register_scheme

            @register_scheme("demo")
            class Demo(BaseScheme):
                pass
            """,
        )
        assert not fired(report, "spec-signature")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.registry import register_scheme

            @register_scheme("demo")
            class Demo:
                def to_spec(self, verbose):  # repro: ignore[spec-signature]
                    return {"kind": "demo"}
            """,
        )
        assert not fired(report, "spec-signature")
        assert report.suppressed


class TestBareLock:
    TRIGGER = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()

        def put(self, key, value):
            self._lock.acquire()
            self.data[key] = value
            self._lock.release()
    """

    def test_bare_acquire_in_scope_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path, self.TRIGGER, module="repro.telemetry.snippet"
        )
        (finding,) = fired(report, "bare-lock")
        assert ".acquire()" in finding.message

    def test_with_statement_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def put(self, key, value):
                    with self._lock:
                        self.data[key] = value
            """,
            module="repro.engine.snippet",
        )
        assert report.ok

    def test_out_of_scope_module_is_clean(self, tmp_path):
        report = check_snippet(tmp_path, self.TRIGGER, module="scripts.store")
        assert not fired(report, "bare-lock")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def try_put(self):
                    return self._lock.acquire(False)  # repro: ignore[bare-lock] try-lock
            """,
            module="repro.telemetry.snippet",
        )
        assert not fired(report, "bare-lock")
        assert report.suppressed


class TestShmLifecycle:
    TRIGGER = """
    from multiprocessing import shared_memory

    def publish(payload):
        segment = shared_memory.SharedMemory(create=True, size=len(payload))
        segment.buf[: len(payload)] = payload
        return segment.name
    """

    def test_unguarded_creation_triggers(self, tmp_path):
        report = check_snippet(tmp_path, self.TRIGGER)
        (finding,) = fired(report, "shm-lifecycle")
        assert "SharedMemory" in finding.message
        assert "/dev/shm" in finding.message
        assert finding.severity == "error"
        assert not report.ok

    def test_guarded_by_finally_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def probe(name):
                segment = None
                try:
                    segment = shared_memory.SharedMemory(name=name)
                    return bytes(segment.buf[:4])
                finally:
                    if segment is not None:
                        segment.close()
            """,
        )
        assert report.ok

    def test_guarded_by_handler_is_clean(self, tmp_path):
        # The dataplane shape: creation under an except that closes and
        # unlinks before re-raising, success path returns the segment.
        report = check_snippet(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def create(payload):
                segment = None
                try:
                    segment = shared_memory.SharedMemory(
                        create=True, size=len(payload)
                    )
                    segment.buf[: len(payload)] = payload
                    return segment
                except BaseException:
                    if segment is not None:
                        segment.close()
                        segment.unlink()
                    raise
            """,
        )
        assert report.ok

    def test_try_without_cleanup_still_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def attach(name):
                try:
                    return shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    return None
            """,
        )
        assert fired(report, "shm-lifecycle")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)  # repro: ignore[shm-lifecycle] caller owns close()
            """,
        )
        assert not fired(report, "shm-lifecycle")
        assert report.suppressed


class TestIterHotpath:
    MODULE = "repro.stats.snippet"

    def test_span_in_loop_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def fit(columns):
                for column in columns:
                    with trace.span("kernel.step"):
                        column.work()
            """,
            module=self.MODULE,
        )
        (finding,) = fired(report, "iter-hotpath")
        assert "trace.span()" in finding.message
        assert finding.severity == "error"
        assert not report.ok

    def test_count_in_while_loop_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def fit(budget):
                while budget > 0:
                    trace.count("kernel.sweeps")
                    budget -= 1
            """,
            module=self.MODULE,
        )
        (finding,) = fired(report, "iter-hotpath")
        assert "trace.count()" in finding.message

    def test_record_with_call_argument_triggers(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def fit(columns, tracker):
                for column in columns:
                    tracker.record(objective=float(column.max()))
            """,
            module=self.MODULE,
        )
        (finding,) = fired(report, "iter-hotpath")
        assert "record()" in finding.message
        assert "enabled" in finding.message

    def test_guarded_record_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def fit(columns, tracker):
                for column in columns:
                    if tracker.enabled:
                        tracker.record(objective=float(column.max()))
            """,
            module=self.MODULE,
        )
        assert not fired(report, "iter-hotpath")
        assert report.ok

    def test_simple_record_arguments_are_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def fit(columns, tracker):
                for column in columns:
                    objective = column.solve()
                    tracker.record(objective=objective, rejected=1)
            """,
            module=self.MODULE,
        )
        assert report.ok

    def test_early_exit_guard_is_sticky(self, tmp_path):
        # The map_gd-style shape: bail out of the iteration when tracing
        # is off, then instrument freely below the guard.
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def fit(columns):
                for column in columns:
                    if not trace.enabled():
                        column.work()
                        continue
                    with trace.span("kernel.column"):
                        column.work(trace.iterations("kernel"))
            """,
            module=self.MODULE,
        )
        assert report.ok

    def test_if_else_guard_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def fit(columns):
                for column in columns:
                    if not trace.enabled():
                        column.work()
                    else:
                        with trace.span("kernel.column"):
                            column.work(trace.iterations("kernel"))
            """,
            module=self.MODULE,
        )
        assert report.ok

    def test_facade_call_outside_loop_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def fit(columns):
                with trace.span("kernel.fit"):
                    tracker = trace.iterations("kernel")
                    for column in columns:
                        tracker.record(objective=column)
            """,
            module=self.MODULE,
        )
        assert report.ok

    def test_out_of_scope_module_is_skipped(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def drain(queue):
                for item in queue:
                    trace.count("engine.drained")
            """,
            module="repro.engine.snippet",
        )
        assert not fired(report, "iter-hotpath")

    def test_suppression(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            from repro.telemetry import trace

            def fit(columns):
                for column in columns:
                    trace.count("kernel.columns")  # repro: ignore[iter-hotpath] coarse counter, measured negligible
            """,
            module=self.MODULE,
        )
        assert not fired(report, "iter-hotpath")
        assert report.suppressed
