"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_matrix,
    check_positive_int,
    check_probability,
    check_square,
    check_symmetric,
    check_vector,
)


class TestCheckMatrix:
    def test_accepts_2d_list(self):
        result = check_matrix([[1, 2], [3, 4]])
        assert result.shape == (2, 2)
        assert result.dtype == np.float64

    def test_promotes_1d_when_allowed(self):
        result = check_matrix([1.0, 2.0, 3.0], allow_1d=True)
        assert result.shape == (3, 1)

    def test_rejects_1d_by_default(self):
        with pytest.raises(ShapeError):
            check_matrix([1.0, 2.0, 3.0])

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_matrix([[np.inf, 1.0]])

    def test_min_rows_enforced(self):
        with pytest.raises(ValidationError, match="rows"):
            check_matrix([[1.0, 2.0]], min_rows=2)

    def test_min_cols_enforced(self):
        with pytest.raises(ValidationError, match="columns"):
            check_matrix([[1.0], [2.0]], min_cols=2)

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="'payload'"):
            check_matrix([[np.nan]], "payload")


class TestCheckVector:
    def test_accepts_list(self):
        result = check_vector([1, 2, 3])
        assert result.shape == (3,)

    def test_promotes_scalar(self):
        assert check_vector(5.0).shape == (1,)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            check_vector([[1.0, 2.0]])

    def test_min_length(self):
        with pytest.raises(ValidationError, match="at least 2"):
            check_vector([1.0], min_length=2)


class TestCheckSquareAndSymmetric:
    def test_square_accepts(self):
        assert check_square(np.eye(3)).shape == (3, 3)

    def test_square_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            check_square(np.zeros((2, 3)))

    def test_symmetric_accepts_and_symmetrizes(self):
        matrix = np.array([[1.0, 2.0 + 1e-12], [2.0, 3.0]])
        result = check_symmetric(matrix)
        np.testing.assert_allclose(result, result.T)

    def test_symmetric_rejects_asymmetric(self):
        with pytest.raises(ValidationError, match="not symmetric"):
            check_symmetric([[1.0, 5.0], [0.0, 1.0]])


class TestScalarChecks:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "k") == 3

    def test_positive_int_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "k") == 4

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "k")

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(3.0, "k")

    def test_positive_int_respects_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, "k", minimum=2)

    def test_in_range_inclusive(self):
        assert check_in_range(0.0, "x", low=0.0, high=1.0) == 0.0

    def test_in_range_exclusive_low(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "x", low=0.0, inclusive_low=False)

    def test_in_range_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_in_range(float("nan"), "x")

    def test_in_range_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_in_range("abc", "x")

    def test_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")

    def test_check_finite_passes_through(self):
        array = np.array([1.0, 2.0])
        assert check_finite(array, "a") is array
