"""Unit tests for the component registries (repro.registry)."""

import pytest

from repro.exceptions import ValidationError
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.registry import (
    ATTACKS,
    DATASETS,
    SCHEMES,
    Registry,
    check_spec,
    component_to_spec,
)


class TestCatalog:
    def test_scheme_keys(self):
        assert SCHEMES.names() == ["additive", "correlated"]

    def test_attack_keys(self):
        assert ATTACKS.names() == [
            "be-dr",
            "conditional",
            "kalman",
            "ndr",
            "pca-dr",
            "sf",
            "udr",
            "wiener",
        ]

    def test_dataset_keys(self):
        assert DATASETS.names() == ["census", "copula", "synthetic", "var"]

    def test_contains(self):
        assert "additive" in SCHEMES
        assert "nope" not in SCHEMES

    def test_get_unknown_raises_with_catalog(self):
        with pytest.raises(ValidationError, match="registered"):
            ATTACKS.get("does-not-exist")

    def test_registered_classes_carry_spec_kind(self):
        assert AdditiveNoiseScheme.spec_kind == "additive"
        assert BayesEstimateReconstructor.spec_kind == "be-dr"


class TestCreate:
    def test_dispatches_on_kind(self):
        scheme = SCHEMES.create({"kind": "additive", "std": 3.0})
        assert isinstance(scheme, AdditiveNoiseScheme)
        assert scheme.std == 3.0

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError, match="must be a dict"):
            SCHEMES.create("additive")

    def test_missing_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            SCHEMES.create({"std": 3.0})

    def test_validate_surfaces_constructor_errors(self):
        with pytest.raises(ValidationError):
            SCHEMES.validate({"kind": "additive", "std": -1.0})


class TestRegisterDecorator:
    def test_duplicate_key_rejected(self):
        registry = Registry("thing")

        @registry.register("x")
        class One:
            def to_spec(self):
                return {"kind": "x"}

            @classmethod
            def from_spec(cls, spec):
                return cls()

        with pytest.raises(ValidationError, match="already registered"):

            @registry.register("x")
            class Two:
                def to_spec(self):
                    return {"kind": "x"}

                @classmethod
                def from_spec(cls, spec):
                    return cls()

    def test_missing_protocol_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ValidationError, match="from_spec"):

            @registry.register("y")
            class NoSpec:
                pass


class TestCheckSpec:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="stdd"):
            check_spec(
                {"kind": "additive", "stdd": 5.0}, "additive",
                required=("std",),
            )

    def test_missing_required_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            check_spec({"kind": "additive"}, "additive", required=("std",))

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="does not match"):
            check_spec({"kind": "uniform"}, "additive")


class TestComponentToSpec:
    def test_round_trip_helper(self):
        scheme = AdditiveNoiseScheme(std=2.0, family="uniform")
        spec = component_to_spec(scheme)
        assert spec == {"kind": "additive", "std": 2.0, "family": "uniform"}

    def test_unsupported_object(self):
        with pytest.raises(ValidationError, match="to_spec"):
            component_to_spec(object())


class TestLazyLoading:
    def test_failed_module_import_is_not_swallowed(self):
        registry = Registry("thing", ("definitely_not_a_module",))
        with pytest.raises(ModuleNotFoundError):
            registry.names()
        # Regression: the failure must surface again, not leave a
        # silently partial (empty) catalog.
        with pytest.raises(ModuleNotFoundError):
            registry.names()
