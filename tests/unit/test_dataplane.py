"""Unit tests for the shared-memory data plane."""

import glob

import numpy as np
import pytest

from repro.engine import dataplane
from repro.engine.dataplane import (
    SEGMENT_PREFIX,
    ArrayRef,
    DataPlane,
    activate,
    active_plane,
    params_ref_hashes,
    resolve_params,
    shard_bounds,
)
from repro.exceptions import DataPlaneError, ValidationError


def _segments_on_disk():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture()
def plane():
    with DataPlane() as p:
        yield p
    assert _segments_on_disk() == set()


@pytest.fixture()
def data():
    return np.random.default_rng(11).normal(size=(100, 3))


class TestArrayRef:
    def test_param_roundtrip(self, plane, data):
        ref = plane.publish(data)
        again = ArrayRef.from_param(ref.to_param())
        assert again == ref
        assert again.shape == (100, 3)

    def test_shard_roundtrip_keeps_bounds(self, plane, data):
        shard = plane.publish(data).shard(10, 40)
        again = ArrayRef.from_param(shard.to_param())
        assert (again.start, again.stop) == (10, 40)

    def test_param_is_json_safe(self, plane, data):
        import json

        json.dumps(plane.publish(data).shard(0, 5).to_param())

    def test_malformed_param_rejected(self):
        with pytest.raises(ValidationError, match="malformed array-ref"):
            ArrayRef.from_param({"__array_ref__": {"hash": "x"}})

    def test_shard_bounds_validated(self, plane, data):
        ref = plane.publish(data)
        with pytest.raises(ValidationError, match="out of bounds"):
            ref.shard(0, 101)
        with pytest.raises(ValidationError, match="out of bounds"):
            ref.shard(-1, 10)
        with pytest.raises(ValidationError, match="out of bounds"):
            ref.shard(50, 40)

    def test_nbytes_reports_full_array(self, plane, data):
        ref = plane.publish(data)
        assert ref.nbytes == data.nbytes
        assert ref.shard(0, 10).nbytes == data.nbytes

    def test_shard_bounds_helper(self):
        assert shard_bounds(10, 0, 10) == (0, 10)
        with pytest.raises(ValidationError):
            shard_bounds(10, 5, 11)


class TestPublish:
    def test_identical_content_dedupes(self, plane, data):
        first = plane.publish(data)
        second = plane.publish(data.copy())
        assert first == second
        assert plane.hashes() == [first.hash]

    def test_distinct_content_distinct_hash(self, plane, data):
        assert plane.publish(data).hash != plane.publish(data + 1.0).hash

    def test_snapshot_isolated_from_caller_mutation(self, plane, data):
        source = data.copy()
        ref = plane.publish(source)
        before = plane.get(ref).copy()
        source[:] = 0.0
        np.testing.assert_array_equal(plane.get(ref), before)

    def test_published_view_is_read_only(self, plane, data):
        view = plane.get(plane.publish(data))
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_rejects_scalars(self, plane):
        with pytest.raises(ValidationError, match="0-d"):
            plane.publish(np.float64(3.0))

    def test_closed_plane_rejects_publish(self, data):
        plane = DataPlane()
        plane.close()
        with pytest.raises(DataPlaneError, match="closed"):
            plane.publish(data)

    def test_get_unknown_ref(self, plane, data):
        stranger = DataPlane()
        ref = stranger.publish(data)
        stranger.close()
        with pytest.raises(DataPlaneError, match="not published"):
            plane.get(ref)

    def test_shard_resolution_slices_rows(self, plane, data):
        ref = plane.publish(data)
        np.testing.assert_array_equal(
            plane.get(ref.shard(10, 30)), data[10:30]
        )


class TestResolveParams:
    def test_refless_params_pass_through_unchanged(self, plane):
        params = {"x": 1, "nested": {"y": [1, 2]}}
        assert resolve_params(params) is params

    def test_refs_resolve_at_any_depth(self, plane, data):
        ref = plane.publish(data)
        with activate(plane):
            resolved = resolve_params(
                {
                    "top": ref.to_param(),
                    "nested": {"inner": ref.shard(0, 5).to_param()},
                    "listed": [ref.shard(5, 9).to_param(), 7],
                }
            )
        np.testing.assert_array_equal(resolved["top"], data)
        np.testing.assert_array_equal(resolved["nested"]["inner"], data[:5])
        np.testing.assert_array_equal(resolved["listed"][0], data[5:9])
        assert resolved["listed"][1] == 7

    def test_original_params_not_mutated(self, plane, data):
        ref = plane.publish(data)
        params = {"data": ref.to_param()}
        with activate(plane):
            resolve_params(params)
        assert params == {"data": ref.to_param()}

    def test_unresolvable_ref_raises(self, plane, data):
        ref = plane.publish(data)
        assert active_plane() is None
        with pytest.raises(DataPlaneError, match="not available"):
            resolve_params({"data": ref.to_param()})

    def test_params_ref_hashes(self, plane, data):
        ref = plane.publish(data)
        other = plane.publish(data * 2.0)
        found = params_ref_hashes(
            {"a": ref.to_param(), "b": [{"c": other.to_param()}], "d": 1}
        )
        assert found == {ref.hash, other.hash}
        assert params_ref_hashes({"x": 1}) == set()


class TestActivation:
    def test_activation_nests_and_restores(self, data):
        with DataPlane() as outer, DataPlane() as inner:
            assert active_plane() is None
            with activate(outer):
                assert active_plane() is outer
                with activate(inner):
                    assert active_plane() is inner
                assert active_plane() is outer
            assert active_plane() is None


class TestSegments:
    def test_export_creates_and_release_unlinks(self, plane, data):
        ref = plane.publish(data)
        before = _segments_on_disk()
        exported = plane.export_segments()
        on_disk = _segments_on_disk() - before
        assert len(on_disk) == 1
        name, shape, dtype = exported[ref.hash]
        assert f"/dev/shm/{name}" in on_disk
        assert shape == data.shape
        assert plane.bytes_resident == data.nbytes
        plane.release_segments()
        assert _segments_on_disk() == before
        assert plane.bytes_resident == 0

    def test_export_is_idempotent(self, plane, data):
        plane.publish(data)
        first = plane.export_segments()
        second = plane.export_segments()
        assert first == second
        plane.release_segments()

    def test_release_is_idempotent(self, plane, data):
        plane.publish(data)
        plane.export_segments()
        plane.release_segments()
        plane.release_segments()

    def test_selective_export_and_release(self, plane, data):
        ref_a = plane.publish(data)
        ref_b = plane.publish(data * 3.0)
        exported = plane.export_segments([ref_a.hash])
        assert set(exported) == {ref_a.hash}
        both = plane.export_segments([ref_a.hash, ref_b.hash])
        assert set(both) == {ref_a.hash, ref_b.hash}
        plane.release_segments([ref_a.hash])
        assert plane.bytes_resident == data.nbytes
        plane.release_segments([ref_b.hash])
        assert plane.bytes_resident == 0

    def test_close_releases_everything(self, data):
        plane = DataPlane()
        plane.publish(data)
        before = _segments_on_disk()
        plane.export_segments()
        plane.close()
        assert _segments_on_disk() == before
        plane.close()  # idempotent

    def test_export_on_closed_plane_rejected(self, data):
        plane = DataPlane()
        plane.close()
        with pytest.raises(DataPlaneError, match="closed"):
            plane.export_segments()

    def test_segment_content_matches_published(self, plane, data):
        from multiprocessing import shared_memory

        ref = plane.publish(data)
        exported = plane.export_segments()
        name, shape, dtype = exported[ref.hash]
        segment = shared_memory.SharedMemory(name=name)  # repro: ignore[shm-lifecycle] test attach; closed below, parent plane unlinks
        try:
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            np.testing.assert_array_equal(view, data)
        finally:
            segment.close()
        plane.release_segments()


class TestWorkerAttachment:
    """Exercise the worker-side attach path inside this process."""

    @pytest.fixture()
    def worker_state(self):
        yield
        dataplane._close_worker_attachments()
        dataplane._WORKER_SEGMENT_INFO.clear()
        dataplane._clear_worker_arrays()

    def test_attach_resolves_zero_copy_shards(self, plane, data, worker_state):
        ref = plane.publish(data)
        exported = plane.export_segments()
        dataplane._init_worker_segments(exported)
        resolved = dataplane.resolve_ref(ref.shard(10, 20))
        np.testing.assert_array_equal(resolved, data[10:20])
        assert not resolved.flags.writeable
        # Memoized: the same segment object backs a second resolve.
        again = dataplane.resolve_ref(ref)
        assert again.base is resolved.base
        dataplane._close_worker_attachments()
        dataplane._WORKER_SEGMENT_INFO.clear()
        plane.release_segments()

    def test_attach_missing_segment_raises(self, plane, worker_state):
        dataplane._init_worker_segments(
            {"deadbeef" * 8: ("repro-dp-gone", (4,), "<f8")}
        )
        ref = ArrayRef(hash="deadbeef" * 8, shape=(4,), dtype="<f8")
        with pytest.raises(DataPlaneError, match="cannot attach"):
            dataplane.resolve_ref(ref)

    def test_pickle_transport_arrays(self, plane, data, worker_state):
        ref = plane.publish(data)
        dataplane._load_worker_arrays({ref.hash: data})
        np.testing.assert_array_equal(
            dataplane.resolve_ref(ref.shard(0, 7)), data[:7]
        )
        dataplane._clear_worker_arrays()
        with pytest.raises(DataPlaneError, match="not available"):
            dataplane.resolve_ref(ref)
