"""Unit tests for repro.stats.moments."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.moments import standardize, weighted_mean_and_variance


class TestStandardize:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(100, 4))
        standardized, means, stds = standardize(data)
        np.testing.assert_allclose(
            standardized * stds + means, data, atol=1e-12
        )

    def test_result_has_unit_moments(self):
        rng = np.random.default_rng(1)
        data = rng.normal(-2.0, 7.0, size=(500, 3))
        standardized, _, _ = standardize(data)
        np.testing.assert_allclose(
            standardized.mean(axis=0), np.zeros(3), atol=1e-12
        )
        np.testing.assert_allclose(
            standardized.std(axis=0, ddof=1), np.ones(3), atol=1e-12
        )

    def test_constant_column_rejected(self):
        data = np.column_stack([np.arange(10.0), np.ones(10)])
        with pytest.raises(ValidationError, match="constant"):
            standardize(data)


class TestWeightedMeanAndVariance:
    def test_uniform_weights(self):
        mean, variance = weighted_mean_and_variance(
            [1.0, 2.0, 3.0], [1.0, 1.0, 1.0]
        )
        assert mean == pytest.approx(2.0)
        assert variance == pytest.approx(2.0 / 3.0)

    def test_point_mass(self):
        mean, variance = weighted_mean_and_variance(
            [1.0, 2.0, 3.0], [0.0, 1.0, 0.0]
        )
        assert mean == 2.0
        assert variance == 0.0

    def test_unnormalized_weights_ok(self):
        a = weighted_mean_and_variance([0.0, 10.0], [1.0, 3.0])
        b = weighted_mean_and_variance([0.0, 10.0], [0.25, 0.75])
        assert a == pytest.approx(b)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            weighted_mean_and_variance([1.0, 2.0], [1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError):
            weighted_mean_and_variance([1.0, 2.0], [1.0, -1.0])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValidationError):
            weighted_mean_and_variance([1.0, 2.0], [0.0, 0.0])
