"""Unit tests for repro.reconstruction.base."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor


def _model(m=3):
    return NoiseModel(covariance=np.eye(m), mean=np.zeros(m))


class TestReconstructionResult:
    def test_shape_properties(self):
        result = ReconstructionResult(
            estimate=np.zeros((4, 2)), method="X"
        )
        assert result.n_records == 4
        assert result.n_attributes == 2

    def test_rejects_empty_method(self):
        with pytest.raises(ValidationError):
            ReconstructionResult(estimate=np.zeros((2, 2)), method="")

    def test_rejects_non_matrix(self):
        with pytest.raises(ValidationError):
            ReconstructionResult(estimate=np.zeros(3), method="X")

    def test_details_default_empty(self):
        result = ReconstructionResult(estimate=np.zeros((1, 1)), method="X")
        assert result.details == {}


class TestReconstructorDispatch:
    def test_accepts_disguised_dataset(self, disguised_dataset):
        result = NoiseDistributionReconstructor().reconstruct(
            disguised_dataset
        )
        assert result.estimate.shape == disguised_dataset.disguised.shape

    def test_accepts_raw_matrix_with_model(self):
        matrix = np.random.default_rng(0).normal(size=(10, 3))
        result = NoiseDistributionReconstructor().reconstruct(
            matrix, _model()
        )
        np.testing.assert_array_equal(result.estimate, matrix)

    def test_rejects_matrix_without_model(self):
        with pytest.raises(ValidationError, match="noise_model is required"):
            NoiseDistributionReconstructor().reconstruct(np.zeros((4, 3)))

    def test_rejects_dataset_plus_model(self, disguised_dataset):
        with pytest.raises(ValidationError, match="not both"):
            NoiseDistributionReconstructor().reconstruct(
                disguised_dataset, _model(disguised_dataset.n_attributes)
            )

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValidationError, match="covers"):
            NoiseDistributionReconstructor().reconstruct(
                np.zeros((4, 3)), _model(2)
            )

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Reconstructor()
