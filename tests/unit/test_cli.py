"""Unit tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.experiment == "figure1"
        assert args.records == 2000
        assert args.trials == 1
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["figure3", "--records", "500", "--trials", "2", "--seed", "9"]
        )
        assert args.records == 500
        assert args.trials == 2
        assert args.seed == 9

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["figure1", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"

    def test_theorem52_subcommand(self):
        args = build_parser().parse_args(["theorem52"])
        assert args.experiment == "theorem52"
        assert args.jobs == 1

    def test_ablation_subcommands_exist(self):
        for name in (
            "ablation-selection",
            "ablation-covariance",
            "ablation-samplesize",
            "ablation-utility",
            "ablation-marginals",
        ):
            args = build_parser().parse_args([name])
            assert args.experiment == name
            assert args.no_cache is False

    def test_plot_flag(self):
        args = build_parser().parse_args(["figure1", "--plot"])
        assert args.plot is True

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])


class TestMain:
    def test_theorem52_prints_table(self, capsys):
        assert main(["theorem52", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "empirical" in out and "analytic" in out

    def test_figure1_small_run(self, capsys):
        code = main(
            ["figure1", "--records", "200", "--seed", "1", "--no-cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BE-DR" in out and "UDR" in out
        assert "number of attributes" in out

    def test_plot_flag_draws_chart(self, capsys):
        code = main(
            ["figure1", "--records", "200", "--seed", "1", "--no-cache",
             "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_parallel_matches_serial(self, capsys, tmp_path):
        argv = ["figure1", "--records", "200", "--seed", "1"]
        assert main(argv + ["--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--no-cache", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_cache_dir_populated_and_reused(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = [
            "figure1", "--records", "200", "--seed", "1",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        entries = list(cache_dir.glob("??/*.json"))
        assert len(entries) == 11  # one job per sweep point

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert second == first
        assert set(cache_dir.glob("??/*.json")) == set(entries)
