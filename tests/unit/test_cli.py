"""Unit tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.experiment == "figure1"
        assert args.records == 2000
        assert args.trials == 1

    def test_overrides(self):
        args = build_parser().parse_args(
            ["figure3", "--records", "500", "--trials", "2", "--seed", "9"]
        )
        assert args.records == 500
        assert args.trials == 2
        assert args.seed == 9

    def test_theorem52_subcommand(self):
        args = build_parser().parse_args(["theorem52"])
        assert args.experiment == "theorem52"

    def test_ablation_subcommands_exist(self):
        for name in (
            "ablation-selection",
            "ablation-covariance",
            "ablation-samplesize",
            "ablation-utility",
            "ablation-marginals",
        ):
            args = build_parser().parse_args([name])
            assert args.experiment == name

    def test_plot_flag(self):
        args = build_parser().parse_args(["figure1", "--plot"])
        assert args.plot is True

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])


class TestMain:
    def test_theorem52_prints_table(self, capsys):
        assert main(["theorem52"]) == 0
        out = capsys.readouterr().out
        assert "empirical" in out and "analytic" in out

    def test_figure1_small_run(self, capsys):
        code = main(
            ["figure1", "--records", "200", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BE-DR" in out and "UDR" in out
        assert "number of attributes" in out

    def test_plot_flag_draws_chart(self, capsys):
        code = main(
            ["figure1", "--records", "200", "--seed", "1", "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend:" in out
