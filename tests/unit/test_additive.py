"""Unit tests for repro.randomization.additive.AdditiveNoiseScheme."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.randomization.additive import AdditiveNoiseScheme
from repro.stats.density import GaussianDensity, UniformDensity


class TestConstruction:
    def test_properties(self):
        scheme = AdditiveNoiseScheme(std=5.0)
        assert scheme.std == 5.0
        assert scheme.variance == 25.0
        assert scheme.family == "gaussian"

    def test_rejects_zero_std(self):
        with pytest.raises(ValidationError):
            AdditiveNoiseScheme(std=0.0)

    def test_rejects_unknown_family(self):
        with pytest.raises(ValidationError, match="family"):
            AdditiveNoiseScheme(std=1.0, family="cauchy")


class TestNoiseModel:
    def test_isotropic_covariance(self):
        model = AdditiveNoiseScheme(std=3.0).noise_model(4)
        np.testing.assert_allclose(model.covariance, 9.0 * np.eye(4))
        np.testing.assert_allclose(model.mean, np.zeros(4))
        assert model.is_isotropic

    def test_rejects_bad_attribute_count(self):
        with pytest.raises(ValidationError):
            AdditiveNoiseScheme(std=1.0).noise_model(0)


class TestSampling:
    def test_gaussian_moments(self):
        noise = AdditiveNoiseScheme(std=2.0).sample_noise((50000, 3), rng=0)
        assert noise.mean() == pytest.approx(0.0, abs=0.03)
        assert noise.std() == pytest.approx(2.0, abs=0.03)

    def test_uniform_moments_and_range(self):
        scheme = AdditiveNoiseScheme(std=2.0, family="uniform")
        noise = scheme.sample_noise((50000, 2), rng=1)
        halfwidth = 2.0 * np.sqrt(3.0)
        assert noise.min() >= -halfwidth and noise.max() <= halfwidth
        assert noise.std() == pytest.approx(2.0, abs=0.03)

    def test_rejects_empty_shape(self):
        with pytest.raises(ValidationError):
            AdditiveNoiseScheme(std=1.0).sample_noise((0, 3))


class TestMarginalDensity:
    def test_gaussian_density(self):
        density = AdditiveNoiseScheme(std=4.0).marginal_density()
        assert isinstance(density, GaussianDensity)
        assert density.variance == pytest.approx(16.0)
        assert density.mean == 0.0

    def test_uniform_density_matches_variance(self):
        density = AdditiveNoiseScheme(std=4.0, family="uniform").marginal_density()
        assert isinstance(density, UniformDensity)
        assert density.variance == pytest.approx(16.0)


class TestDisguise:
    def test_roundtrip_consistency(self):
        rng = np.random.default_rng(0)
        original = rng.normal(0.0, 10.0, size=(100, 4))
        dataset = AdditiveNoiseScheme(std=5.0).disguise(original, rng=1)
        np.testing.assert_array_equal(dataset.original, original)
        np.testing.assert_allclose(
            dataset.disguised - dataset.original, dataset.noise
        )

    def test_noise_statistics(self):
        original = np.zeros((20000, 5))
        dataset = AdditiveNoiseScheme(std=5.0).disguise(original, rng=2)
        assert dataset.noise.std() == pytest.approx(5.0, abs=0.06)

    def test_noise_independent_across_attributes(self):
        original = np.zeros((30000, 4))
        dataset = AdditiveNoiseScheme(std=5.0).disguise(original, rng=3)
        corr = np.corrcoef(dataset.noise, rowvar=False)
        off = corr[~np.eye(4, dtype=bool)]
        assert np.abs(off).max() < 0.03

    def test_deterministic_with_seed(self):
        original = np.zeros((10, 2))
        scheme = AdditiveNoiseScheme(std=1.0)
        a = scheme.disguise(original, rng=7)
        b = scheme.disguise(original, rng=7)
        np.testing.assert_array_equal(a.disguised, b.disguised)
