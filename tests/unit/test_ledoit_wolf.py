"""Unit tests for the Ledoit-Wolf shrinkage covariance estimator."""

import numpy as np
import pytest

from repro.data.covariance_builder import CovarianceModel
from repro.data.spectra import decaying_spectrum
from repro.exceptions import ValidationError
from repro.linalg.covariance import (
    covariance_from_disguised,
    ledoit_wolf_covariance,
    sample_covariance,
)
from repro.linalg.psd import is_positive_semidefinite
from repro.stats.mvn import MultivariateNormal


def _draw(n, m=10, seed=0):
    model = CovarianceModel.from_spectrum(
        decaying_spectrum(m, decay=0.8, total_variance=10.0 * m), rng=seed
    )
    dist = MultivariateNormal(np.zeros(m), model.matrix)
    return dist.sample(n, rng=seed + 1), model.matrix


class TestLedoitWolf:
    def test_shrinkage_in_unit_interval(self):
        data, _ = _draw(50)
        _, shrinkage = ledoit_wolf_covariance(data)
        assert 0.0 <= shrinkage <= 1.0

    def test_result_is_psd(self):
        data, _ = _draw(15)  # fewer rows than a well-determined estimate
        estimate, _ = ledoit_wolf_covariance(data)
        assert is_positive_semidefinite(estimate)

    def test_shrinkage_vanishes_with_large_n(self):
        small_data, _ = _draw(30, seed=2)
        large_data, _ = _draw(20000, seed=2)
        _, shrink_small = ledoit_wolf_covariance(small_data)
        _, shrink_large = ledoit_wolf_covariance(large_data)
        assert shrink_large < shrink_small
        assert shrink_large < 0.02

    def test_converges_to_sample_covariance(self):
        data, _ = _draw(20000, seed=3)
        estimate, _ = ledoit_wolf_covariance(data)
        np.testing.assert_allclose(
            estimate, sample_covariance(data), rtol=0.02, atol=0.05
        )

    def test_beats_sample_estimate_at_small_n(self):
        """Frobenius risk: shrinkage wins when n is small vs m."""
        wins = 0
        for seed in range(10):
            data, truth = _draw(18, m=12, seed=seed)
            lw, _ = ledoit_wolf_covariance(data)
            raw = sample_covariance(data)
            if np.linalg.norm(lw - truth) < np.linalg.norm(raw - truth):
                wins += 1
        assert wins >= 8

    def test_spherical_data_fully_shrunk(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((40, 8))
        estimate, shrinkage = ledoit_wolf_covariance(data)
        # Identity-covariance data: heavy shrinkage toward mu * I.
        assert shrinkage > 0.3
        off = estimate - np.diag(np.diag(estimate))
        assert np.abs(off).max() < np.abs(np.diag(estimate)).max()

    def test_needs_two_rows(self):
        with pytest.raises(ValidationError):
            ledoit_wolf_covariance(np.ones((1, 3)))


class TestEstimatorOption:
    def test_covariance_from_disguised_accepts_both(self):
        data, _ = _draw(100, seed=5)
        disguised = data + np.random.default_rng(6).normal(
            0.0, 2.0, size=data.shape
        )
        for estimator in ("sample", "ledoit-wolf"):
            estimate = covariance_from_disguised(
                disguised, 4.0, estimator=estimator
            )
            assert estimate.shape == (10, 10)

    def test_unknown_estimator_rejected(self):
        data, _ = _draw(100, seed=7)
        with pytest.raises(ValidationError, match="estimator"):
            covariance_from_disguised(data, 1.0, estimator="oas")

    def test_attack_constructor_validates_estimator(self):
        from repro.reconstruction.bedr import BayesEstimateReconstructor
        from repro.reconstruction.pca_dr import PCAReconstructor

        with pytest.raises(ValidationError):
            BayesEstimateReconstructor(covariance_estimator="bad")
        with pytest.raises(ValidationError):
            PCAReconstructor(covariance_estimator="bad")

    def test_shrinkage_helps_bedr_on_smooth_spectrum(self):
        """The A7 finding: LW wins at small n when the spectrum decays
        smoothly (no clean spikes for clipping to exploit)."""
        from repro.data.synthetic import generate_dataset
        from repro.metrics.error import root_mean_square_error
        from repro.randomization.additive import AdditiveNoiseScheme
        from repro.reconstruction.bedr import BayesEstimateReconstructor

        gains = []
        for seed in range(4):
            dataset = generate_dataset(
                spectrum=decaying_spectrum(
                    40, decay=0.93, total_variance=4000.0
                ),
                n_records=45,
                rng=seed,
            )
            disguised = AdditiveNoiseScheme(std=5.0).disguise(
                dataset.values, rng=seed + 10
            )
            rmse = {}
            for estimator in ("sample", "ledoit-wolf"):
                attack = BayesEstimateReconstructor(
                    covariance_estimator=estimator
                )
                rmse[estimator] = root_mean_square_error(
                    dataset.values, attack.reconstruct(disguised)
                )
            gains.append(rmse["sample"] - rmse["ledoit-wolf"])
        assert np.mean(gains) > 0.0
