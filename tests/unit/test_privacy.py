"""Unit tests for repro.metrics.privacy."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.privacy import (
    interval_privacy,
    mutual_information_privacy,
    privacy_gain,
)


class TestIntervalPrivacy:
    def test_perfect_reconstruction_gives_zero_width(self):
        data = np.arange(20.0).reshape(10, 2)
        widths = interval_privacy(data, data)
        np.testing.assert_allclose(widths, [0.0, 0.0])

    def test_gaussian_residual_width(self):
        rng = np.random.default_rng(0)
        original = np.zeros((100000, 1))
        estimate = rng.normal(0.0, 2.0, size=(100000, 1))
        width = interval_privacy(original, estimate, confidence=0.95)[0]
        # 95% quantile of 2|e| with e ~ N(0,2): 2 * 2 * 1.96.
        assert width == pytest.approx(2 * 2 * 1.96, rel=0.03)

    def test_higher_confidence_wider_interval(self):
        rng = np.random.default_rng(1)
        original = np.zeros((5000, 1))
        estimate = rng.normal(0.0, 1.0, size=(5000, 1))
        narrow = interval_privacy(original, estimate, confidence=0.5)[0]
        wide = interval_privacy(original, estimate, confidence=0.99)[0]
        assert wide > narrow

    def test_per_attribute_output(self):
        rng = np.random.default_rng(2)
        original = np.zeros((1000, 3))
        estimate = original + rng.normal(
            0.0, [0.5, 1.0, 2.0], size=(1000, 3)
        )
        widths = interval_privacy(original, estimate)
        assert widths[0] < widths[1] < widths[2]

    def test_confidence_bounds_checked(self):
        with pytest.raises(ValidationError):
            interval_privacy(np.zeros((2, 1)), np.zeros((2, 1)),
                             confidence=1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            interval_privacy(np.zeros((2, 1)), np.zeros((3, 1)))


class TestMutualInformationPrivacy:
    def test_no_information_gain_is_zero(self):
        assert mutual_information_privacy(4.0, 4.0) == pytest.approx(0.0)

    def test_worse_than_prior_clamped_to_zero(self):
        assert mutual_information_privacy(4.0, 9.0) == 0.0

    def test_perfect_reconstruction_approaches_one(self):
        assert mutual_information_privacy(4.0, 1e-12) == pytest.approx(
            1.0, abs=1e-5
        )

    def test_known_value(self):
        # residual var = var/4 -> loss = 1 - sqrt(1/4) = 0.5.
        assert mutual_information_privacy(4.0, 1.0) == pytest.approx(0.5)

    def test_rejects_nonpositive_variances(self):
        with pytest.raises(ValidationError):
            mutual_information_privacy(0.0, 1.0)
        with pytest.raises(ValidationError):
            mutual_information_privacy(1.0, 0.0)


class TestPrivacyGain:
    def test_positive_when_defense_helps(self):
        original = np.zeros((100, 2))
        baseline = original + 1.0  # rmse 1
        improved = original + 1.5  # rmse 1.5
        assert privacy_gain(original, baseline, improved) == pytest.approx(
            0.5
        )

    def test_zero_when_equal(self):
        original = np.zeros((10, 1))
        estimate = original + 2.0
        assert privacy_gain(original, estimate, estimate.copy()) == 0.0

    def test_negative_when_defense_backfires(self):
        original = np.zeros((10, 1))
        assert privacy_gain(original, original + 2.0, original + 1.0) < 0.0

    def test_exact_baseline_rejected(self):
        original = np.zeros((10, 1))
        with pytest.raises(ValidationError, match="exact"):
            privacy_gain(original, original.copy(), original + 1.0)
