"""The old import paths keep working through deprecation shims."""

import warnings

import pytest


class TestExperimentsConfigShim:
    def test_old_imports_warn_and_resolve(self):
        with pytest.warns(DeprecationWarning, match="repro.api.config"):
            from repro.experiments.config import SweepConfig  # noqa: F401

    def test_shim_returns_the_same_objects(self):
        from repro.api import config as new_config

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.experiments import config as old_config

            assert old_config.SweepConfig is new_config.SweepConfig
            assert old_config.ExperimentSeries is new_config.ExperimentSeries
            assert (
                old_config.DEFAULT_NOISE_STD is new_config.DEFAULT_NOISE_STD
            )

    def test_every_advertised_name_is_reachable(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.experiments import config as old_config

            for name in old_config.__all__:
                assert getattr(old_config, name) is not None

    def test_unknown_attribute_still_raises(self):
        from repro.experiments import config as old_config

        with pytest.raises(AttributeError):
            old_config.not_a_thing

    def test_experiments_package_reexports_without_warning(self):
        # The package-level names moved to the new import internally, so
        # `from repro.experiments import SweepConfig` is warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.experiments import ExperimentSeries, SweepConfig  # noqa: F401

    def test_top_level_api_attribute(self):
        import repro

        assert repro.api.SweepConfig is not None
