"""Unit tests for the partial-value-disclosure attack."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.error import per_attribute_rmse, root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.partial_disclosure import (
    ConditionalDisclosureReconstructor,
)

from tests.conftest import NOISE_STD


def _leak(dataset, indices):
    return np.asarray(indices), dataset.values[:, np.asarray(indices)]


class TestConditionalDisclosure:
    def test_known_columns_reproduced_exactly(self, small_dataset):
        indices, values = _leak(small_dataset, [0, 5])
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            small_dataset.values, rng=0
        )
        attack = ConditionalDisclosureReconstructor(indices, values)
        result = attack.reconstruct(disguised)
        np.testing.assert_array_equal(result.estimate[:, [0, 5]], values)

    def test_leak_improves_over_plain_bedr(self, small_dataset):
        """Correlated leaked columns sharpen the hidden-column estimates."""
        indices, values = _leak(small_dataset, [0, 1, 2])
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            small_dataset.values, rng=1
        )
        hidden = np.setdiff1d(
            np.arange(small_dataset.n_attributes), indices
        )
        plain = BayesEstimateReconstructor().reconstruct(disguised)
        leaky = ConditionalDisclosureReconstructor(
            indices, values
        ).reconstruct(disguised)
        plain_rmse = per_attribute_rmse(small_dataset.values, plain)[hidden]
        leaky_rmse = per_attribute_rmse(small_dataset.values, leaky)[hidden]
        assert leaky_rmse.mean() < plain_rmse.mean()

    def test_all_columns_leaked_is_exact(self, small_dataset):
        m = small_dataset.n_attributes
        indices, values = _leak(small_dataset, list(range(m)))
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            small_dataset.values, rng=2
        )
        result = ConditionalDisclosureReconstructor(
            indices, values
        ).reconstruct(disguised)
        np.testing.assert_array_equal(result.estimate, small_dataset.values)
        assert result.details["n_hidden"] == 0

    def test_correlated_noise_conditioning_helps(self, small_dataset):
        """Under correlated noise, knowing x_K reveals r_K and hence r_U."""
        cov = small_dataset.population_covariance
        m = small_dataset.n_attributes
        scheme = CorrelatedNoiseScheme.matching_data_covariance(
            cov, noise_power=m * NOISE_STD**2
        )
        disguised = scheme.disguise(small_dataset.values, rng=3)
        indices, values = _leak(small_dataset, [0, 1, 2, 3])
        result = ConditionalDisclosureReconstructor(
            indices, values
        ).reconstruct(disguised)
        assert result.details["noise_conditioning"] is True
        # And it beats plain BE-DR on the hidden block.
        hidden = np.setdiff1d(np.arange(m), indices)
        plain = BayesEstimateReconstructor().reconstruct(disguised)
        assert (
            per_attribute_rmse(small_dataset.values, result)[hidden].mean()
            < per_attribute_rmse(small_dataset.values, plain)[hidden].mean()
        )

    def test_iid_noise_skips_noise_conditioning(self, small_dataset):
        indices, values = _leak(small_dataset, [0])
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            small_dataset.values, rng=4
        )
        result = ConditionalDisclosureReconstructor(
            indices, values
        ).reconstruct(disguised)
        assert result.details["noise_conditioning"] is False

    def test_more_leaks_monotonically_help(self, small_dataset):
        disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(
            small_dataset.values, rng=5
        )
        rmses = []
        for k in (1, 3, 6):
            indices, values = _leak(small_dataset, list(range(k)))
            result = ConditionalDisclosureReconstructor(
                indices, values
            ).reconstruct(disguised)
            rmses.append(
                root_mean_square_error(small_dataset.values, result)
            )
        assert rmses[0] > rmses[1] > rmses[2]


class TestValidation:
    def test_empty_indices_rejected(self):
        with pytest.raises(ValidationError):
            ConditionalDisclosureReconstructor([], np.zeros((5, 0)))

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValidationError, match="duplicates"):
            ConditionalDisclosureReconstructor([1, 1], np.zeros((5, 2)))

    def test_value_column_count_checked(self):
        with pytest.raises(ValidationError, match="columns"):
            ConditionalDisclosureReconstructor([0, 1], np.zeros((5, 3)))

    def test_out_of_range_indices_rejected(self, disguised_dataset):
        n = disguised_dataset.n_records
        attack = ConditionalDisclosureReconstructor(
            [99], np.zeros((n, 1))
        )
        with pytest.raises(ValidationError, match="known indices"):
            attack.reconstruct(disguised_dataset)

    def test_record_count_checked(self, disguised_dataset):
        attack = ConditionalDisclosureReconstructor([0], np.zeros((3, 1)))
        with pytest.raises(ValidationError, match="records"):
            attack.reconstruct(disguised_dataset)
