"""Fault injection: the data plane never leaks segments, grids drain.

Three failure modes against the pool backends, each checked for the
same two invariants: ``/dev/shm`` holds no ``repro-dp-*`` segment after
the run (cleanup runs on success, failure, and worker death), and with
``fail_fast=False`` every spec still comes back as a JobResult — the
failures as *failed* results carrying the original error.
"""

import glob
import os
import signal

import numpy as np
import pytest

from repro.engine import Engine, JobSpec, ResultCache, SharedMemoryExecutor
from repro.engine.dataplane import SEGMENT_PREFIX, ArrayRef, DataPlane, activate
from repro.exceptions import JobExecutionError

pytestmark = pytest.mark.slow

_HERE = "tests.integration.test_dataplane_faults"


def crashing_task(params, rng):
    if params["x"] == 1:
        raise RuntimeError("injected task failure")
    return {"total": float(np.sum(params["data"])), "x": params["x"]}


def killer_task(params, rng):
    if params["x"] == 1:
        # Simulate a worker dying mid-job: SIGKILL skips all cleanup.
        os.kill(os.getpid(), signal.SIGKILL)
    return {"total": float(np.sum(params["data"])), "x": params["x"]}


def _segments_on_disk():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def _shard_specs(ref, task, count=4):
    rows = ref.shape[0] // count
    return [
        JobSpec(
            f"{_HERE}:{task}",
            {"x": i, "data": ref.shard(i * rows, (i + 1) * rows).to_param()},
            seed_root=3,
            seed_path=(i,),
        )
        for i in range(count)
    ]


@pytest.fixture()
def published():
    before = _segments_on_disk()
    data = np.random.default_rng(8).normal(size=(400, 3))
    with DataPlane() as plane:
        ref = plane.publish(data)
        with activate(plane):
            yield plane, ref
    assert _segments_on_disk() == before, "leaked shared-memory segments"


class TestTaskRaises:
    def test_fail_fast_raises_and_cleans_segments(self, published):
        plane, ref = published
        executor = SharedMemoryExecutor(workers=2, chunk_size=1)
        with pytest.raises(JobExecutionError, match="injected task failure"):
            executor.run(_shard_specs(ref, "crashing_task"))

    def test_drain_mode_returns_failed_result_per_spec(self, published):
        plane, ref = published
        executor = SharedMemoryExecutor(workers=2, chunk_size=1)
        results = executor.run(
            _shard_specs(ref, "crashing_task"), fail_fast=False
        )
        assert len(results) == 4
        assert [r.failed for r in results] == [False, True, False, False]
        error = results[1].error
        assert error["type"] == "RuntimeError"
        assert "injected task failure" in error["message"]
        assert "RuntimeError: injected task failure" in error["traceback"]
        for result in (results[0], results[2], results[3]):
            assert result.values["total"] == pytest.approx(
                result.values["total"]
            )

    def test_drain_mode_never_caches_failures(self, published, tmp_path):
        plane, ref = published
        cache = ResultCache(tmp_path)
        engine = Engine(
            executor=SharedMemoryExecutor(workers=2, chunk_size=1),
            cache=cache,
            fail_fast=False,
        )
        results = engine.run(_shard_specs(ref, "crashing_task"))
        assert sum(r.failed for r in results) == 1
        assert len(cache) == 3


class TestWorkerKilledMidJob:
    def test_fail_fast_raises_and_cleans_segments(self, published):
        plane, ref = published
        executor = SharedMemoryExecutor(workers=2, chunk_size=1)
        with pytest.raises(Exception) as info:
            executor.run(_shard_specs(ref, "killer_task"))
        # A SIGKILLed worker surfaces as a broken-pool error, never as a
        # silent partial result.
        assert "process" in str(info.value).lower()

    def test_drain_mode_synthesizes_failed_results(self, published):
        plane, ref = published
        executor = SharedMemoryExecutor(workers=2, chunk_size=1)
        results = executor.run(
            _shard_specs(ref, "killer_task"), fail_fast=False
        )
        # Every spec gets a result; the killed chunk (and any chunk lost
        # with the broken pool) comes back failed with the pool error.
        assert len(results) == 4
        assert results[1].failed
        assert all(
            r.failed or r.values["x"] == i for i, r in enumerate(results)
        )
        assert results[1].error["type"] != ""
        assert results[1].error["message"]


class TestAttachFailure:
    def test_unpublished_ref_fails_the_job_not_the_grid(self, published):
        plane, ref = published
        bogus = ArrayRef(hash="f" * 64, shape=(400, 3), dtype="<f8")
        specs = _shard_specs(ref, "crashing_task")
        # Replace job 2's ref with one no plane has published; the
        # worker cannot resolve it through any transport.
        specs[2] = JobSpec(
            specs[2].task,
            {"x": 2, "data": bogus.to_param()},
            seed_root=3,
            seed_path=(2,),
        )
        executor = SharedMemoryExecutor(workers=2, chunk_size=1)
        results = executor.run(specs, fail_fast=False)
        assert [r.failed for r in results] == [False, True, True, False]
        assert results[2].error["type"] == "DataPlaneError"
        # Exact wording depends on the transport that rejected it: "not
        # published" via a fork-inherited plane, "not available" when no
        # resolution source exists at all.
        assert "not" in results[2].error["message"]

    def test_export_rolls_back_when_run_setup_fails(self, published):
        plane, ref = published

        class ExplodingExecutor(SharedMemoryExecutor):
            def _chunk_for(self, n_jobs):
                raise RuntimeError("setup exploded")

        before = _segments_on_disk()
        with pytest.raises(RuntimeError, match="setup exploded"):
            ExplodingExecutor(workers=2).run(
                _shard_specs(ref, "crashing_task")
            )
        assert _segments_on_disk() == before
