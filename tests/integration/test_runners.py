"""Integration tests for the experiment runners' mechanics.

Shape-level claims live in test_paper_claims; these tests cover the
harness itself: determinism, trial averaging, metadata, and validation.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import SweepConfig
from repro.experiments.runners import (
    run_experiment1_attributes,
    run_experiment2_principal_components,
    run_experiment3_nonprincipal_eigenvalues,
    run_experiment4_correlated_noise,
    run_theorem52_verification,
)

TINY = SweepConfig(n_records=300, seed=7)


class TestRunnerMechanics:
    def test_experiment1_deterministic(self):
        a = run_experiment1_attributes(TINY, attribute_counts=[5, 20])
        b = run_experiment1_attributes(TINY, attribute_counts=[5, 20])
        for method in a.methods:
            np.testing.assert_array_equal(
                a.curve(method), b.curve(method)
            )

    def test_adding_sweep_points_preserves_existing(self):
        """Spawned per-point RNGs: extending the sweep must not change
        earlier points."""
        short = run_experiment1_attributes(TINY, attribute_counts=[5, 20])
        long = run_experiment1_attributes(
            TINY, attribute_counts=[5, 20, 40]
        )
        for method in short.methods:
            np.testing.assert_array_equal(
                short.curve(method), long.curve(method)[:2]
            )

    def test_trial_averaging_mechanics(self):
        single = run_experiment2_principal_components(
            SweepConfig(n_records=300, n_trials=1, seed=1),
            principal_counts=[30, 50],
        )
        averaged = run_experiment2_principal_components(
            SweepConfig(n_records=300, n_trials=3, seed=1),
            principal_counts=[30, 50],
        )
        # Averaging actually happened (different trials were drawn)...
        assert not np.array_equal(
            single.curve("UDR"), averaged.curve("UDR")
        )
        # ...deterministically.
        again = run_experiment2_principal_components(
            SweepConfig(n_records=300, n_trials=3, seed=1),
            principal_counts=[30, 50],
        )
        for method in averaged.methods:
            np.testing.assert_array_equal(
                averaged.curve(method), again.curve(method)
            )
        # And the averaged values stay in the plausible band around the
        # single-trial values (same distribution, same scale).
        assert np.all(np.abs(averaged.curve("UDR") - single.curve("UDR")) < 1.0)

    def test_series_metadata_complete(self):
        series = run_experiment1_attributes(TINY, attribute_counts=[5, 10])
        assert series.metadata["n_records"] == 300
        assert series.metadata["n_principal"] == 5
        assert series.name == "figure1"

    def test_experiment4_dissimilarity_axis_monotone(self):
        series = run_experiment4_correlated_noise(
            TINY, profiles=[0.0, 1.0, 2.0], n_attributes=20, n_principal=10
        )
        x = series.x_values
        assert np.all(np.diff(x) > -1e-12)
        assert "independent_noise_profile" in series.metadata


class TestRunnerValidation:
    def test_experiment1_rejects_m_below_p(self):
        with pytest.raises(ConfigurationError):
            run_experiment1_attributes(
                TINY, attribute_counts=[3, 10], n_principal=5
            )

    def test_experiment2_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            run_experiment2_principal_components(
                TINY, principal_counts=[0, 10]
            )

    def test_experiment3_rejects_eigenvalue_above_principal(self):
        with pytest.raises(ConfigurationError):
            run_experiment3_nonprincipal_eigenvalues(
                TINY, eigenvalues=[500.0], principal_value=400.0
            )

    def test_theorem52_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            run_theorem52_verification(
                n_attributes=10, component_counts=(0,)
            )

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment1_attributes(TINY, attribute_counts=[])
