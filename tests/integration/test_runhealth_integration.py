"""Integration tests for the run-health layer.

Pins the ISSUE's acceptance behaviors end to end: two traced runs of
the same spec align span-for-span in ``repro trace diff`` with a known
injected delta reported exactly; the engine's heartbeat gauges and the
resource sampler's gauges land in real trace documents; ``--metrics``
rings are valid and viewable; and ``repro bench history`` folds real
bench payloads into timelines through the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import Engine, JobSpec, SerialExecutor
from repro.telemetry import (
    Recorder,
    build_manifest,
    diff_traces,
    run_health,
    sampling_supported,
    trace,
    validate_metrics,
    validate_trace,
    write_trace,
)


def _job_specs(n=3, n_records=60, seed_root=13):
    params = {
        "dataset": {"kind": "synthetic", "spectrum": [50.0, 20.0, 5.0]},
        "scheme": {"kind": "additive", "std": 2.0},
        "attacks": {"UDR": {"kind": "udr"}},
        "n_records": n_records,
    }
    return [
        JobSpec(
            task="repro.api.tasks:attack_point",
            params=params,
            seed_root=seed_root,
            seed_path=(0, i),
        )
        for i in range(n)
    ]


def _traced_document(manifest=None, **kwargs):
    recorder = Recorder()
    with trace.recording(recorder):
        Engine(executor=SerialExecutor()).run(_job_specs(**kwargs))
    document = recorder.to_document(manifest=manifest)
    validate_trace(document)
    return document


class TestTraceDiffEndToEnd:
    def test_same_spec_runs_align_completely(self):
        a = _traced_document()
        b = _traced_document()
        diff = diff_traces(a, b)
        statuses = {row["status"] for row in diff["spans"]}
        assert statuses == {"common"}

    def test_injected_slowdown_reported_exactly(self):
        a = _traced_document()
        b = json.loads(json.dumps(a))  # deep copy via round-trip
        # Slow one job down by exactly 1.0s in B (and stretch its
        # parent to keep the tree self-consistent).
        victim = b["spans"][0]["children"][0]
        assert victim["name"] == "engine.job"
        victim["duration"] += 1.0
        b["spans"][0]["duration"] += 1.0
        diff = diff_traces(a, b)
        key = victim["attrs"]["key"]
        [row] = [
            r
            for r in diff["spans"]
            if r["name"] == "engine.job" and f"[{key}]" in r["path"]
        ]
        assert row["delta"] == pytest.approx(1.0)
        assert row["delta_self"] == pytest.approx(1.0)
        # The run span grew by 1.0 in duration but not in self-time:
        # the attribution points at the job, not its container.
        [run] = [r for r in diff["spans"] if r["name"] == "engine.run"]
        assert run["delta"] == pytest.approx(1.0)
        assert run["delta_self"] == pytest.approx(0.0, abs=1e-9)
        assert diff["b"]["total_s"] - diff["a"]["total_s"] == (
            pytest.approx(1.0)
        )

    def test_different_seed_root_changes_every_job(self):
        a = _traced_document(seed_root=13)
        b = _traced_document(seed_root=14)
        diff = diff_traces(a, b)
        jobs = [r for r in diff["spans"] if r["name"] == "engine.job"]
        assert all(row["status"] in {"added", "removed"} for row in jobs)

    def test_manifest_delta_through_real_manifests(self):
        manifest_a = build_manifest(rows=[], extra={"run": "a"})
        manifest_b = dict(manifest_a)
        manifest_b["packages"] = dict(manifest_a["packages"])
        manifest_b["packages"]["numpy"] = "99.0.0"
        diff = diff_traces(
            _traced_document(manifest=manifest_a),
            _traced_document(manifest=manifest_b),
        )
        [change] = [
            c for c in diff["manifest"] if c["field"] == "packages.numpy"
        ]
        assert change["b"] == "99.0.0"

    def test_cli_trace_diff(self, tmp_path, capsys):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        write_trace(_traced_document(), path_a)
        write_trace(_traced_document(), path_b)
        assert main(["trace", "diff", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff (B - A)" in out

    def test_cli_trace_diff_wrong_arity(self, tmp_path, capsys):
        assert main(["trace", "diff", "only-one.json"]) == 2
        assert "exactly two" in capsys.readouterr().err


class TestHeartbeatAndResources:
    def test_heartbeat_gauges_in_trace_document(self):
        document = _traced_document()
        gauges = document["gauges"]
        assert gauges["engine.jobs.total"] == 3.0
        assert gauges["engine.jobs.completed"] == 3.0
        assert gauges["engine.jobs.cached"] == 0.0

    @pytest.mark.skipif(
        not sampling_supported(), reason="needs /proc"
    )
    def test_run_health_grafts_resource_gauges_into_trace(self, tmp_path):
        recorder = Recorder()
        with trace.recording(recorder):
            with run_health(
                recorder, metrics_path=tmp_path / "m.json", interval=5.0
            ):
                Engine(executor=SerialExecutor()).run(_job_specs())
        document = recorder.to_document()
        validate_trace(document)
        assert document["gauges"]["resource.rss_peak_bytes"] > 0.0
        metrics = json.loads((tmp_path / "m.json").read_text())
        validate_metrics(metrics)
        final = metrics["snapshots"][-1]
        assert final["progress"]["completed"] == 3.0

    def test_cli_metrics_view_and_validate(self, tmp_path, capsys):
        recorder = Recorder()
        with trace.recording(recorder):
            with run_health(
                recorder, metrics_path=tmp_path / "m.json", interval=5.0
            ):
                Engine(executor=SerialExecutor()).run(_job_specs())
        path = str(tmp_path / "m.json")
        assert main(["metrics", path, "--validate"]) == 0
        assert "valid repro-metrics/v1" in capsys.readouterr().out
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "snapshot(s)" in out
        assert "3/3 jobs" in out
        assert main(["metrics", path, "--prom"]) == 0
        assert "# EOF" in capsys.readouterr().out


class TestBenchHistoryEndToEnd:
    def _payload(self, tmp_path, name, repeat):
        from repro.bench.runner import run_benchmarks

        import repro.bench.telemetry  # noqa: F401  (case registration)

        payload = run_benchmarks(
            filter_token="span_overhead", repeat=repeat
        )
        path = tmp_path / name
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path, payload

    def test_cli_bench_history_over_real_payloads(self, tmp_path, capsys):
        path_a, _ = self._payload(tmp_path, "BENCH_A.json", 2)
        path_b, _ = self._payload(tmp_path, "BENCH_B.json", 2)
        assert main(
            ["bench", "history", str(path_a), str(path_b), "--no-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "bench history: 2 run(s)" in out
        assert "telemetry.span_overhead.smoke" in out

    def test_cli_bench_history_without_files_errors(self, capsys):
        assert main(["bench", "history"]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_cli_bench_unknown_subcommand_errors(self, capsys):
        assert main(["bench", "histry"]) == 2
        assert "unknown bench subcommand" in capsys.readouterr().err
