"""The checker applied to this repository itself.

The merge contract of the static-analysis subsystem: ``repro check``
over ``src/``, ``benchmarks/``, and ``examples/`` is clean — every real
violation is either fixed or carries a justified inline suppression.
"""

import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.analysis import run_check

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _tree(*names):
    paths = [REPO_ROOT / name for name in names]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        pytest.skip(f"tree(s) not present: {missing}")
    return paths


class TestSelfCheck:
    def test_src_is_clean(self):
        report = run_check(_tree("src"))
        assert report.files, "no files discovered under src/"
        assert not report.errors, report.errors
        offenders = [f.location() for f in report.active]
        assert report.ok, f"repro check src/ found: {offenders}"

    def test_benchmarks_and_examples_are_clean(self):
        report = run_check(_tree("benchmarks", "examples"))
        offenders = [f.location() for f in report.active]
        assert report.ok, f"repro check found: {offenders}"

    def test_suppressions_in_src_carry_justifications(self):
        # Every inline suppression must have free-form text after the
        # bracket explaining why the exact construct is safe.
        report = run_check(_tree("src"))
        for finding in report.suppressed:
            line = pathlib.Path(finding.path).read_text().splitlines()[
                finding.line - 1
            ]
            marker = line.split("repro: ignore", 1)[1]
            justification = marker.split("]", 1)[1].strip()
            assert justification, (
                f"{finding.location()}: suppression of {finding.rule} "
                "has no justification text"
            )

    def test_cli_self_check_exits_zero(self):
        _tree("src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            timeout=120,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "repro check: clean" in completed.stdout


class TestTypedCore:
    def test_py_typed_marker_ships(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

    def test_mypy_strict_config_is_committed(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.mypy]" in pyproject
        assert "strict = true" in pyproject
        for seam in ("repro.api", "repro.engine", "repro.telemetry"):
            assert seam in pyproject

    def test_mypy_strict_on_the_seam(self):
        # mypy is a CI dependency, not a runtime one; skip when absent.
        if shutil.which("mypy") is None:
            pytest.importorskip("mypy", reason="mypy not installed")
        completed = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
