"""End-to-end flows across the public API.

These tests exercise the library the way the examples do: realistic data,
threat models, defense design, and utility checks, all through the
top-level ``repro`` namespace.
"""

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        dataset = repro.generate_dataset(
            spectrum=repro.two_level_spectrum(20, 3, total_variance=2000.0),
            n_records=1000,
            rng=0,
        )
        scheme = repro.AdditiveNoiseScheme(std=5.0)
        disguised = scheme.disguise(dataset.values, rng=1)
        attack = repro.BayesEstimateReconstructor()
        result = attack.reconstruct(disguised)
        rmse = repro.root_mean_square_error(disguised.original, result)
        assert rmse < 5.0

    def test_all_documented_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestCensusScenario:
    """The motivating scenario: medical/census records with correlations."""

    @pytest.fixture(scope="class")
    def census_attack(self):
        generator = repro.CensusLikeGenerator()
        table = generator.sample(3000, rng=0)
        scheme = repro.AdditiveNoiseScheme(std=20.0)
        disguised = scheme.disguise(table.values, rng=1)
        return table, disguised

    def test_correlation_attacks_break_randomization(self, census_attack):
        table, disguised = census_attack
        ndr = repro.root_mean_square_error(
            table.values,
            repro.NoiseDistributionReconstructor().reconstruct(disguised),
        )
        be = repro.root_mean_square_error(
            table.values,
            repro.BayesEstimateReconstructor().reconstruct(disguised),
        )
        # The census table is low-rank: BE-DR should cut RMSE by >40%.
        assert be < 0.6 * ndr

    def test_interval_privacy_shrinks_under_attack(self, census_attack):
        table, disguised = census_attack
        be = repro.BayesEstimateReconstructor().reconstruct(disguised)
        naive_widths = repro.interval_privacy(
            table.values, disguised.disguised
        )
        attacked_widths = repro.interval_privacy(table.values, be)
        assert attacked_widths.mean() < naive_widths.mean()

    def test_leaked_attributes_amplify_disclosure(self, census_attack):
        table, disguised = census_attack
        leaked_indices = [0, 2]  # age and income leak
        leaked_values = table.values[:, leaked_indices]
        threat = repro.ThreatModel(
            leaked_attributes=tuple(leaked_indices),
            leaked_values=leaked_values,
        )
        attacks = threat.build_attacks()
        outcomes = repro.evaluate_attacks(disguised, attacks)
        assert (
            outcomes["BE-DR+leak"].rmse < outcomes["BE-DR"].rmse
        )


class TestDefenseScenario:
    """Publisher-side flow: design correlated noise, verify both sides."""

    def test_defense_raises_attack_error_but_keeps_utility(self):
        spectrum = repro.two_level_spectrum(
            16, 4, total_variance=1600.0, non_principal_value=4.0
        )
        dataset = repro.generate_dataset(
            spectrum=spectrum, n_records=2500, rng=3
        )
        power = 16 * 25.0

        designer = repro.NoiseDesigner(
            dataset.covariance_model, noise_power=power
        )
        matched = designer.design(0.0)
        independent = designer.design(1.0)

        attack = repro.BayesEstimateReconstructor()
        rmse_matched = repro.root_mean_square_error(
            dataset.values,
            attack.reconstruct(matched.scheme.disguise(dataset.values, rng=4)),
        )
        rmse_independent = repro.root_mean_square_error(
            dataset.values,
            attack.reconstruct(
                independent.scheme.disguise(dataset.values, rng=4)
            ),
        )
        # Privacy improved...
        assert rmse_matched > rmse_independent
        gain = rmse_matched / rmse_independent - 1.0
        assert gain > 0.10

        # ...and utility (the recoverable distribution, Theorem 8.2)
        # survived: the recovered covariance still matches the truth.
        disguised = matched.scheme.disguise(dataset.values, rng=5)
        from repro.linalg.covariance import covariance_from_disguised

        recovered = covariance_from_disguised(
            disguised.disguised, matched.scheme.covariance
        )
        truth = dataset.population_covariance
        correlation = np.corrcoef(recovered.ravel(), truth.ravel())[0, 1]
        assert correlation > 0.98

    def test_designed_dissimilarity_monotone_in_profile(self):
        model = repro.CovarianceModel.from_spectrum(
            repro.two_level_spectrum(12, 4, total_variance=1200.0), rng=6
        )
        designer = repro.NoiseDesigner(model, noise_power=300.0)
        values = [
            designer.design(t).dissimilarity
            for t in (0.0, 0.4, 0.8, 1.2, 1.6, 2.0)
        ]
        assert values == sorted(values)


class TestSerialDependencyScenario:
    def test_wiener_attack_on_randomized_timeseries(self):
        generator = repro.VectorAutoregressiveGenerator(
            0.92, innovation_std=1.0, n_channels=3
        )
        series = generator.sample(3000, rng=7)
        scheme = repro.AdditiveNoiseScheme(std=2.0)
        disguised = scheme.disguise(series, rng=8)

        threat = repro.ThreatModel(
            exploits_correlations=False, exploits_serial_dependency=True
        )
        outcomes = repro.evaluate_attacks(
            disguised, threat.build_attacks()
        )
        assert outcomes["Wiener"].rmse < outcomes["NDR"].rmse * 0.75
        assert outcomes["Wiener"].rmse < outcomes["UDR"].rmse


class TestCrossAttackConsistency:
    def test_bedr_equals_udr_on_independent_data(self, weak_disguised):
        """Section 6: with independent attributes BE-DR converges to UDR."""
        be = repro.BayesEstimateReconstructor().reconstruct(weak_disguised)
        udr = repro.UnivariateReconstructor().reconstruct(weak_disguised)
        rmse_be = repro.root_mean_square_error(weak_disguised.original, be)
        rmse_udr = repro.root_mean_square_error(weak_disguised.original, udr)
        assert rmse_be == pytest.approx(rmse_udr, rel=0.05)

    def test_pca_full_rank_equals_ndr(self, weak_disguised):
        """Flat spectrum: largest-gap keeps everything, PCA-DR = NDR."""
        pca = repro.PCAReconstructor().reconstruct(weak_disguised)
        ndr = repro.NoiseDistributionReconstructor().reconstruct(
            weak_disguised
        )
        rmse_pca = repro.root_mean_square_error(
            weak_disguised.original, pca
        )
        rmse_ndr = repro.root_mean_square_error(
            weak_disguised.original, ndr
        )
        assert rmse_pca == pytest.approx(rmse_ndr, rel=0.05)
