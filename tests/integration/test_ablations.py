"""Integration tests for the ablation runners (DESIGN.md A2-A6)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_ablation_covariance,
    run_ablation_marginals,
    run_ablation_samplesize,
    run_ablation_selection,
    run_ablation_utility,
)


class TestSelectionAblation:
    @pytest.fixture(scope="class")
    def series(self):
        return run_ablation_selection(
            n_attributes=30, n_records=800, seed=3
        )

    def test_two_level_rules_agree(self, series):
        two_level = [series.curve(m)[0] for m in series.methods]
        assert max(two_level) - min(two_level) < 0.1

    def test_decaying_rules_diverge(self, series):
        decaying = [series.curve(m)[1] for m in series.methods]
        assert max(decaying) - min(decaying) > 0.05


class TestCovarianceAblation:
    @pytest.fixture(scope="class")
    def series(self):
        return run_ablation_covariance(
            sample_sizes=(100, 500, 2000),
            n_attributes=20,
            seed=5,
        )

    def test_oracle_never_meaningfully_worse(self, series):
        for family in ("PCA", "BE"):
            estimated = series.curve(f"{family}-estimated")
            oracle = series.curve(f"{family}-oracle")
            assert np.all(oracle <= estimated + 0.2)

    def test_gap_closes_with_n(self, series):
        gap_small = (
            series.curve("BE-estimated")[0] - series.curve("BE-oracle")[0]
        )
        gap_large = (
            series.curve("BE-estimated")[-1] - series.curve("BE-oracle")[-1]
        )
        assert gap_large < gap_small


class TestSamplesizeAblation:
    def test_attack_improves_then_saturates(self):
        series = run_ablation_samplesize(
            sample_sizes=(100, 500, 2000, 4000),
            n_attributes=25,
            seed=7,
        )
        be = series.curve("BE-DR")
        assert be[-1] < be[0]
        assert abs(be[-1] - be[-2]) < 0.15


class TestUtilityAblation:
    def test_corrected_training_tracks_oracle(self):
        series = run_ablation_utility(
            n_train=3000, n_test=1500, seed=1
        )
        original = series.curve("original")
        corrected = series.curve("disguised_corrected")
        assert np.all(corrected >= original - 0.05)
        assert np.all(original > 0.85)


class TestMarginalsAblation:
    @pytest.fixture(scope="class")
    def series(self):
        return run_ablation_marginals(
            marginals=("normal", "lognormal", "bimodal"),
            n_attributes=20,
            n_records=1500,
            seed=13,
        )

    def test_attack_still_beats_udr_on_normal(self, series):
        assert series.curve("BE-DR")[0] < series.curve("UDR")[0] - 0.5

    def test_bedr_survives_non_normal_marginals(self, series):
        """BE-DR's edge shrinks but persists under misspecification."""
        for index in range(series.x_values.size):
            assert (
                series.curve("BE-DR")[index]
                < series.curve("UDR")[index]
            ), series.metadata["marginals"][index]

    def test_misspecification_costs_accuracy(self, series):
        """Non-normal marginals must hurt relative to the normal case."""
        be = series.curve("BE-DR")
        assert min(be[1:]) > be[0]
