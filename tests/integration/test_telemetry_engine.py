"""Integration tests: tracing across the engine, pipeline, and CLI.

Pins the ISSUE's acceptance behaviors: traced runs produce valid
``repro-trace/v1`` documents whose per-job spans account for the run
wall-clock and distinguish cache hits from computed jobs under both
executors; results stay bit-identical with tracing on; and the CLI
``--trace`` / ``repro trace`` round-trip works end to end.
"""

from __future__ import annotations

import json

from repro.api.spec import ExperimentSpec
from repro.engine import (
    Engine,
    JobSpec,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    TraceReporter,
)
from repro.telemetry import Recorder, build_manifest, trace, validate_trace


def _job_specs(n=4, n_records=80):
    params = {
        "dataset": {"kind": "synthetic", "spectrum": [50.0, 20.0, 5.0]},
        "scheme": {"kind": "additive", "std": 2.0},
        "attacks": {"UDR": {"kind": "udr"}},
        "n_records": n_records,
    }
    return [
        JobSpec(
            task="repro.api.tasks:attack_point",
            params=params,
            seed_root=13,
            seed_path=(0, i),
        )
        for i in range(n)
    ]


def _engine_jobs(document):
    [run] = document["spans"]
    assert run["name"] == "engine.run"
    return [
        span for span in run["children"] if span["name"] == "engine.job"
    ]


def _traced_run(executor, cache=None):
    recorder = Recorder()
    with trace.recording(recorder):
        results = Engine(executor=executor, cache=cache).run(_job_specs())
    document = recorder.to_document()
    validate_trace(document)
    return results, document


class TestTracedEngineRuns:
    def test_serial_jobs_nest_under_run_and_sum_to_wall_clock(self):
        results, document = _traced_run(SerialExecutor())
        jobs = _engine_jobs(document)
        assert len(jobs) == len(results) == 4
        assert all(job["attrs"]["cached"] is False for job in jobs)
        assert all(job["attrs"]["queue_wait"] == 0.0 for job in jobs)
        # Serial: the jobs run inside the engine.run span, so their
        # durations can never exceed it, and they dominate it (the
        # non-job overhead is bookkeeping).
        run = document["spans"][0]
        job_total = sum(job["duration"] for job in jobs)
        assert job_total <= run["duration"] * 1.01
        assert job_total >= run["duration"] * 0.5

    def test_serial_jobs_contain_pipeline_and_kernel_spans(self):
        _, document = _traced_run(SerialExecutor())
        names = set()

        def walk(span):
            names.add(span["name"])
            for child in span["children"]:
                walk(child)

        walk(document["spans"][0])
        assert {"pipeline.run", "pipeline.randomize", "pipeline.attack",
                "pipeline.metrics"} <= names

    def test_kernel_hooks_emit_spans(self):
        import numpy as np

        from repro.stats.em import UnivariateGaussianMixtureEM
        from repro.stats.kde import GaussianKDE

        rng = np.random.default_rng(3)
        samples = np.concatenate(
            [rng.normal(-1.0, 0.5, 100), rng.normal(2.0, 0.8, 100)]
        )
        recorder = Recorder()
        with trace.recording(recorder):
            GaussianKDE(samples).pdf(np.linspace(-3.0, 4.0, 50))
            UnivariateGaussianMixtureEM(2).fit(samples, rng=rng)
        names = {root.name for root in recorder.roots}
        assert names == {"kde.pdf", "em.fit"}
        by_name = {root.name: root for root in recorder.roots}
        assert by_name["kde.pdf"].attrs == {"n_samples": 200, "n_eval": 50}
        assert by_name["em.fit"].attrs["iterations"] >= 1

    def test_kernel_results_identical_with_tracing_on(self):
        import numpy as np

        from repro.stats.em import UnivariateGaussianMixtureEM
        from repro.stats.kde import GaussianKDE

        rng = np.random.default_rng(3)
        samples = np.concatenate(
            [rng.normal(-1.0, 0.5, 100), rng.normal(2.0, 0.8, 100)]
        )
        grid = np.linspace(-3.0, 4.0, 64)
        plain_pdf = GaussianKDE(samples).pdf(grid)
        plain_fit = UnivariateGaussianMixtureEM(2).fit(
            samples, rng=np.random.default_rng(9)
        )
        with trace.recording(Recorder()):
            traced_pdf = GaussianKDE(samples).pdf(grid)
            traced_fit = UnivariateGaussianMixtureEM(2).fit(
                samples, rng=np.random.default_rng(9)
            )
        np.testing.assert_array_equal(traced_pdf, plain_pdf)
        np.testing.assert_array_equal(traced_fit.means, plain_fit.means)
        np.testing.assert_array_equal(traced_fit.weights, plain_fit.weights)

    def test_parallel_worker_fragments_merge_into_parent(self):
        results, document = _traced_run(ParallelExecutor(workers=2))
        jobs = _engine_jobs(document)
        assert len(jobs) == 4
        for job in jobs:
            assert job["attrs"]["cached"] is False
            assert job["attrs"]["queue_wait"] >= 0.0
            assert isinstance(job["attrs"]["worker"], int)
            # compute is the task body's own timing; the job span also
            # covers task resolution, so it can only be larger.
            assert 0.0 < job["attrs"]["compute"] <= job["duration"] * 1.01
            child_names = {child["name"] for child in job["children"]}
            assert "pipeline.run" in child_names
        # Worker-side counters merged additively into the parent.
        assert document["counters"]["pipeline.records"] == 4 * 80

    def test_cache_hits_are_distinguished_under_both_executors(self, tmp_path):
        cache = ResultCache(tmp_path)
        first, first_doc = _traced_run(ParallelExecutor(workers=2), cache)
        assert first_doc["counters"]["cache.write"] == 4
        assert all(
            not job["attrs"]["cached"] for job in _engine_jobs(first_doc)
        )

        second, second_doc = _traced_run(SerialExecutor(), cache)
        hits = _engine_jobs(second_doc)
        assert all(job["attrs"]["cached"] is True for job in hits)
        assert all("original_duration" in job["attrs"] for job in hits)
        assert second_doc["counters"] == {"cache.hit": 4}
        assert [r.values for r in second] == [r.values for r in first]

    def test_results_bit_identical_with_tracing_on(self):
        plain = Engine(executor=SerialExecutor()).run(_job_specs())
        traced, _ = _traced_run(SerialExecutor())
        assert [r.values for r in traced] == [r.values for r in plain]

    def test_trace_reporter_rows_join_the_run(self):
        recorder = Recorder()
        reporter = TraceReporter()
        specs = _job_specs()
        with trace.recording(recorder):
            Engine(executor=SerialExecutor(), progress=reporter).run(specs)
        assert reporter.total == 4
        assert reporter.elapsed is not None and reporter.cached == 0
        assert {row["key"] for row in reporter.rows} == {
            spec.key() for spec in specs
        }
        manifest = build_manifest(rows=reporter.rows)
        document = recorder.to_document(manifest=manifest)
        validate_trace(document)

    def test_untraced_run_records_nothing(self):
        assert not trace.enabled()
        results = Engine(executor=ParallelExecutor(workers=2)).run(
            _job_specs()
        )
        assert all(result.trace is None for result in results)


class TestSpecRunManifest:
    def test_run_spec_trace_carries_full_lineage(self, tmp_path):
        from repro.api.runner import run_spec

        spec = ExperimentSpec(
            name="traced-sweep",
            task="repro.api.tasks:attack_point",
            params={
                "dataset": {"kind": "synthetic", "spectrum": [50.0, 10.0]},
                "scheme": {"kind": "additive", "std": 2.0},
                "attacks": {"UDR": {"kind": "udr"}},
                "n_records": 60,
            },
            grid={"scheme.std": [1.0, 3.0]},
            x_param="scheme.std",
            trials=2,
            seed=5,
        )
        recorder = Recorder()
        reporter = TraceReporter()
        engine = Engine(
            executor=SerialExecutor(),
            cache=ResultCache(tmp_path),
            progress=reporter,
        )
        with trace.recording(recorder):
            run_spec(spec, engine=engine)
        manifest = build_manifest(spec=spec, rows=reporter.rows)
        document = recorder.to_document(manifest=manifest)
        validate_trace(document)
        jobs = manifest["jobs"]
        assert len(jobs) == 4
        assert all(job["seed_root"] == 5 for job in jobs)
        assert sorted(tuple(job["seed_path"]) for job in jobs) == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        assert all("duration" in job for job in jobs)
        assert manifest["spec"]["hash"]


class TestCliTraceRoundTrip:
    def _write_spec(self, tmp_path):
        spec = {
            "name": "cli-traced",
            "task": "repro.api.tasks:attack_point",
            "params": {
                "dataset": {"kind": "synthetic", "spectrum": [50.0, 10.0]},
                "scheme": {"kind": "additive", "std": 2.0},
                "attacks": {"UDR": {"kind": "udr"}},
                "n_records": 60,
            },
            "grid": {"scheme.std": [1.0, 3.0]},
            "x_param": "scheme.std",
            "seed": 5,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_run_trace_then_view(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self._write_spec(tmp_path)
        trace_path = tmp_path / "out.json"
        code = main(
            ["run", str(spec_path), "--no-cache", "--trace", str(trace_path)]
        )
        assert code == 0
        document = json.loads(trace_path.read_text())
        validate_trace(document)
        assert document["manifest"]["spec"]["name"] == "cli-traced"
        capsys.readouterr()

        assert main(["trace", str(trace_path), "--validate"]) == 0
        assert "valid repro-trace/v1" in capsys.readouterr().out

        assert main(["trace", str(trace_path), "--top", "2"]) == 0
        rendered = capsys.readouterr().out
        assert "engine.run" in rendered
        assert "slowest jobs" in rendered
        assert "manifest:" in rendered

    def test_view_missing_and_invalid_files(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other"}))
        assert main(["trace", str(bad)]) == 1
        capsys.readouterr()

    def test_bench_trace(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)  # keep bench JSON mirrors out of the repo
        trace_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--filter",
                "telemetry.span_overhead",
                "--repeat",
                "1",
                "--no-baseline",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        document = json.loads(trace_path.read_text())
        validate_trace(document)
        [case] = [
            span
            for span in document["spans"]
            if span["name"] == "bench.case"
        ]
        assert case["attrs"]["case"] == "telemetry.span_overhead.smoke"
        assert document["manifest"]["jobs"][0]["key"].startswith("telemetry.")
        capsys.readouterr()
