"""Integration tests: declarative specs through the engine, end to end.

The acceptance bar mirrors the engine's: a component-mode spec run
under any executor backend (or recovered from cache) is *bit-identical*
to the serial run, and the built-in paper specs compile to exactly the
engine jobs the historical runners emitted.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, builtin_spec, run_spec
from repro.api.config import SweepConfig
from repro.data.spectra import two_level_spectrum
from repro.engine import (
    Engine,
    JobSpec,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
)


def noise_sweep_spec(**overrides):
    payload = {
        "name": "integration-sweep",
        "dataset": {
            "kind": "synthetic",
            "spectrum": two_level_spectrum(
                8, 2, total_variance=800.0
            ).tolist(),
        },
        "scheme": {"kind": "additive", "std": 5.0},
        "attacks": {
            "UDR": {"kind": "udr"},
            "PCA-DR": {"kind": "pca-dr"},
            "BE-DR": {"kind": "be-dr"},
        },
        "params": {"n_records": 150},
        "grid": {"scheme.std": [2.0, 5.0]},
        "x_param": "scheme.std",
        "trials": 2,
        "seed": 13,
    }
    payload.update(overrides)
    return ExperimentSpec(**payload)


class TestGenericSpecExecution:
    def test_parallel_bit_identical_to_serial(self):
        spec = noise_sweep_spec()
        serial = run_spec(spec, engine=Engine(SerialExecutor()))
        parallel = run_spec(
            spec, engine=Engine(ParallelExecutor(workers=2))
        )
        assert parallel.methods == serial.methods
        for label in serial.methods:
            np.testing.assert_array_equal(
                parallel.curve(label), serial.curve(label)
            )

    def test_cached_rerun_bit_identical_without_execution(self, tmp_path):
        spec = noise_sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        first = run_spec(spec, engine=Engine(cache=cache))
        assert first.stats["cached"] == 0
        second = run_spec(spec, engine=Engine(cache=cache))
        assert second.stats["cached"] == second.stats["jobs"]
        for label in first.methods:
            np.testing.assert_array_equal(
                second.curve(label), first.curve(label)
            )

    def test_threat_model_adversary_defines_battery(self):
        spec = noise_sweep_spec(
            attacks=None,
            threat_model={"kind": "threat_model",
                          "exploits_correlations": True},
            grid={},
            x_param=None,
        )
        result = run_spec(spec)
        assert result.methods == ["NDR", "UDR", "SF", "PCA-DR", "BE-DR"]

    def test_failing_attack_yields_nan_curve_and_error_record(self):
        spec = noise_sweep_spec(
            attacks={
                "UDR": {"kind": "udr"},
                # Wiener's window exceeds n_records: always raises.
                "Wiener": {"kind": "wiener", "window": 501},
            },
            grid={},
            x_param=None,
            trials=1,
        )
        result = run_spec(spec)
        assert np.isnan(result.curve("Wiener")[0])
        assert np.isfinite(result.curve("UDR")[0])
        assert "Wiener" in result.payloads[0][0]["errors"]


class TestBuiltinSpecCompilation:
    def test_figure1_jobs_match_frozen_contract(self):
        config = SweepConfig(n_records=200, n_trials=2, seed=7)
        spec = builtin_spec("figure1", config, attribute_counts=[5, 10])
        jobs = spec.compile_jobs()

        def spectrum_for(m):
            if m == 5:
                return two_level_spectrum(
                    m, m, total_variance=config.trace_for(m),
                    non_principal_value=config.non_principal_value,
                )
            return two_level_spectrum(
                m, 5, total_variance=config.trace_for(m),
                non_principal_value=config.non_principal_value,
            )

        expected = [
            JobSpec(
                task="repro.experiments.tasks:two_level_trial",
                params={
                    "spectrum": np.asarray(
                        spectrum_for(m), dtype=np.float64
                    ).tolist(),
                    "n_records": 200,
                    "noise_std": 5.0,
                },
                seed_root=7,
                seed_path=(index, trial),
            )
            for index, m in enumerate([5, 10])
            for trial in range(2)
        ]
        assert [job.key() for job in jobs] == [
            job.key() for job in expected
        ]

    def test_theorem52_keeps_root_seed_path(self):
        (job,) = builtin_spec("theorem52").compile_jobs()
        assert job.seed_root == 52
        assert job.seed_path == ()

    def test_ablations_keep_flat_seed_paths(self):
        jobs = builtin_spec("ablation-samplesize").compile_jobs()
        assert all(job.seed_root is None for job in jobs)
        assert all(job.seed_path == () for job in jobs)

    def test_every_builtin_spec_survives_json(self):
        for name in (
            "figure1", "figure2", "figure3", "figure4", "theorem52",
            "ablation-selection", "ablation-covariance",
            "ablation-samplesize", "ablation-utility",
            "ablation-marginals",
        ):
            spec = builtin_spec(name)
            clone = ExperimentSpec.from_json(spec.to_json())
            assert clone == spec
            assert [job.key() for job in clone.compile_jobs()] == [
                job.key() for job in spec.compile_jobs()
            ]

    def test_unknown_builtin_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="figure1"):
            builtin_spec("figure99")
