"""Integration tests asserting the paper's headline claims.

Each test regenerates a (scaled-down) version of one of the paper's
experiments and checks the *qualitative* findings — the orderings,
monotonicities, and crossovers the figures show — rather than absolute
numbers.  These are the reproduction's acceptance tests.
"""

import numpy as np
import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.runners import (
    run_experiment1_attributes,
    run_experiment2_principal_components,
    run_experiment3_nonprincipal_eigenvalues,
    run_experiment4_correlated_noise,
    run_theorem52_verification,
)

# Small-but-stable scale: ~1000 records makes every claim hold with the
# default seed while keeping the whole module under half a minute.
CONFIG = SweepConfig(n_records=1000, seed=2005)


@pytest.fixture(scope="module")
def figure1():
    return run_experiment1_attributes(
        CONFIG, attribute_counts=[5, 10, 25, 50, 100]
    )


@pytest.fixture(scope="module")
def figure2():
    return run_experiment2_principal_components(
        CONFIG, principal_counts=[2, 10, 30, 60, 100]
    )


@pytest.fixture(scope="module")
def figure3():
    return run_experiment3_nonprincipal_eigenvalues(
        CONFIG, eigenvalues=[1, 10, 25, 50]
    )


@pytest.fixture(scope="module")
def figure4():
    return run_experiment4_correlated_noise(
        CONFIG, profiles=[0.0, 0.5, 1.0, 1.5, 2.0]
    )


class TestFigure1Claims:
    """Section 7.2: more attributes (higher correlation) => less privacy."""

    def test_udr_flat_across_sweep(self, figure1):
        udr = figure1.curve("UDR")
        assert udr.max() - udr.min() < 0.35

    def test_correlation_attacks_improve_with_m(self, figure1):
        for method in ("SF", "PCA-DR", "BE-DR"):
            curve = figure1.curve(method)
            assert curve[-1] < curve[0] - 1.0, method

    def test_correlation_attacks_beat_udr_at_high_m(self, figure1):
        udr_final = figure1.curve("UDR")[-1]
        for method in ("SF", "PCA-DR", "BE-DR"):
            assert figure1.curve(method)[-1] < udr_final - 1.0, method

    def test_bedr_at_least_matches_pca(self, figure1):
        """Section 7.2: BE-DR achieves better performance than PCA-DR/SF."""
        be = figure1.curve("BE-DR")
        pca = figure1.curve("PCA-DR")
        sf = figure1.curve("SF")
        # Allow a small tolerance at individual points (finite-sample
        # covariance estimation); on average BE must win.
        assert be.mean() <= pca.mean() + 0.02
        assert be.mean() < sf.mean()


class TestFigure2Claims:
    """Section 7.3: more principal components => more privacy."""

    def test_attacks_degrade_as_p_grows(self, figure2):
        for method in ("SF", "PCA-DR", "BE-DR"):
            curve = figure2.curve(method)
            assert curve[-1] > curve[0] + 1.0, method

    def test_udr_flat(self, figure2):
        udr = figure2.curve("UDR")
        assert udr.max() - udr.min() < 0.4

    def test_pca_approaches_ndr_at_full_rank(self, figure2):
        """At p = m PCA-DR filters nothing: RMSE -> sigma (= 5)."""
        assert figure2.curve("PCA-DR")[-1] == pytest.approx(5.0, abs=0.25)

    def test_bedr_stays_best_throughout(self, figure2):
        be = figure2.curve("BE-DR")
        for method in ("SF", "PCA-DR"):
            other = figure2.curve(method)
            assert np.all(be <= other + 0.25), method


class TestFigure3Claims:
    """Section 7.4: large non-principal eigenvalues break PCA filtering."""

    def test_pca_crosses_above_udr(self, figure3):
        udr = figure3.curve("UDR")
        pca = figure3.curve("PCA-DR")
        assert pca[0] < udr[0]          # high correlation: PCA wins
        assert pca[-1] > udr[-1]        # low correlation: PCA loses

    def test_sf_also_crosses_above_udr(self, figure3):
        assert figure3.curve("SF")[-1] > figure3.curve("UDR")[-1]

    def test_bedr_never_worse_than_udr(self, figure3):
        """BE-DR converges to UDR from below (Section 7.4)."""
        be = figure3.curve("BE-DR")
        udr = figure3.curve("UDR")
        assert np.all(be <= udr + 0.1)

    def test_sf_close_to_pca_when_nonprincipal_small(self, figure3):
        """Section 7.2's promised check: small non-principal eigenvalues
        make SF and PCA-DR nearly identical."""
        assert figure3.curve("SF")[0] == pytest.approx(
            figure3.curve("PCA-DR")[0], abs=0.15
        )


class TestFigure4Claims:
    """Section 8.2: noise similar to the data defeats the attacks."""

    def test_zero_dissimilarity_point_exists(self, figure4):
        assert figure4.x_values[0] == pytest.approx(0.0, abs=1e-6)

    def test_privacy_best_when_noise_matches_data(self, figure4):
        for method in ("PCA-DR", "BE-DR"):
            curve = figure4.curve(method)
            assert curve[0] == curve.max(), method

    def test_bedr_error_rises_with_similarity(self, figure4):
        be = figure4.curve("BE-DR")
        # Strictly harder at matched noise than at independent noise.
        independent_index = figure4.metadata["profiles"].index(1.0)
        assert be[0] > be[independent_index] + 0.3

    def test_pca_keeps_improving_past_independent_point(self, figure4):
        pca = figure4.curve("PCA-DR")
        independent_index = figure4.metadata["profiles"].index(1.0)
        assert pca[-1] < pca[independent_index] - 0.5

    def test_sf_behaves_irregularly_right_of_line(self, figure4):
        """SF's bounds assume independent noise; right of the vertical
        line it stops improving while PCA-DR keeps getting better."""
        sf = figure4.curve("SF")
        pca = figure4.curve("PCA-DR")
        independent_index = figure4.metadata["profiles"].index(1.0)
        sf_gain = sf[independent_index] - sf[-1]
        pca_gain = pca[independent_index] - pca[-1]
        assert sf_gain < pca_gain - 0.5

    def test_matched_noise_defeats_correlation_advantage(self, figure4):
        """At dissimilarity 0 the best attack is barely better than the
        nominal noise level sigma = 5."""
        best = min(
            figure4.curve(method)[0] for method in figure4.methods
        )
        assert best > 4.0


class TestTheorem52:
    def test_empirical_matches_analytic(self):
        series = run_theorem52_verification(
            component_counts=(5, 25, 50, 75, 100), n_records=3000
        )
        np.testing.assert_allclose(
            series.curve("empirical"),
            series.curve("analytic"),
            rtol=0.05,
        )
