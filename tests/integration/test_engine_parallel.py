"""Integration tests: experiments through the engine, serial vs parallel.

The acceptance bar for the engine: ``ParallelExecutor(workers=N)``
produces *bit-identical* ``ExperimentSeries`` to the serial baseline for
the same seed, and a cached rerun reproduces the same series without
executing any job.
"""

import numpy as np

from repro.engine import Engine, ParallelExecutor, ResultCache, SerialExecutor
from repro.experiments.ablations import run_ablation_samplesize
from repro.experiments.config import SweepConfig
from repro.experiments.runners import (
    run_experiment1_attributes,
    run_experiment4_correlated_noise,
    run_theorem52_verification,
)

TINY = SweepConfig(n_records=300, n_trials=2, seed=7)


def _assert_series_equal(a, b):
    assert a.methods == b.methods
    np.testing.assert_array_equal(a.x_values, b.x_values)
    for method in a.methods:
        np.testing.assert_array_equal(a.curve(method), b.curve(method))


class TestParallelEqualsSerial:
    def test_figure1_bit_identical_across_worker_counts(self):
        serial = run_experiment1_attributes(
            TINY, attribute_counts=[5, 20], engine=Engine(SerialExecutor())
        )
        for workers in (2, 3):
            parallel = run_experiment1_attributes(
                TINY,
                attribute_counts=[5, 20],
                engine=Engine(ParallelExecutor(workers=workers)),
            )
            _assert_series_equal(serial, parallel)

    def test_figure4_bit_identical(self):
        kwargs = dict(profiles=[0.0, 1.0], n_attributes=20, n_principal=10)
        serial = run_experiment4_correlated_noise(TINY, **kwargs)
        parallel = run_experiment4_correlated_noise(
            TINY, engine=Engine(ParallelExecutor(workers=2)), **kwargs
        )
        _assert_series_equal(serial, parallel)

    def test_ablation_bit_identical(self):
        kwargs = dict(sample_sizes=(150, 400), n_attributes=10, seed=3)
        serial = run_ablation_samplesize(**kwargs)
        parallel = run_ablation_samplesize(
            engine=Engine(ParallelExecutor(workers=2)), **kwargs
        )
        _assert_series_equal(serial, parallel)

    def test_theorem52_through_engine(self):
        serial = run_theorem52_verification(
            n_attributes=20, component_counts=(2, 10), n_records=500
        )
        parallel = run_theorem52_verification(
            n_attributes=20,
            component_counts=(2, 10),
            n_records=500,
            engine=Engine(ParallelExecutor(workers=2)),
        )
        _assert_series_equal(serial, parallel)


class TestCachedRerun:
    def test_cached_rerun_is_identical_and_skips_execution(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        first = run_experiment1_attributes(
            TINY, attribute_counts=[5, 20], engine=Engine(cache=cache)
        )
        assert len(cache) == 4  # 2 points x 2 trials

        # Any attempt to execute a job on the rerun is a test failure.
        class ExplodingExecutor(SerialExecutor):
            def run(self, specs, callback=None):
                raise AssertionError(
                    f"{len(list(specs))} jobs executed despite warm cache"
                )

        second = run_experiment1_attributes(
            TINY,
            attribute_counts=[5, 20],
            engine=Engine(ExplodingExecutor(), cache=cache),
        )
        _assert_series_equal(first, second)

    def test_cache_distinguishes_configs(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment1_attributes(
            TINY, attribute_counts=[5, 20], engine=Engine(cache=cache)
        )
        other = SweepConfig(n_records=300, n_trials=2, seed=8)
        run_experiment1_attributes(
            other, attribute_counts=[5, 20], engine=Engine(cache=cache)
        )
        assert len(cache) == 8, "different seeds must occupy different keys"
