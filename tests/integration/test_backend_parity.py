"""Cross-backend parity: every executor backend is bit-identical.

Randomized (but seeded) grids of small ExperimentSpecs run on the
serial reference backend and on the ``parallel`` and ``shared-memory``
pools at worker counts 1, 2, and 4.  The bar is *bit* equality — the
aggregated payloads match exactly, and each backend writes exactly the
same set of cache keys, so a cache populated by one backend is a
full-hit warm start for every other.
"""

import numpy as np
import pytest

from repro.api import run_spec
from repro.api.spec import ExperimentSpec
from repro.engine import (
    Engine,
    JobSpec,
    ResultCache,
    create_backend,
)
from repro.engine.dataplane import DataPlane, activate

pytestmark = pytest.mark.slow

#: Every (backend, workers) configuration compared to the serial
#: reference.  Worker counts beyond the machine's core count still
#: exercise the dispatch path — determinism cannot depend on cores.
BACKEND_GRID = [
    ("parallel", 1),
    ("parallel", 2),
    ("parallel", 4),
    ("shared-memory", 1),
    ("shared-memory", 2),
    ("shared-memory", 4),
]

_ATTACK_POOL = [
    ("UDR", {"kind": "udr"}),
    ("PCA-DR", {"kind": "pca-dr"}),
    ("BE-DR", {"kind": "be-dr"}),
    ("SF", {"kind": "sf"}),
]


def _random_spec(rng: np.random.Generator, index: int) -> ExperimentSpec:
    """A small randomized component-mode spec (seeded, so reproducible)."""
    n_attacks = int(rng.integers(1, 4))
    chosen = rng.choice(len(_ATTACK_POOL), size=n_attacks, replace=False)
    attacks = {_ATTACK_POOL[i][0]: dict(_ATTACK_POOL[i][1]) for i in chosen}
    spectrum = sorted(
        (float(x) for x in rng.uniform(2.0, 50.0, size=4)), reverse=True
    )
    stds = sorted(float(x) for x in rng.uniform(0.5, 6.0, size=2))
    return ExperimentSpec(
        name=f"parity-{index}",
        dataset={"kind": "synthetic", "spectrum": spectrum},
        scheme={"kind": "additive", "std": stds[0]},
        attacks=attacks,
        params={"n_records": int(rng.integers(60, 140))},
        grid={"scheme.std": stds},
        trials=int(rng.integers(1, 3)),
        seed=int(rng.integers(1, 2**31)),
    )


def _cache_keys(cache_dir) -> set[str]:
    return {path.stem for path in cache_dir.glob("??/*.json")}


def _comparable(result) -> dict:
    """A result payload with wall-clock timing stripped.

    ``stats.duration`` measures the run, not the experiment — it is the
    one field allowed to differ between backends.
    """
    payload = result.to_dict()
    payload.get("stats", {}).pop("duration", None)
    return payload


class TestSpecGridParity:
    @pytest.mark.parametrize("spec_index", [0, 1, 2])
    def test_backends_bit_identical_and_same_cache_keys(
        self, tmp_path, spec_index
    ):
        rng = np.random.default_rng(1000 + spec_index)
        spec = _random_spec(rng, spec_index)

        reference_dir = tmp_path / "serial"
        reference = run_spec(
            spec, engine=Engine(cache=ResultCache(reference_dir))
        )
        reference_payload = _comparable(reference)
        reference_keys = _cache_keys(reference_dir)
        assert reference_keys  # the run actually wrote entries

        for backend, workers in BACKEND_GRID:
            cache_dir = tmp_path / f"{backend}-{workers}"
            engine = Engine(
                executor=create_backend(
                    backend, workers=workers, chunk_size=1
                ),
                cache=ResultCache(cache_dir),
            )
            result = run_spec(spec, engine=engine)
            assert _comparable(result) == reference_payload, (
                f"{backend} x{workers} diverged from serial"
            )
            assert _cache_keys(cache_dir) == reference_keys, (
                f"{backend} x{workers} wrote different cache keys"
            )

    def test_cache_warm_start_across_backends(self, tmp_path):
        spec = _random_spec(np.random.default_rng(77), 99)
        cache = ResultCache(tmp_path / "shared")
        cold = run_spec(spec, engine=Engine(cache=cache))
        warm = run_spec(
            spec,
            engine=Engine(
                executor=create_backend("shared-memory", workers=2),
                cache=cache,
            ),
        )
        cold_payload = _comparable(cold)
        warm_payload = _comparable(warm)
        # The warm start must be a full hit: every job came from cache.
        assert warm_payload["stats"].pop("cached") == 2
        assert cold_payload["stats"].pop("cached") == 0
        assert warm_payload == cold_payload


class TestDataPlaneShardParity:
    def test_shard_jobs_bit_identical_across_backends(self):
        data = np.random.default_rng(41).normal(size=(400, 4))
        with DataPlane() as plane:
            ref = plane.publish(data)
            specs = [
                JobSpec(
                    task="repro.api.tasks:attack_shard",
                    params={
                        "data": ref.shard(i * 100, (i + 1) * 100).to_param(),
                        "scheme": {"kind": "additive", "std": 2.0},
                        "attacks": {"UDR": {"kind": "udr"}},
                    },
                    seed_root=2005,
                    seed_path=(i,),
                )
                for i in range(4)
            ]
            with activate(plane):
                reference = create_backend("serial").run(specs)
                for backend, workers in BACKEND_GRID:
                    executor = create_backend(
                        backend, workers=workers, chunk_size=1
                    )
                    results = executor.run(specs)
                    assert [r.values for r in results] == [
                        r.values for r in reference
                    ], f"{backend} x{workers} diverged"
                    assert [r.key for r in results] == [
                        r.key for r in reference
                    ]

    def test_ref_keeps_segment_names_out_of_job_keys(self):
        data = np.random.default_rng(42).normal(size=(50, 2))
        with DataPlane() as first, DataPlane() as second:
            ref_a = first.publish(data)
            ref_b = second.publish(data.copy())
            spec_a = JobSpec(
                "repro.api.tasks:attack_shard",
                {"data": ref_a.to_param()},
                seed_root=1,
                seed_path=(0,),
            )
            spec_b = JobSpec(
                "repro.api.tasks:attack_shard",
                {"data": ref_b.to_param()},
                seed_root=1,
                seed_path=(0,),
            )
            # Same content on two different planes: identical identity.
            assert ref_a == ref_b
            assert spec_a.key() == spec_b.key()
