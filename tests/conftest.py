"""Shared fixtures for the test suite.

Everything is seeded; tests must be deterministic.  The fixtures build
one small, highly correlated dataset (the regime the paper's attacks
target) plus its disguised counterpart so individual tests don't repeat
the generation boilerplate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.randomization.additive import AdditiveNoiseScheme

#: Default noise std used across test datasets.
NOISE_STD = 5.0


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset():
    """Highly correlated dataset: 12 attributes, 3 principal, n=600."""
    spectrum = two_level_spectrum(
        12, 3, total_variance=1200.0, non_principal_value=4.0
    )
    return generate_dataset(spectrum=spectrum, n_records=600, rng=7)


@pytest.fixture
def disguised_dataset(small_dataset):
    """The small dataset disguised with i.i.d. Gaussian noise, sigma=5."""
    scheme = AdditiveNoiseScheme(std=NOISE_STD)
    return scheme.disguise(small_dataset.values, rng=11)


@pytest.fixture
def weak_dataset():
    """Nearly uncorrelated dataset (flat spectrum): 10 attributes, n=600."""
    spectrum = np.full(10, 100.0)
    return generate_dataset(spectrum=spectrum, n_records=600, rng=13)


@pytest.fixture
def weak_disguised(weak_dataset):
    """The weak dataset disguised with the same noise level."""
    scheme = AdditiveNoiseScheme(std=NOISE_STD)
    return scheme.disguise(weak_dataset.values, rng=17)
