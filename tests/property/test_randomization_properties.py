"""Property-based tests for randomization-scheme invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.defense import design_noise_spectrum
from repro.data.covariance_builder import CovarianceModel
from repro.data.spectra import two_level_spectrum
from repro.linalg.psd import is_positive_semidefinite
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.randomization.randomized_response import WarnerRandomizedResponse


class TestAdditiveSchemeProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        std=st.floats(min_value=0.1, max_value=25.0),
        family=st.sampled_from(["gaussian", "uniform"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_disguise_is_exactly_additive(self, seed, std, family):
        rng = np.random.default_rng(seed)
        original = rng.normal(0.0, 10.0, size=(50, 4))
        dataset = AdditiveNoiseScheme(std=std, family=family).disguise(
            original, rng=seed
        )
        np.testing.assert_allclose(
            dataset.disguised, dataset.original + dataset.noise
        )
        np.testing.assert_array_equal(dataset.original, original)

    @given(
        std=st.floats(min_value=0.1, max_value=25.0),
        family=st.sampled_from(["gaussian", "uniform"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_marginal_density_variance_matches_scheme(self, std, family):
        scheme = AdditiveNoiseScheme(std=std, family=family)
        assert np.isclose(scheme.marginal_density().variance, std**2)

    @given(
        seed=st.integers(min_value=0, max_value=5000),
        std=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_noise_sample_energy_near_nominal(self, seed, std):
        scheme = AdditiveNoiseScheme(std=std)
        noise = scheme.sample_noise((4000, 3), rng=seed)
        assert np.isclose(np.mean(noise**2), std**2, rtol=0.15)


class TestCorrelatedSchemeProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        m=st.integers(min_value=2, max_value=10),
        power=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_matched_noise_power_exact(self, seed, m, power):
        spectrum = two_level_spectrum(
            m, max(1, m // 3), total_variance=100.0 * m
        )
        cov = CovarianceModel.from_spectrum(spectrum, rng=seed).matrix
        scheme = CorrelatedNoiseScheme.matching_data_covariance(
            cov, noise_power=power
        )
        assert np.isclose(scheme.total_power, power)
        assert is_positive_semidefinite(scheme.covariance)


class TestDesignedSpectrumProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        m=st.integers(min_value=2, max_value=12),
        profile=st.floats(min_value=0.0, max_value=2.0),
        power=st.floats(min_value=0.5, max_value=1000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_designed_spectrum_invariants(self, seed, m, profile, power):
        rng = np.random.default_rng(seed)
        data_spectrum = np.sort(rng.uniform(0.1, 100.0, size=m))[::-1]
        designed = design_noise_spectrum(
            data_spectrum, noise_power=power, profile=profile
        )
        assert designed.shape == (m,)
        assert np.all(designed >= 0.0)
        assert np.isclose(designed.sum(), power, rtol=1e-9)


class TestRandomizedResponseProperties:
    @given(
        theta=st.floats(min_value=0.55, max_value=0.99),
        pi=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=25, deadline=None)
    def test_proportion_estimator_consistent(self, theta, pi, seed):
        rng = np.random.default_rng(seed)
        scheme = WarnerRandomizedResponse(theta)
        bits = (rng.random(30000) < pi).astype(int)
        responses = scheme.disguise(bits, rng=seed + 1)
        estimate = scheme.estimate_proportion(responses)
        # 30k samples: generous 4-sigma band for the estimator.
        se = np.sqrt(0.25 / 30000) / abs(2 * theta - 1)
        assert abs(estimate - pi) < 4 * se + 0.01

    @given(
        theta=st.floats(min_value=0.55, max_value=0.99),
        prior=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_posterior_is_valid_probability(self, theta, prior):
        scheme = WarnerRandomizedResponse(theta)
        for response in (0, 1):
            posterior = scheme.posterior_truth_probability(response, prior)
            assert 0.0 <= posterior <= 1.0

    @given(
        theta=st.floats(min_value=0.55, max_value=0.99),
        prior=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_posterior_average_returns_prior(self, theta, prior):
        """Law of total probability: E_response[posterior] = prior."""
        scheme = WarnerRandomizedResponse(theta)
        p_one = theta * prior + (1 - theta) * (1 - prior)
        total = p_one * scheme.posterior_truth_probability(1, prior) + (
            1 - p_one
        ) * scheme.posterior_truth_probability(0, prior)
        assert np.isclose(total, prior, atol=1e-12)
