"""Property-based tests for metric invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.covariance_builder import CovarianceModel
from repro.metrics.dissimilarity import correlation_dissimilarity
from repro.metrics.error import (
    mean_square_error,
    per_attribute_rmse,
    root_mean_square_error,
)

_entries = st.floats(
    min_value=-1000.0, max_value=1000.0,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def matrix_pairs(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=1, max_value=6))
    a = draw(arrays(np.float64, (n, m), elements=_entries))
    b = draw(arrays(np.float64, (n, m), elements=_entries))
    return a, b


class TestErrorMetricProperties:
    @given(pair=matrix_pairs())
    @settings(max_examples=50, deadline=None)
    def test_mse_non_negative_and_symmetric(self, pair):
        a, b = pair
        assert mean_square_error(a, b) >= 0.0
        assert mean_square_error(a, b) == mean_square_error(b, a)

    @given(pair=matrix_pairs())
    @settings(max_examples=50, deadline=None)
    def test_identity_of_indiscernibles(self, pair):
        a, _ = pair
        assert mean_square_error(a, a) == 0.0

    @given(pair=matrix_pairs())
    @settings(max_examples=50, deadline=None)
    def test_rmse_triangle_inequality(self, pair):
        """RMSE is a metric (scaled Frobenius): d(a,c) <= d(a,b)+d(b,c)."""
        a, b = pair
        c = (a + b) / 2.0
        d_ac = root_mean_square_error(a, c)
        d_ab = root_mean_square_error(a, b)
        d_bc = root_mean_square_error(b, c)
        assert d_ab <= d_ac + d_bc + 1e-9
        assert d_ac <= d_ab + d_bc + 1e-9

    @given(pair=matrix_pairs(),
           scale=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_rmse_absolute_homogeneity(self, pair, scale):
        a, b = pair
        scaled = root_mean_square_error(scale * a, scale * b)
        base = root_mean_square_error(a, b)
        assert np.isclose(scaled, scale * base, rtol=1e-9, atol=1e-12)

    @given(pair=matrix_pairs())
    @settings(max_examples=50, deadline=None)
    def test_per_attribute_aggregates_to_total(self, pair):
        a, b = pair
        per_attr = per_attribute_rmse(a, b)
        total = root_mean_square_error(a, b)
        assert np.isclose(np.sqrt(np.mean(per_attr**2)), total, atol=1e-9)


class TestDissimilarityProperties:
    @given(
        seed_a=st.integers(min_value=0, max_value=2000),
        seed_b=st.integers(min_value=0, max_value=2000),
        m=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded_symmetric_and_self_zero(self, seed_a, seed_b, m):
        rng = np.random.default_rng(seed_a)
        spectrum = np.sort(rng.uniform(1.0, 50.0, m))[::-1]
        cov_a = CovarianceModel.from_spectrum(spectrum, rng=seed_a).matrix
        cov_b = CovarianceModel.from_spectrum(spectrum, rng=seed_b).matrix
        d_ab = correlation_dissimilarity(cov_a, cov_b, inputs="covariance")
        d_ba = correlation_dissimilarity(cov_b, cov_a, inputs="covariance")
        assert 0.0 <= d_ab <= 2.0
        assert np.isclose(d_ab, d_ba, atol=1e-12)
        assert correlation_dissimilarity(
            cov_a, cov_a, inputs="covariance"
        ) == 0.0

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        m=st.integers(min_value=2, max_value=8),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance(self, seed, m, scale):
        """Correlations ignore scale: Dis(C, cC) = 0."""
        rng = np.random.default_rng(seed)
        spectrum = np.sort(rng.uniform(1.0, 50.0, m))[::-1]
        cov = CovarianceModel.from_spectrum(spectrum, rng=seed).matrix
        assert correlation_dissimilarity(
            cov, scale * cov, inputs="covariance"
        ) < 1e-9

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        m=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_literal_convention_smaller_than_rms(self, seed, m):
        """literal = rms / sqrt(m^2 - m), so literal <= rms for m >= 2."""
        rng = np.random.default_rng(seed)
        spectrum = np.sort(rng.uniform(1.0, 50.0, m))[::-1]
        cov_a = CovarianceModel.from_spectrum(spectrum, rng=seed).matrix
        cov_b = CovarianceModel.from_spectrum(spectrum, rng=seed + 1).matrix
        rms = correlation_dissimilarity(cov_a, cov_b, inputs="covariance")
        literal = correlation_dissimilarity(
            cov_a, cov_b, inputs="covariance", convention="literal"
        )
        assert literal <= rms + 1e-12
        pairs = m * m - m
        assert np.isclose(literal, rms / np.sqrt(pairs), atol=1e-12)
