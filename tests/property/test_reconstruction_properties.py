"""Property-based tests for reconstruction-attack invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import FixedCountSelector
from repro.reconstruction.udr import UnivariateReconstructor


def _make_case(seed, m, p, noise_std, n=400):
    spectrum = two_level_spectrum(
        m, p, total_variance=100.0 * m, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=n, rng=seed)
    disguised = AdditiveNoiseScheme(std=noise_std).disguise(
        dataset.values, rng=seed + 1
    )
    return dataset, disguised


case_params = dict(
    seed=st.integers(min_value=0, max_value=5000),
    m=st.integers(min_value=4, max_value=16),
    p=st.integers(min_value=1, max_value=4),
    noise_std=st.floats(min_value=1.0, max_value=10.0),
)


class TestAttackInvariants:
    @given(**case_params)
    @settings(max_examples=20, deadline=None)
    def test_bedr_never_much_worse_than_ndr(self, seed, m, p, noise_std):
        """The Bayes estimate uses strictly more information than NDR."""
        dataset, disguised = _make_case(seed, m, min(p, m), noise_std)
        be = root_mean_square_error(
            dataset.values,
            BayesEstimateReconstructor().reconstruct(disguised),
        )
        ndr = root_mean_square_error(
            dataset.values,
            NoiseDistributionReconstructor().reconstruct(disguised),
        )
        assert be <= ndr * 1.05

    @given(**case_params)
    @settings(max_examples=20, deadline=None)
    def test_udr_never_much_worse_than_ndr(self, seed, m, p, noise_std):
        dataset, disguised = _make_case(seed, m, min(p, m), noise_std)
        udr = root_mean_square_error(
            dataset.values,
            UnivariateReconstructor().reconstruct(disguised),
        )
        ndr = root_mean_square_error(
            dataset.values,
            NoiseDistributionReconstructor().reconstruct(disguised),
        )
        assert udr <= ndr * 1.05

    @given(**case_params)
    @settings(max_examples=20, deadline=None)
    def test_estimates_are_finite(self, seed, m, p, noise_std):
        _, disguised = _make_case(seed, m, min(p, m), noise_std)
        for attack in (
            NoiseDistributionReconstructor(),
            UnivariateReconstructor(),
            PCAReconstructor(),
            BayesEstimateReconstructor(),
        ):
            estimate = attack.reconstruct(disguised).estimate
            assert np.all(np.isfinite(estimate))
            assert estimate.shape == disguised.disguised.shape

    @given(**case_params)
    @settings(max_examples=15, deadline=None)
    def test_pca_error_monotone_in_undershoot(self, seed, m, p, noise_std):
        """Keeping fewer components than the true rank discards signal:
        p_true components must beat 1 component (when p_true > 1)."""
        p = min(max(p, 2), m - 1)
        dataset, disguised = _make_case(seed, m, p, noise_std)
        rmse_true = root_mean_square_error(
            dataset.values,
            PCAReconstructor(FixedCountSelector(p)).reconstruct(disguised),
        )
        rmse_one = root_mean_square_error(
            dataset.values,
            PCAReconstructor(FixedCountSelector(1)).reconstruct(disguised),
        )
        assert rmse_true <= rmse_one * 1.05

    @given(seed=st.integers(min_value=0, max_value=5000),
           noise_std=st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=15, deadline=None)
    def test_ndr_mse_equals_realized_noise_energy(self, seed, noise_std):
        dataset, disguised = _make_case(seed, 6, 2, noise_std)
        result = NoiseDistributionReconstructor().reconstruct(disguised)
        mse = float(np.mean((dataset.values - result.estimate) ** 2))
        noise_energy = float(np.mean(disguised.noise**2))
        assert np.isclose(mse, noise_energy, rtol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=10, deadline=None)
    def test_reconstruction_deterministic(self, seed):
        _, disguised = _make_case(seed, 8, 2, 5.0)
        a = BayesEstimateReconstructor().reconstruct(disguised).estimate
        b = BayesEstimateReconstructor().reconstruct(disguised).estimate
        np.testing.assert_array_equal(a, b)
