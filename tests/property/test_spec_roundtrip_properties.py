"""Property tests: spec round-trips behave identically for every component.

For each registered scheme, attack, and dataset generator, a
representative instance is serialized with ``to_spec`` and rebuilt with
``from_spec``; under a fixed seed the rebuilt component must behave
*identically* (same noise draws, same reconstruction, same samples) and
re-serialize to the same spec.  A completeness guard fails the suite
when a newly registered component has no representative here.
"""

import numpy as np
import pytest

from repro.data.spectra import two_level_spectrum
from repro.registry import ATTACKS, DATASETS, SCHEMES

M = 6
SPECTRUM = two_level_spectrum(M, 2, total_variance=100.0 * M).tolist()
_COV = np.diag(np.linspace(4.0, 1.0, M))
_CORR = np.eye(M).tolist()

#: Representative constructions, keyed by registry kind.  Several per
#: kind where defaults and explicit options take different code paths.
SCHEME_CASES = {
    "additive": [
        {"kind": "additive", "std": 5.0},
        {"kind": "additive", "std": 2.0, "family": "uniform"},
    ],
    "correlated": [
        {"kind": "correlated", "covariance": _COV.tolist()},
    ],
}

ATTACK_CASES = {
    "ndr": [{"kind": "ndr"}],
    "udr": [
        {"kind": "udr"},
        {"kind": "udr", "prior": "reconstructed", "n_grid": 65, "n_bins": 16},
    ],
    "sf": [{"kind": "sf", "tolerance": 0.1}],
    "pca-dr": [
        {"kind": "pca-dr"},
        {"kind": "pca-dr", "selector": {"kind": "fixed", "count": 2}},
        {"kind": "pca-dr", "selector": {"kind": "energy", "fraction": 0.9},
         "covariance_estimator": "ledoit-wolf"},
        {"kind": "pca-dr", "selector": {"kind": "largest-gap", "max_rank": 3}},
    ],
    "be-dr": [
        {"kind": "be-dr"},
        {"kind": "be-dr", "oracle_covariance": _COV.tolist(),
         "oracle_mean": [0.0] * M},
    ],
    "wiener": [{"kind": "wiener", "window": 5}],
    "kalman": [{"kind": "kalman", "max_spectral_radius": 0.9}],
    "conditional": [
        {"kind": "conditional", "known_indices": [0],
         "known_values": [[0.0]] * 40},
    ],
}

DATASET_CASES = {
    "synthetic": [
        {"kind": "synthetic", "spectrum": SPECTRUM},
        {"kind": "synthetic", "spectrum": SPECTRUM, "mean": [1.0] * M},
    ],
    "copula": [
        {"kind": "copula", "correlation": _CORR, "marginal": "lognormal",
         "target_std": 2.0},
        {"kind": "copula", "spectrum": SPECTRUM, "marginal": "bimodal",
         "basis_seed": 5},
    ],
    "census": [{"kind": "census", "scale": 2.0}],
    "var": [
        {"kind": "var", "coefficient": 0.6, "innovation_std": 1.5,
         "n_channels": 3},
    ],
}


def flatten(cases):
    return [
        pytest.param(kind, spec, id=f"{kind}-{index}")
        for kind, specs in sorted(cases.items())
        for index, spec in enumerate(specs)
    ]


class TestRepresentativeCompleteness:
    def test_every_scheme_covered(self):
        assert sorted(SCHEME_CASES) == SCHEMES.names()

    def test_every_attack_covered(self):
        assert sorted(ATTACK_CASES) == ATTACKS.names()

    def test_every_dataset_covered(self):
        assert sorted(DATASET_CASES) == DATASETS.names()


@pytest.mark.parametrize("kind,spec", flatten(SCHEME_CASES))
class TestSchemeRoundTrip:
    def test_spec_round_trip_is_stable(self, kind, spec):
        scheme = SCHEMES.create(spec)
        assert SCHEMES.create(scheme.to_spec()).to_spec() == scheme.to_spec()
        assert scheme.to_spec()["kind"] == kind

    def test_identical_behavior_under_fixed_seed(self, kind, spec):
        first = SCHEMES.create(spec)
        second = SCHEMES.create(first.to_spec())
        assert first.noise_model(M) == second.noise_model(M)
        noise_a = first.sample_noise((30, M), rng=np.random.default_rng(8))
        noise_b = second.sample_noise((30, M), rng=np.random.default_rng(8))
        np.testing.assert_array_equal(noise_a, noise_b)


@pytest.fixture(scope="module")
def disguised_table():
    from repro.data.synthetic import generate_dataset
    from repro.randomization.additive import AdditiveNoiseScheme

    dataset = generate_dataset(spectrum=SPECTRUM, n_records=40, rng=0)
    return AdditiveNoiseScheme(std=2.0).disguise(dataset.values, rng=1)


@pytest.mark.parametrize("kind,spec", flatten(ATTACK_CASES))
class TestAttackRoundTrip:
    def test_spec_round_trip_is_stable(self, kind, spec):
        attack = ATTACKS.create(spec)
        assert ATTACKS.create(attack.to_spec()).to_spec() == attack.to_spec()
        assert attack.to_spec()["kind"] == kind

    def test_identical_reconstruction(self, kind, spec, disguised_table):
        first = ATTACKS.create(spec)
        second = ATTACKS.create(first.to_spec())
        result_a = first.reconstruct(disguised_table)
        result_b = second.reconstruct(disguised_table)
        assert result_a == result_b


@pytest.mark.parametrize("kind,spec", flatten(DATASET_CASES))
class TestDatasetRoundTrip:
    def test_spec_round_trip_is_stable(self, kind, spec):
        generator = DATASETS.create(spec)
        rebuilt = DATASETS.create(generator.to_spec())
        assert rebuilt.to_spec() == generator.to_spec()
        assert generator.to_spec()["kind"] == kind

    def test_identical_samples_under_fixed_seed(self, kind, spec):
        first = DATASETS.create(spec)
        second = DATASETS.create(first.to_spec())
        sample_a = first.sample(25, rng=np.random.default_rng(9))
        sample_b = second.sample(25, rng=np.random.default_rng(9))
        values_a = getattr(sample_a, "values", sample_a)
        values_b = getattr(sample_b, "values", sample_b)
        np.testing.assert_array_equal(values_a, values_b)
