"""Property-based tests for the MASK mining and breach modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.breach import (
    amplification_factor,
    posterior_distribution,
    worst_case_posterior,
)
from repro.mining.association import MaskScheme

_theta = st.floats(min_value=0.55, max_value=0.99)


class TestMaskProperties:
    @given(
        p=_theta,
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_channel_matrix_is_stochastic_and_symmetric(self, p, k):
        channel = MaskScheme(p).channel_matrix(k)
        np.testing.assert_allclose(channel.sum(axis=0), 1.0, atol=1e-12)
        np.testing.assert_allclose(channel, channel.T, atol=1e-12)

    @given(
        p=_theta,
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_channel_inverse_exists(self, p, k):
        """The channel determinant never vanishes for p != 0.5.

        For the k-fold Kronecker power of a 2x2 matrix A,
        det = det(A)^(k * 2^(k-1)) with det(A) = 2p - 1.
        """
        channel = MaskScheme(p).channel_matrix(k)
        det = np.linalg.det(channel)
        expected = (2 * p - 1) ** (k * 2 ** (k - 1))
        assert det == np.linalg.det(channel)  # sanity: finite
        assert abs(det - expected) < 1e-9 * max(1.0, abs(expected))
        assert abs(det) > 0.0

    @given(
        p=_theta,
        support=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=20, deadline=None)
    def test_support_estimator_consistent(self, p, support, seed):
        rng = np.random.default_rng(seed)
        n = 30000
        bits = (rng.random((n, 1)) < support).astype(np.int8)
        scheme = MaskScheme(p)
        disguised = scheme.disguise(bits, rng=seed + 1)
        estimate = scheme.estimate_support(disguised, [0])
        # Standard error of the inverted estimator.
        se = np.sqrt(0.25 / n) / abs(2 * p - 1)
        assert abs(estimate - support) < 5 * se + 0.01

    @given(
        p=_theta,
        seed=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=20, deadline=None)
    def test_estimates_always_probabilities(self, p, seed):
        rng = np.random.default_rng(seed)
        baskets = (rng.random((40, 3)) < 0.5).astype(np.int8)
        scheme = MaskScheme(p)
        disguised = scheme.disguise(baskets, rng=seed)
        for itemset in ([0], [1, 2], [0, 1, 2]):
            estimate = scheme.estimate_support(disguised, itemset)
            assert 0.0 <= estimate <= 1.0


class TestBreachProperties:
    @given(
        theta=_theta,
        prior_one=st.floats(min_value=0.01, max_value=0.99),
        output=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_posterior_is_distribution(self, theta, prior_one, output):
        channel = np.array(
            [[theta, 1 - theta], [1 - theta, theta]]
        )
        posterior = posterior_distribution(
            [1 - prior_one, prior_one], channel, output
        )
        assert np.all(posterior >= 0.0)
        assert posterior.sum() == 1.0 or abs(posterior.sum() - 1.0) < 1e-12

    @given(
        theta=_theta,
        prior_one=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_worst_case_at_least_prior(self, theta, prior_one):
        """Some output must not decrease belief below the prior (the
        posterior averages back to the prior over outputs)."""
        channel = np.array(
            [[theta, 1 - theta], [1 - theta, theta]]
        )
        worst = worst_case_posterior(
            [1 - prior_one, prior_one], channel, [1]
        )
        assert worst >= prior_one - 1e-12

    @given(
        theta=_theta,
        prior_one=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_posterior_bounded_by_amplification(self, theta, prior_one):
        """Evfimievski's core inequality: posterior odds <= gamma * prior
        odds."""
        channel = np.array(
            [[theta, 1 - theta], [1 - theta, theta]]
        )
        gamma = amplification_factor(channel)
        worst = worst_case_posterior(
            [1 - prior_one, prior_one], channel, [1]
        )
        prior_odds = prior_one / (1 - prior_one)
        worst_odds = worst / max(1.0 - worst, 1e-300)
        assert worst_odds <= gamma * prior_odds * (1 + 1e-9)
