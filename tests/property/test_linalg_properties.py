"""Property-based tests for the linear-algebra substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.covariance import (
    correlation_from_covariance,
    sample_covariance,
)
from repro.linalg.eigen import eigen_gap_split, sorted_eigh
from repro.linalg.gram_schmidt import gram_schmidt, random_orthogonal
from repro.linalg.psd import is_positive_semidefinite, nearest_psd, psd_inverse

# Bounded, finite float entries keep the numerics honest without
# drifting into overflow territory.
_entries = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _symmetric(matrix):
    return (matrix + matrix.T) / 2.0


@st.composite
def symmetric_matrices(draw, min_dim=2, max_dim=6):
    dim = draw(st.integers(min_value=min_dim, max_value=max_dim))
    raw = draw(
        arrays(np.float64, (dim, dim), elements=_entries)
    )
    return _symmetric(raw)


@st.composite
def spd_matrices(draw, min_dim=2, max_dim=6):
    dim = draw(st.integers(min_value=min_dim, max_value=max_dim))
    raw = draw(arrays(np.float64, (dim, dim), elements=_entries))
    return raw @ raw.T + np.eye(dim)


class TestGramSchmidtProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           dim=st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_random_orthogonal_always_orthogonal(self, seed, dim):
        q = random_orthogonal(dim, rng=seed)
        np.testing.assert_allclose(q.T @ q, np.eye(dim), atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           rows=st.integers(min_value=2, max_value=10),
           cols=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_gram_schmidt_idempotent_on_orthonormal_input(
        self, seed, rows, cols
    ):
        if cols > rows:
            cols = rows
        rng = np.random.default_rng(seed)
        q = gram_schmidt(rng.standard_normal((rows, cols)))
        again = gram_schmidt(q)
        np.testing.assert_allclose(np.abs(again.T @ q), np.eye(cols),
                                   atol=1e-8)


class TestEigenProperties:
    @given(matrix=spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_decomposition_reconstructs(self, matrix):
        decomposition = sorted_eigh(matrix)
        np.testing.assert_allclose(
            decomposition.reconstruct(), matrix,
            atol=1e-7 * max(1.0, np.abs(matrix).max()),
        )

    @given(matrix=symmetric_matrices())
    @settings(max_examples=40, deadline=None)
    def test_eigenvalue_sum_is_trace(self, matrix):
        decomposition = sorted_eigh(matrix)
        assert np.isclose(
            decomposition.values.sum(), np.trace(matrix),
            atol=1e-8 * max(1.0, np.abs(matrix).max()),
        )

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_gap_split_in_valid_range(self, values):
        spectrum = np.sort(np.asarray(values))[::-1]
        split = eigen_gap_split(spectrum)
        assert 1 <= split <= spectrum.size


class TestPsdProperties:
    @given(matrix=symmetric_matrices())
    @settings(max_examples=40, deadline=None)
    def test_nearest_psd_always_psd(self, matrix):
        assert is_positive_semidefinite(nearest_psd(matrix))

    @given(matrix=symmetric_matrices())
    @settings(max_examples=40, deadline=None)
    def test_nearest_psd_idempotent(self, matrix):
        once = nearest_psd(matrix)
        twice = nearest_psd(once)
        np.testing.assert_allclose(
            once, twice, atol=1e-8 * max(1.0, np.abs(matrix).max())
        )

    @given(matrix=spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_psd_inverse_roundtrip(self, matrix):
        inverse = psd_inverse(matrix)
        np.testing.assert_allclose(
            inverse @ matrix, np.eye(matrix.shape[0]), atol=1e-6
        )


class TestCovarianceProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=5, max_value=60),
           m=st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_sample_covariance_always_psd(self, seed, n, m):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, m)) * rng.uniform(0.5, 5.0)
        assert is_positive_semidefinite(sample_covariance(data))

    @given(matrix=spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_correlation_entries_bounded(self, matrix):
        corr = correlation_from_covariance(matrix)
        assert np.abs(corr).max() <= 1.0 + 1e-12
        np.testing.assert_allclose(np.diag(corr), 1.0)
