"""Property-based tests for the density objects."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.density import (
    GaussianDensity,
    GaussianMixtureDensity,
    HistogramDensity,
    LaplaceDensity,
    UniformDensity,
)

_means = st.floats(min_value=-50.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)
_scales = st.floats(min_value=0.05, max_value=20.0,
                    allow_nan=False, allow_infinity=False)


@st.composite
def densities(draw):
    kind = draw(st.sampled_from(
        ["gaussian", "uniform", "laplace", "mixture", "histogram"]
    ))
    if kind == "gaussian":
        return GaussianDensity(draw(_means), draw(_scales))
    if kind == "uniform":
        low = draw(_means)
        width = draw(_scales)
        return UniformDensity(low, low + width)
    if kind == "laplace":
        return LaplaceDensity(draw(_means), draw(_scales))
    if kind == "mixture":
        k = draw(st.integers(min_value=1, max_value=4))
        return GaussianMixtureDensity(
            weights=[draw(st.floats(min_value=0.1, max_value=1.0))
                     for _ in range(k)],
            means=[draw(_means) for _ in range(k)],
            stds=[draw(_scales) for _ in range(k)],
        )
    edges = np.cumsum(
        [draw(_means)] + [draw(_scales) for _ in range(draw(
            st.integers(min_value=2, max_value=8)))]
    )
    probs = [draw(st.floats(min_value=0.01, max_value=1.0))
             for _ in range(edges.size - 1)]
    return HistogramDensity(edges, probs)


class TestDensityInvariants:
    @given(density=densities())
    @settings(max_examples=60, deadline=None)
    def test_pdf_non_negative(self, density):
        lo, hi = density.support(0.999)
        grid = np.linspace(lo - 1.0, hi + 1.0, 201)
        assert np.all(density.pdf(grid) >= 0.0)

    @given(density=densities())
    @settings(max_examples=40, deadline=None)
    def test_pdf_integrates_to_one_over_wide_support(self, density):
        lo, hi = density.support(0.9999)
        pad = 0.25 * (hi - lo) + 5.0 * density.std
        # Fine grid: step densities (histograms) need the spacing to be
        # much smaller than a bin for the trapezoid sum to converge.
        grid = np.linspace(lo - pad, hi + pad, 100001)
        mass = np.trapezoid(density.pdf(grid), grid)
        assert 0.97 <= mass <= 1.03

    @given(density=densities())
    @settings(max_examples=40, deadline=None)
    def test_sample_mean_tracks_analytic_mean(self, density):
        samples = density.sample(20000, rng=0)
        tolerance = 6.0 * density.std / np.sqrt(20000) + 1e-6
        scale_tolerance = max(tolerance, 0.05 * max(abs(density.mean), 1.0))
        assert abs(samples.mean() - density.mean) <= scale_tolerance

    @given(density=densities())
    @settings(max_examples=40, deadline=None)
    def test_sample_variance_tracks_analytic_variance(self, density):
        samples = density.sample(20000, rng=1)
        assert np.isclose(
            samples.var(), density.variance,
            rtol=0.15, atol=1e-4,
        )

    @given(density=densities(),
           coverage=st.floats(min_value=0.9, max_value=0.9999))
    @settings(max_examples=40, deadline=None)
    def test_support_contains_requested_mass(self, density, coverage):
        lo, hi = density.support(coverage)
        samples = density.sample(5000, rng=2)
        inside = np.mean((samples >= lo) & (samples <= hi))
        assert inside >= coverage - 0.03

    @given(density=densities())
    @settings(max_examples=30, deadline=None)
    def test_variance_non_negative(self, density):
        assert density.variance >= 0.0
        assert density.std >= 0.0
