"""Regenerate the hot-path seed-equivalence fixtures.

The fixtures pin the numerical outputs of every routine touched by the
PR-3 vectorization pass.  They were generated from the commit *before*
the vectorization (``e1c29aa``) so the regression tests in
``tests/unit/test_hotpath_regression.py`` prove the rewritten code
reproduces the original results — bit-identical where the rewrite only
reorders Python-level control flow, and within the documented tolerance
where floating-point summation order legitimately changed (see each
test for the tolerance and its justification).

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/generate_hotpath_fixtures.py

Only rerun this against a commit whose outputs are the accepted
reference; regenerating it against a broken tree would mask regressions.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.linalg.covariance import ledoit_wolf_covariance
from repro.metrics.breach import amplification_factor, worst_case_posterior
from repro.randomization.base import NoiseModel
from repro.randomization.distribution_recon import reconstruct_distribution
from repro.reconstruction.map_gd import MAPGradientReconstructor
from repro.reconstruction.udr import UnivariateReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor
from repro.stats.density import GaussianDensity, GaussianMixtureDensity
from repro.stats.em import UnivariateGaussianMixtureEM
from repro.stats.kde import GaussianKDE

OUT = pathlib.Path(__file__).parent / "hotpath_regression.npz"


def main() -> None:
    fixtures: dict[str, np.ndarray] = {}
    rng = np.random.default_rng(20050703)

    # --- Agrawal-Srikant distribution reconstruction (EM deconvolution)
    original = np.concatenate(
        [rng.normal(-2.0, 0.6, 600), rng.normal(3.0, 1.0, 400)]
    )
    noise = GaussianDensity(0.0, 1.5)
    disguised = original + noise.sample(original.size, rng)
    hist = reconstruct_distribution(disguised, noise, n_bins=48)
    fixtures["recon_edges"] = hist.edges
    fixtures["recon_probs"] = hist.probabilities
    fixtures["recon_input"] = disguised

    # --- UDR with the reconstructed (non-parametric) prior
    table = np.column_stack([disguised[:500], 0.9 * disguised[:500] - 1.0])
    model = NoiseModel(covariance=2.25 * np.eye(2), mean=np.zeros(2))
    udr = UnivariateReconstructor(prior="reconstructed", n_bins=32)
    fixtures["udr_estimate"] = udr.reconstruct(table, model).estimate

    # --- MAP gradient ascent under a mixture prior
    prior = GaussianMixtureDensity(
        weights=[0.6, 0.4], means=[-2.0, 3.0], stds=[0.6, 1.0]
    )
    map_gd = MAPGradientReconstructor(
        [prior, GaussianDensity(0.0, 2.0)], n_starts=4, max_iter=60
    )
    map_table = np.column_stack([disguised[:400], disguised[100:500]])
    fixtures["map_gd_estimate"] = map_gd.reconstruct(map_table, model).estimate

    # --- Gaussian KDE evaluation
    kde_samples = rng.normal(1.0, 2.0, 3000)
    kde = GaussianKDE(kde_samples)
    grid = np.linspace(-8.0, 10.0, 501)
    fixtures["kde_samples"] = kde_samples
    fixtures["kde_grid"] = grid
    fixtures["kde_pdf"] = kde.pdf(grid)
    fixtures["kde_bandwidth"] = np.array([kde.bandwidth])

    # --- Wiener smoother on a slow sinusoid + noise
    t = np.arange(4000, dtype=np.float64)
    signal = np.column_stack(
        [np.sin(2.0 * np.pi * t / 400.0), np.cos(2.0 * np.pi * t / 250.0)]
    ) * 10.0
    series_noise = rng.normal(0.0, 2.0, signal.shape)
    series_model = NoiseModel(covariance=4.0 * np.eye(2), mean=np.zeros(2))
    wiener = WienerSmootherReconstructor(window=21)
    fixtures["wiener_estimate"] = wiener.reconstruct(
        signal + series_noise, series_model
    ).estimate
    fixtures["wiener_input"] = signal + series_noise

    # --- Ledoit-Wolf shrinkage covariance
    lw_data = rng.multivariate_normal(
        np.zeros(6),
        np.diag([9.0, 6.0, 4.0, 1.0, 0.5, 0.25]) + 0.4,
        size=300,
    )
    lw_cov, lw_shrink = ledoit_wolf_covariance(lw_data)
    fixtures["lw_data"] = lw_data
    fixtures["lw_cov"] = lw_cov
    fixtures["lw_shrinkage"] = np.array([lw_shrink])

    # --- EM mixture fit
    em = UnivariateGaussianMixtureEM(2, max_iter=300)
    density = em.fit(original, rng=np.random.default_rng(7))
    fixtures["em_weights"] = density.weights
    fixtures["em_means"] = density.means
    fixtures["em_stds"] = density.stds

    # --- discrete breach metrics
    channel = np.array(
        [
            [0.70, 0.10, 0.05, 0.15],
            [0.10, 0.60, 0.15, 0.15],
            [0.10, 0.15, 0.60, 0.15],
            [0.10, 0.15, 0.20, 0.55],
        ]
    )
    prior_pi = np.array([0.4, 0.3, 0.2, 0.1])
    fixtures["breach_channel"] = channel
    fixtures["breach_prior"] = prior_pi
    fixtures["breach_worst"] = np.array(
        [worst_case_posterior(prior_pi, channel, [0, 2])]
    )
    fixtures["breach_gamma"] = np.array([amplification_factor(channel)])

    np.savez_compressed(OUT, **fixtures)
    print(f"wrote {OUT} ({len(fixtures)} arrays)")


if __name__ == "__main__":
    main()
