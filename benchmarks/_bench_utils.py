"""Output helpers shared by the benchmark modules.

Each benchmark regenerates one of the paper's figures and registers the
rendered table here.  Tables are persisted under ``benchmarks/results/``
immediately; the conftest's ``pytest_terminal_summary`` hook prints every
table registered during the session *after* pytest's output capture has
ended, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
contains the full reproduction record.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Tables emitted during this session, in emission order.
EMITTED: list[tuple[str, str]] = []


def emit_table(name: str, text: str) -> None:
    """Persist a rendered series and queue it for the session summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    EMITTED.append((name, text))
