"""Output helpers shared by the benchmark modules.

Each benchmark regenerates one of the paper's figures and registers the
rendered table here.  Tables are persisted under ``benchmarks/results/``
immediately; the conftest's ``pytest_terminal_summary`` hook prints every
table registered during the session *after* pytest's output capture has
ended, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
contains the full reproduction record.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Tables emitted during this session, in emission order.
EMITTED: list[tuple[str, str]] = []


def emit_table(name: str, text: str) -> None:
    """Persist a rendered series and queue it for the session summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    EMITTED.append((name, text))


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result and queue a summary of it.

    Writes ``results/<name>.json`` and registers a pretty-printed copy
    with the session summary, so JSON benchmarks appear in tee'd logs
    alongside the figure tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    (RESULTS_DIR / f"{name}.json").write_text(text + "\n")
    EMITTED.append((name, f"{name}:\n{text}"))
