"""Ablation A7 — covariance estimator: Theorem 5.1 vs Ledoit-Wolf shrinkage.

The paper's attacks plug a raw sample-covariance estimate (Theorem 5.1,
plus eigenvalue clipping) into eigendecompositions and matrix inverses.
Shrinkage estimators are the textbook fix for small-sample covariance
noise — but the result here is two-sided and spectrum-dependent:

* **spiked** spectra (the paper's two-level designs): clipping already
  regularizes perfectly and linear shrinkage *biases the spikes down* —
  the sample estimator wins;
* **smooth** (decaying) spectra with no spikes to protect: shrinkage
  wins at small n.

Four curves (2 spectra x 2 estimators) over the sample-size sweep.
"""

import numpy as np
import pytest

from repro.data.spectra import decaying_spectrum, two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.api.config import ExperimentSeries
from repro.experiments.reporting import render_series
from repro.linalg.covariance import ledoit_wolf_covariance
from repro.metrics.error import root_mean_square_error
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor

from _bench_utils import emit_table

SAMPLE_SIZES = (45, 90, 180, 500, 2000)
M = 40
N_TRIALS = 3


@pytest.fixture(scope="module")
def ablation():
    spectra = {
        "spiked": two_level_spectrum(
            M, 5, total_variance=100.0 * M, non_principal_value=4.0
        ),
        "smooth": decaying_spectrum(
            M, decay=0.93, total_variance=100.0 * M
        ),
    }
    scheme = AdditiveNoiseScheme(std=5.0)
    curves = {
        f"{shape}/{estimator}": np.zeros(len(SAMPLE_SIZES))
        for shape in spectra
        for estimator in ("sample", "lw")
    }
    estimator_names = {"sample": "sample", "lw": "ledoit-wolf"}
    for shape, spectrum in spectra.items():
        for index, n in enumerate(SAMPLE_SIZES):
            for trial in range(N_TRIALS):
                dataset = generate_dataset(
                    spectrum=spectrum, n_records=n,
                    rng=1000 * index + trial,
                )
                disguised = scheme.disguise(
                    dataset.values, rng=2000 * index + trial
                )
                for short, full in estimator_names.items():
                    attack = BayesEstimateReconstructor(
                        covariance_estimator=full
                    )
                    curves[f"{shape}/{short}"][index] += (
                        root_mean_square_error(
                            dataset.values, attack.reconstruct(disguised)
                        )
                    )
    for key in curves:
        curves[key] /= N_TRIALS
    series = ExperimentSeries(
        name="ablation-shrinkage",
        x_label="records (n)",
        x_values=np.asarray(SAMPLE_SIZES, dtype=float),
        series=curves,
        metadata={"m": M, "noise_std": 5.0, "n_trials": N_TRIALS},
    )
    emit_table(
        "ablation_shrinkage",
        render_series(
            series,
            title=(
                "Ablation A7: BE-DR with sample vs Ledoit-Wolf covariance "
                "across spectrum shapes"
            ),
        ),
    )
    return series


def test_shrinkage_ablation(benchmark, ablation):
    # Spiked spectrum: the paper's estimator (clipped sample) wins or ties
    # at every n.
    spiked_gap = (
        ablation.curve("spiked/lw") - ablation.curve("spiked/sample")
    )
    assert np.all(spiked_gap >= -0.05)
    # Smooth spectrum at the smallest n: shrinkage wins.
    assert (
        ablation.curve("smooth/lw")[0]
        < ablation.curve("smooth/sample")[0]
    )
    # Estimator choice washes out at large n.
    assert abs(spiked_gap[-1]) < 0.1

    rng = np.random.default_rng(0)
    data = rng.standard_normal((500, M)) * 10.0
    estimate = benchmark.pedantic(
        lambda: ledoit_wolf_covariance(data), rounds=5, iterations=1
    )
    assert estimate[0].shape == (M, M)
