"""Figure 2 — RMSE vs number of principal components (Experiment 2, §7.3).

m = 100 fixed, p swept from 2 to 100 at constant trace; correlations fall
as p grows, so every correlation-based attack degrades while UDR stays
flat.  Benchmarks the covariance-estimate + eigendecomposition step that
dominates the sweep.
"""

import pytest

from repro.api.config import SweepConfig
from repro.experiments.reporting import render_series
from repro.experiments.runners import run_experiment2_principal_components
from repro.linalg.covariance import covariance_from_disguised
from repro.linalg.eigen import sorted_eigh

from _bench_utils import emit_table

CONFIG = SweepConfig(n_records=2000, n_trials=2, seed=2005)


@pytest.fixture(scope="module")
def figure2():
    series = run_experiment2_principal_components(
        CONFIG,
        principal_counts=[2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
    )
    emit_table(
        "figure2",
        render_series(
            series,
            title=(
                "Figure 2 (reproduced): RMSE vs number of principal "
                "components"
            ),
        ),
    )
    return series


@pytest.fixture(scope="module")
def disguised_sample():
    from repro.data.spectra import two_level_spectrum
    from repro.data.synthetic import generate_dataset
    from repro.randomization.additive import AdditiveNoiseScheme

    spectrum = two_level_spectrum(
        100, 20, total_variance=10000.0, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=2000, rng=0)
    return AdditiveNoiseScheme(std=5.0).disguise(dataset.values, rng=1)


def test_figure2_shape_and_timing(benchmark, figure2, disguised_sample):
    udr = figure2.curve("UDR")
    assert udr.max() - udr.min() < 0.4, "UDR must stay flat"
    for method in ("SF", "PCA-DR", "BE-DR"):
        curve = figure2.curve(method)
        assert curve[-1] > curve[0] + 1.0, (
            f"{method} must degrade as p grows"
        )
    # At p = m, PCA-DR keeps everything and falls back to NDR (sigma = 5).
    assert abs(figure2.curve("PCA-DR")[-1] - 5.0) < 0.25
    # BE-DR stays best throughout (Section 7.3).
    be = figure2.curve("BE-DR")
    assert (be <= figure2.curve("PCA-DR") + 0.25).all()
    assert (be <= figure2.curve("SF") + 0.25).all()

    def theorem51_plus_eigh():
        covariance = covariance_from_disguised(
            disguised_sample.disguised, 25.0
        )
        return sorted_eigh(covariance)

    decomposition = benchmark.pedantic(
        theorem51_plus_eigh, rounds=5, iterations=1
    )
    assert decomposition.dim == 100
