"""Ablation A4 — attack accuracy vs sample size.

Fixes the Figure-1 workload at m = 50 and sweeps the number of published
records.  More records sharpen the adversary's covariance estimate, so
reconstruction improves and then saturates at the population-covariance
limit — randomized data gets *less* private as the table grows.
"""

import numpy as np
import pytest

from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.experiments.ablations import run_ablation_samplesize
from repro.experiments.reporting import render_series
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor

from _bench_utils import emit_table

M, P = 50, 5


@pytest.fixture(scope="module")
def ablation():
    series = run_ablation_samplesize(
        sample_sizes=(100, 250, 500, 1000, 2500, 5000, 10000),
        n_attributes=M,
        n_principal=P,
        seed=42,
    )
    emit_table(
        "ablation_samplesize",
        render_series(
            series, title="Ablation A4: reconstruction accuracy vs n"
        ),
    )
    return series


def test_samplesize_ablation(benchmark, ablation):
    be = ablation.curve("BE-DR")
    # Improves with n...
    assert be[-1] < be[0] - 0.2
    # ...and saturates: the last doubling buys almost nothing.
    assert abs(be[-1] - be[-2]) < 0.1
    # The correlation attack dominates UDR at every sample size here.
    assert np.all(be <= ablation.curve("UDR") + 0.05)

    spectrum = two_level_spectrum(
        M, P, total_variance=100.0 * M, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=10000, rng=0)
    scheme = AdditiveNoiseScheme(std=5.0)
    disguised = scheme.disguise(dataset.values, rng=1)
    attack = BayesEstimateReconstructor()

    result = benchmark.pedantic(
        lambda: attack.reconstruct(disguised), rounds=3, iterations=1
    )
    assert result.estimate.shape == (10000, M)
