"""Extension bench — MASK association mining (related work, Section 2).

The categorical branch of randomization the paper surveys: transactions
are bit-flipped (randomized response), yet frequent itemsets remain
minable by inverting the flip channel.  This bench sweeps the retention
probability ``p`` and reports (a) the recall/precision of disguised-data
mining vs the plain-data truth and (b) the worst support-estimate error —
the categorical analogue of the utility tables in Section 8.1.
"""

import numpy as np
import pytest

from repro.api.config import ExperimentSeries
from repro.experiments.reporting import render_series
from repro.mining.association import AprioriMiner, MaskScheme

from _bench_utils import emit_table

KEEP_PROBABILITIES = (0.95, 0.9, 0.8, 0.7, 0.6)
MIN_SUPPORT = 0.3


def _baskets(n=30000, seed=0):
    rng = np.random.default_rng(seed)
    baskets = np.zeros((n, 8), dtype=np.int8)
    baskets[:, 0] = rng.random(n) < 0.5
    copy = rng.random(n) < 0.9
    baskets[:, 1] = np.where(copy, baskets[:, 0], rng.random(n) < 0.5)
    for item, support in zip(
        range(2, 8), (0.45, 0.4, 0.35, 0.25, 0.15, 0.05)
    ):
        baskets[:, item] = rng.random(n) < support
    return baskets


@pytest.fixture(scope="module")
def sweep():
    baskets = _baskets()
    miner = AprioriMiner(MIN_SUPPORT, max_size=3)
    truth = {fs.items: fs.support for fs in miner.mine_plain(baskets)}
    recall, precision, worst_error = [], [], []
    for index, p in enumerate(KEEP_PROBABILITIES):
        scheme = MaskScheme(p)
        disguised = scheme.disguise(baskets, rng=index + 1)
        mined = {
            fs.items: fs.support
            for fs in miner.mine_disguised(disguised, scheme)
        }
        true_sets = set(truth)
        mined_sets = set(mined)
        recall.append(
            len(true_sets & mined_sets) / len(true_sets)
        )
        precision.append(
            len(true_sets & mined_sets) / max(len(mined_sets), 1)
        )
        common = true_sets & mined_sets
        worst_error.append(
            max(abs(mined[s] - truth[s]) for s in common) if common else 1.0
        )
    series = ExperimentSeries(
        name="mask-mining",
        x_label="retention probability p",
        x_values=np.asarray(KEEP_PROBABILITIES),
        series={
            "recall": recall,
            "precision": precision,
            "max_support_error": worst_error,
        },
        metadata={"min_support": MIN_SUPPORT, "n_true_itemsets": len(truth)},
    )
    emit_table(
        "mask_mining",
        render_series(
            series,
            title=(
                "Extension: MASK association mining — itemset recovery "
                "vs retention probability"
            ),
        ),
    )
    return series


def test_mask_mining(benchmark, sweep):
    # Gentle randomization: perfect recovery of the frequent itemsets.
    assert sweep.curve("recall")[0] > 1.0 - 1e-12
    assert sweep.curve("precision")[0] > 1.0 - 1e-12
    # Support estimates stay unbiased but noisier as p falls.
    errors = sweep.curve("max_support_error")
    assert errors[0] < 0.02
    assert errors[-1] >= errors[0]

    baskets = _baskets(n=10000, seed=3)
    scheme = MaskScheme(0.8)
    disguised = scheme.disguise(baskets, rng=4)
    miner = AprioriMiner(MIN_SUPPORT, max_size=3)

    frequent = benchmark.pedantic(
        lambda: miner.mine_disguised(disguised, scheme),
        rounds=3,
        iterations=1,
    )
    assert any(len(fs) == 2 for fs in frequent)
