"""Ablation A6 — non-normal marginals (Section 6's normality assumption).

BE-DR is derived for multivariate-normal data; Section 6 says the
assumption "can be relaxed".  This ablation keeps the correlation
structure fixed (Gaussian copula over a two-level latent spectrum) and
swaps the marginal shapes: normal, lognormal (skewed), uniform
(light-tailed), bimodal (clustered).  The reproduction question: how much
of the correlation attack's edge over UDR survives model
misspecification?
"""

import numpy as np
import pytest

from repro.data.copula import GaussianCopulaGenerator
from repro.data.spectra import two_level_spectrum
from repro.experiments.ablations import run_ablation_marginals
from repro.experiments.reporting import render_series
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor

from _bench_utils import emit_table


@pytest.fixture(scope="module")
def ablation():
    series = run_ablation_marginals(
        marginals=("normal", "lognormal", "uniform", "bimodal"),
        n_attributes=30,
        n_principal=4,
        n_records=2000,
        seed=11,
    )
    emit_table(
        "ablation_marginals",
        render_series(
            series,
            title=(
                "Ablation A6: attack accuracy vs marginal shape "
                "(Gaussian copula, fixed correlation)"
            ),
        ),
    )
    return series


def test_marginals_ablation(benchmark, ablation):
    be = ablation.curve("BE-DR")
    udr = ablation.curve("UDR")
    # BE-DR keeps an edge over UDR for every marginal shape...
    assert np.all(be < udr), ablation.metadata["marginals"]
    # ...but pays for misspecification: every non-normal shape is harder
    # than the normal baseline.
    assert min(be[1:]) > be[0]

    spectrum = two_level_spectrum(
        30, 4, total_variance=30.0, non_principal_value=0.04
    )
    generator = GaussianCopulaGenerator.from_spectrum(
        spectrum, marginal="lognormal", target_std=10.0, rng=11
    )
    table = generator.sample(2000, rng=12)
    disguised = AdditiveNoiseScheme(std=5.0).disguise(table, rng=13)
    attack = BayesEstimateReconstructor()

    result = benchmark.pedantic(
        lambda: attack.reconstruct(disguised), rounds=5, iterations=1
    )
    assert result.estimate.shape == (2000, 30)
