"""Figure 1 — RMSE vs number of attributes (Experiment 1, Section 7.2).

Regenerates the full sweep at paper scale (m = 5..100, p = 5 fixed,
trace-preserving spectra per Eq. 12), prints the series, asserts the
published shape, and benchmarks one full sweep point (data generation +
disguise + the four attacks) at m = 100.
"""

import pytest

from repro.core.pipeline import AttackPipeline
from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.api.config import SweepConfig
from repro.experiments.reporting import render_series
from repro.experiments.runners import run_experiment1_attributes
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
)
from repro.reconstruction.udr import UnivariateReconstructor

from _bench_utils import emit_table

CONFIG = SweepConfig(n_records=2000, n_trials=2, seed=2005)


@pytest.fixture(scope="module")
def figure1():
    series = run_experiment1_attributes(
        CONFIG,
        attribute_counts=[5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
    )
    emit_table(
        "figure1",
        render_series(
            series,
            title="Figure 1 (reproduced): RMSE vs number of attributes",
        ),
    )
    return series


def _one_sweep_point():
    spectrum = two_level_spectrum(
        100, 5, total_variance=10000.0, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=2000, rng=0)
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=5.0),
        {
            "UDR": UnivariateReconstructor(),
            "SF": SpectralFilteringReconstructor(),
            "PCA-DR": PCAReconstructor(),
            "BE-DR": BayesEstimateReconstructor(),
        },
    )
    return pipeline.run(dataset, rng=1)


def test_figure1_shape_and_timing(benchmark, figure1):
    # The paper's claims, at full scale.
    udr = figure1.curve("UDR")
    assert udr.max() - udr.min() < 0.35, "UDR must stay flat (Eq. 12)"
    for method in ("SF", "PCA-DR", "BE-DR"):
        curve = figure1.curve(method)
        assert curve[-1] < curve[0] - 1.0, (
            f"{method} must improve as correlations grow"
        )
    assert figure1.curve("BE-DR").mean() <= figure1.curve("PCA-DR").mean() + 0.02
    assert figure1.curve("BE-DR").mean() < figure1.curve("SF").mean()

    report = benchmark.pedantic(_one_sweep_point, rounds=3, iterations=1)
    assert report.rmse("BE-DR") < report.rmse("UDR")
