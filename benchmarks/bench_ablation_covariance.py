"""Ablation A3 — true vs estimated covariance (Section 5.3's simplification).

The paper analyzes PCA-DR assuming the *true* covariance ("there are only
minor differences"); deployed attacks must estimate it via Theorem 5.1.
This ablation quantifies that gap for PCA-DR and BE-DR as the sample size
grows, verifying the paper's claim that the estimate converges.
"""

import numpy as np
import pytest

from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.experiments.ablations import run_ablation_covariance
from repro.experiments.reporting import render_series
from repro.linalg.covariance import covariance_from_disguised
from repro.randomization.additive import AdditiveNoiseScheme

from _bench_utils import emit_table

M, P = 40, 5


@pytest.fixture(scope="module")
def ablation():
    series = run_ablation_covariance(
        sample_sizes=(100, 200, 500, 1000, 2000, 5000),
        n_attributes=M,
        n_principal=P,
        seed=42,
    )
    emit_table(
        "ablation_covariance",
        render_series(
            series,
            title="Ablation A3: Theorem-5.1 estimate vs oracle covariance",
        ),
    )
    return series


def test_covariance_ablation(benchmark, ablation):
    for family in ("PCA", "BE"):
        estimated = ablation.curve(f"{family}-estimated")
        oracle = ablation.curve(f"{family}-oracle")
        # Oracle knowledge can only help (up to small sampling noise)...
        assert np.all(oracle <= estimated + 0.15), family
        # ...and the gap closes as n grows (Theorem 5.1's consistency).
        gap_small_n = estimated[0] - oracle[0]
        gap_large_n = estimated[-1] - oracle[-1]
        assert gap_large_n <= max(gap_small_n, 0.05), family
        assert abs(gap_large_n) < 0.1, family

    # Benchmark the Theorem-5.1 estimation itself at the largest n.
    spectrum = two_level_spectrum(
        M, P, total_variance=100.0 * M, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=5000, rng=0)
    disguised = AdditiveNoiseScheme(std=5.0).disguise(dataset.values, rng=1)

    estimate = benchmark.pedantic(
        lambda: covariance_from_disguised(disguised.disguised, 25.0),
        rounds=5,
        iterations=1,
    )
    assert estimate.shape == (M, M)
