"""Pytest hooks for the benchmark suite.

Prints every figure/ablation table registered via
:func:`_bench_utils.emit_table` after the test session, outside pytest's
output capture, so the tables land in any tee'd log.
"""

import _bench_utils


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _bench_utils.EMITTED:
        return
    terminalreporter.section("regenerated paper figures and ablations")
    for _, text in _bench_utils.EMITTED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
