"""Figure 4 — the correlated-noise defense (Experiment 4, Section 8.2).

m = 100 with 50 principal components; noise reuses the data eigenvectors
with its eigenvalue profile swept from proportional (similar) through
flat (independent — the figure's vertical line) to reversed, at constant
noise power.  X-axis is the measured Definition-8.1 dissimilarity.
Benchmarks the noise design + disguise step.
"""

import pytest

from repro.core.defense import NoiseDesigner
from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.api.config import SweepConfig
from repro.experiments.reporting import render_series
from repro.experiments.runners import run_experiment4_correlated_noise

from _bench_utils import emit_table

CONFIG = SweepConfig(n_records=2000, n_trials=2, seed=2005)


@pytest.fixture(scope="module")
def figure4():
    series = run_experiment4_correlated_noise(
        CONFIG,
        profiles=[0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0],
    )
    emit_table(
        "figure4",
        render_series(
            series,
            title=(
                "Figure 4 (reproduced): RMSE vs correlation dissimilarity "
                "of noise (vertical line = independent noise, profile 1.0)"
            ),
        ),
    )
    return series


def test_figure4_shape_and_timing(benchmark, figure4):
    profiles = figure4.metadata["profiles"]
    independent = profiles.index(1.0)

    for method in ("PCA-DR", "BE-DR"):
        curve = figure4.curve(method)
        # Matched noise (dissimilarity 0) preserves the most privacy.
        assert curve[0] == curve.max(), method
        # Left of the line: correlated noise strictly beats independent.
        assert curve[0] > curve[independent] + 0.3, method
        # Right of the line: attacks keep improving.
        assert curve[-1] < curve[independent] - 0.5, method

    # SF's independent-noise assumption breaks right of the line: its
    # improvement stalls relative to PCA-DR (the paper's observation).
    sf = figure4.curve("SF")
    pca = figure4.curve("PCA-DR")
    sf_gain = sf[independent] - sf[-1]
    pca_gain = pca[independent] - pca[-1]
    assert sf_gain < pca_gain - 0.5

    # Benchmark: designing and applying the defense at one sweep point.
    spectrum = two_level_spectrum(
        100, 50, total_variance=10000.0, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=2000, rng=0)
    designer = NoiseDesigner(dataset.covariance_model, noise_power=2500.0)

    def design_and_disguise():
        designed = designer.design(0.5)
        return designed.scheme.disguise(dataset.values, rng=1)

    disguised = benchmark.pedantic(design_and_disguise, rounds=3,
                                   iterations=1)
    assert disguised.n_attributes == 100
