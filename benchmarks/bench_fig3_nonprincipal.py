"""Figure 3 — RMSE vs non-principal eigenvalue (Experiment 3, §7.4).

m = 100, 20 principal eigenvalues fixed at 400, the other 80 swept from
1 to 50.  The signature result: SF and PCA-DR cross *above* the UDR
baseline (they discard real signal), while BE-DR converges to UDR from
below.  Benchmarks the BE-DR reconstruction at full scale.
"""

import numpy as np
import pytest

from repro.api.config import SweepConfig
from repro.experiments.reporting import render_series
from repro.experiments.runners import run_experiment3_nonprincipal_eigenvalues
from repro.reconstruction.bedr import BayesEstimateReconstructor

from _bench_utils import emit_table

CONFIG = SweepConfig(n_records=2000, n_trials=2, seed=2005)


@pytest.fixture(scope="module")
def figure3():
    series = run_experiment3_nonprincipal_eigenvalues(
        CONFIG,
        eigenvalues=[1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50],
    )
    emit_table(
        "figure3",
        render_series(
            series,
            title=(
                "Figure 3 (reproduced): RMSE vs eigenvalue of the "
                "non-principal components"
            ),
        ),
    )
    return series


@pytest.fixture(scope="module")
def disguised_sample():
    from repro.data.spectra import two_level_spectrum
    from repro.data.synthetic import generate_dataset
    from repro.randomization.additive import AdditiveNoiseScheme

    spectrum = two_level_spectrum(
        100, 20, principal_value=400.0, non_principal_value=25.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=2000, rng=0)
    return AdditiveNoiseScheme(std=5.0).disguise(dataset.values, rng=1)


def test_figure3_shape_and_timing(benchmark, figure3, disguised_sample):
    udr = figure3.curve("UDR")
    pca = figure3.curve("PCA-DR")
    sf = figure3.curve("SF")
    be = figure3.curve("BE-DR")

    # High correlation end: filtering attacks win, SF ~ PCA-DR.
    assert pca[0] < udr[0] - 1.0
    assert abs(sf[0] - pca[0]) < 0.2
    # Low correlation end: SF and PCA-DR cross above UDR...
    assert pca[-1] > udr[-1]
    assert sf[-1] > udr[-1]
    # ...but BE-DR never does (converges to UDR from below).
    assert np.all(be <= udr + 0.1)

    attack = BayesEstimateReconstructor()
    result = benchmark.pedantic(
        lambda: attack.reconstruct(disguised_sample), rounds=5, iterations=1
    )
    assert result.estimate.shape == (2000, 100)
