"""Ablation A5 — data-mining utility of randomized data (Section 8.1).

The randomization bargain: records are perturbed, distributions survive.
A Gaussian naive Bayes classifier is trained three ways — on the private
data (oracle), on disguised data naively, and on disguised data with the
Theorem-5.1/8.2 moment correction — under both the baseline i.i.d. scheme
and the improved correlated-noise scheme, and evaluated on clean held-out
data.  The corrected model must track the oracle under *both* schemes:
the defense does not break legitimate mining.
"""

import numpy as np
import pytest

from repro.experiments.ablations import run_ablation_utility
from repro.experiments.reporting import render_series
from repro.mining.naive_bayes import GaussianNaiveBayes
from repro.randomization.additive import AdditiveNoiseScheme

from _bench_utils import emit_table

NOISE_STD = 4.0
M = 8


@pytest.fixture(scope="module")
def utility():
    series = run_ablation_utility(
        n_train=6000,
        n_test=3000,
        n_attributes=M,
        noise_std=NOISE_STD,
        seed=0,
    )
    emit_table(
        "utility",
        render_series(
            series,
            title=(
                "Ablation A5: naive-Bayes accuracy — original vs "
                "disguised-trained models"
            ),
        ),
    )
    return series


def test_utility_preserved(benchmark, utility):
    original = utility.curve("original")
    corrected = utility.curve("disguised_corrected")
    # Under both schemes the corrected model tracks the oracle within
    # 3 accuracy points — Section 8.1's utility claim.
    assert np.all(corrected >= original - 0.03)
    # And the models are actually good (separable classes).
    assert np.all(original > 0.9)

    rng = np.random.default_rng(0)
    train_x = rng.normal(0.0, 5.0, size=(6000, M))
    train_x[3000:] += 6.0
    train_y = np.array([0] * 3000 + [1] * 3000)
    disguised = AdditiveNoiseScheme(std=NOISE_STD).disguise(train_x, rng=1)

    def train_corrected():
        return GaussianNaiveBayes().fit_disguised(
            disguised.disguised,
            train_y,
            NOISE_STD**2 * np.eye(M),
        )

    model = benchmark.pedantic(train_corrected, rounds=5, iterations=1)
    assert model.classes.size == 2
