"""Theorem 5.2 verification (ablation A1 in DESIGN.md).

Empirical mean square of the projected noise ``R Q_p Q_p^T`` against the
analytic ``sigma^2 * p / m``, across p, plus a micro-benchmark of the
projection itself.
"""

import numpy as np
import pytest

from repro.experiments.reporting import render_series
from repro.experiments.runners import run_theorem52_verification
from repro.linalg.gram_schmidt import random_orthogonal

from _bench_utils import emit_table


@pytest.fixture(scope="module")
def theorem52():
    series = run_theorem52_verification(
        n_attributes=100,
        component_counts=(5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
        noise_std=5.0,
        n_records=5000,
        seed=52,
    )
    emit_table(
        "theorem52",
        render_series(
            series,
            title=(
                "Theorem 5.2 check: mean square of R Q_p Q_p^T vs "
                "sigma^2 * p / m"
            ),
        ),
    )
    return series


def test_theorem52_accuracy_and_timing(benchmark, theorem52):
    np.testing.assert_allclose(
        theorem52.curve("empirical"),
        theorem52.curve("analytic"),
        rtol=0.05,
    )

    basis = random_orthogonal(100, rng=0)
    q = basis[:, :20]
    noise = np.random.default_rng(1).normal(0.0, 5.0, size=(5000, 100))

    def project():
        return noise @ q @ q.T

    projected = benchmark.pedantic(project, rounds=5, iterations=1)
    assert projected.shape == (5000, 100)
