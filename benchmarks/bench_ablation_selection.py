"""Ablation A2 — PCA-DR component-selection strategies (§5.2.2 fn. 1).

Compares the three selection rules the paper lists (fixed count, energy
fraction, largest gap) on the Figure-1 style two-level workload and on a
decaying spectrum with no clean gap.  The paper uses largest-gap; this
ablation shows when that choice matters.
"""

import pytest

from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.experiments.ablations import run_ablation_selection
from repro.experiments.reporting import render_series
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import LargestGapSelector

from _bench_utils import emit_table


@pytest.fixture(scope="module")
def ablation():
    series = run_ablation_selection(
        n_attributes=60, n_principal=5, n_records=2000, seed=42
    )
    emit_table(
        "ablation_selection",
        render_series(
            series, title="Ablation A2: PCA-DR component-selection rules"
        ),
    )
    return series


def test_selection_ablation(benchmark, ablation):
    # Two-level spectrum: the largest-gap rule matches the oracle (the
    # paper's justification for using it).
    gap_two_level = ablation.curve("largest-gap")[0]
    oracle_two_level = ablation.curve("oracle-fixed(5)")[0]
    assert gap_two_level == pytest.approx(oracle_two_level, abs=0.05)

    # Decaying spectrum (no clean gap): strategies genuinely diverge.
    decaying = [ablation.curve(name)[1] for name in ablation.methods]
    assert max(decaying) - min(decaying) > 0.05

    spectrum = two_level_spectrum(
        60, 5, total_variance=6000.0, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=2000, rng=0)
    scheme = AdditiveNoiseScheme(std=5.0)
    disguised = scheme.disguise(dataset.values, rng=1)
    attack = PCAReconstructor(LargestGapSelector())

    result = benchmark.pedantic(
        lambda: attack.reconstruct(disguised), rounds=5, iterations=1
    )
    assert result.details["n_components"] == 5
