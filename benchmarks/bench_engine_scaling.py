"""Engine scaling — serial vs process-pool wall-clock on Figure 1.

Runs a Figure-1-sized sweep (all eleven attribute counts, two trials per
point) through the serial backend and through ``ParallelExecutor`` at
several worker counts, asserts the parallel series are bit-identical to
the serial baseline, and records wall-clock times and speedups as JSON
under ``benchmarks/results/``.

The speedup assertion (> 1.5x at 4 workers) only applies on machines
that actually have >= 4 usable CPUs; the determinism assertions always
apply.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import (
    Engine,
    ParallelExecutor,
    SerialExecutor,
    default_worker_count,
)
from repro.api.config import SweepConfig
from repro.experiments.runners import run_experiment1_attributes

from _bench_utils import emit_json

CONFIG = SweepConfig(n_records=2000, n_trials=2, seed=2005)
ATTRIBUTE_COUNTS = [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
WORKER_COUNTS = (2, 4)


def _timed_run(engine: Engine):
    start = time.perf_counter()
    series = run_experiment1_attributes(
        CONFIG, attribute_counts=ATTRIBUTE_COUNTS, engine=engine
    )
    return series, time.perf_counter() - start


def test_engine_scaling_speedup_and_determinism():
    usable_cpus = default_worker_count()
    serial_series, serial_seconds = _timed_run(Engine(SerialExecutor()))

    runs = {"serial": {"workers": 1, "seconds": serial_seconds, "speedup": 1.0}}
    speedups = {}
    for workers in WORKER_COUNTS:
        engine = Engine(ParallelExecutor(workers=workers))
        series, seconds = _timed_run(engine)
        for method in serial_series.methods:
            np.testing.assert_array_equal(
                serial_series.curve(method),
                series.curve(method),
                err_msg=f"parallel ({workers} workers) diverged from serial",
            )
        speedups[workers] = serial_seconds / seconds
        runs[f"parallel-{workers}"] = {
            "workers": workers,
            "seconds": seconds,
            "speedup": speedups[workers],
        }

    emit_json(
        "engine_scaling",
        {
            "experiment": "figure1",
            "n_records": CONFIG.n_records,
            "n_trials": CONFIG.n_trials,
            "sweep_points": len(ATTRIBUTE_COUNTS),
            "jobs": len(ATTRIBUTE_COUNTS) * CONFIG.n_trials,
            "usable_cpus": usable_cpus,
            "runs": runs,
        },
    )

    if usable_cpus >= 4:
        assert speedups[4] > 1.5, (
            f"expected >1.5x speedup at 4 workers on {usable_cpus} CPUs, "
            f"got {speedups[4]:.2f}x"
        )
