"""Micro-benchmarks of each attack's runtime at paper scale.

Not a paper figure — an engineering companion table answering "what does
each reconstruction cost?" at the default experiment size (n = 2000,
m = 100).  Useful when scaling the attacks to larger tables.
"""

import pytest

from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
)
from repro.reconstruction.udr import UnivariateReconstructor


@pytest.fixture(scope="module")
def disguised():
    spectrum = two_level_spectrum(
        100, 5, total_variance=10000.0, non_principal_value=4.0
    )
    dataset = generate_dataset(spectrum=spectrum, n_records=2000, rng=0)
    return AdditiveNoiseScheme(std=5.0).disguise(dataset.values, rng=1)


@pytest.mark.parametrize(
    "attack",
    [
        NoiseDistributionReconstructor(),
        UnivariateReconstructor(prior="gaussian"),
        SpectralFilteringReconstructor(),
        PCAReconstructor(),
        BayesEstimateReconstructor(),
    ],
    ids=["NDR", "UDR", "SF", "PCA-DR", "BE-DR"],
)
def test_attack_runtime(benchmark, disguised, attack):
    result = benchmark.pedantic(
        lambda: attack.reconstruct(disguised), rounds=5, iterations=1
    )
    assert result.estimate.shape == (2000, 100)
