"""Sample dependency: de-noising randomized time series (Section 3).

Attribute correlation is only one of the paper's disclosure factors;
serial dependency is another: "for certain types of data, such as the
time series data, there exists serial dependency among the samples ...
various techniques are available from the signal processing literature
to de-noise the contaminated signals."

This example randomizes a strongly autocorrelated sensor-like series and
shows the Wiener-smoother attack recovering it, with the attack's edge
growing as the serial correlation strengthens.

Run:  python examples/timeseries_denoising.py
"""

import numpy as np

import repro


def main() -> None:
    sigma = 2.0
    scheme = repro.AdditiveNoiseScheme(std=sigma)
    threat = repro.ThreatModel(
        exploits_correlations=False, exploits_serial_dependency=True
    )
    attacks = threat.build_attacks()

    print(
        "Smoother attacks on randomized AR(1) series "
        f"(noise sigma = {sigma:g}):\n"
    )
    print(
        f"{'phi':>6} {'NDR RMSE':>10} {'UDR RMSE':>10} "
        f"{'Wiener RMSE':>12} {'Kalman RMSE':>12} {'noise removed':>14}"
    )
    print("-" * 70)

    for phi in (0.0, 0.5, 0.8, 0.95, 0.99):
        generator = repro.VectorAutoregressiveGenerator(
            phi if phi > 0 else 1e-9, innovation_std=1.0, n_channels=1
        )
        series = generator.sample(8000, rng=3)
        disguised = scheme.disguise(series, rng=4)
        outcomes = repro.evaluate_attacks(disguised, attacks)
        removed = 1.0 - (outcomes["Kalman"].rmse / outcomes["NDR"].rmse) ** 2
        print(
            f"{phi:>6.2f} {outcomes['NDR'].rmse:>10.3f} "
            f"{outcomes['UDR'].rmse:>10.3f} "
            f"{outcomes['Wiener'].rmse:>12.3f} "
            f"{outcomes['Kalman'].rmse:>12.3f} {removed:>13.0%}"
        )

    # Cross-channel coupling: only the joint state-space model sees it.
    coupled = repro.VectorAutoregressiveGenerator(
        np.array([[0.85, 0.3], [0.0, 0.9]]), innovation_std=1.0
    )
    series = coupled.sample(8000, rng=5)
    disguised = scheme.disguise(series, rng=6)
    outcomes = repro.evaluate_attacks(disguised, attacks)
    print(
        "\nCoupled VAR(1) (channel 1 drives channel 0): "
        f"Wiener {outcomes['Wiener'].rmse:.3f} vs "
        f"Kalman {outcomes['Kalman'].rmse:.3f}"
    )
    print(
        "\nBoth smoothers are BE-DR rotated into the time axis: the same "
        "posterior-mean"
    )
    print(
        "formula, conditioning on neighbouring samples instead of "
        "neighbouring attributes."
    )
    print(
        "The Kalman/RTS variant models all channels jointly, so "
        "cross-series correlation"
    )
    print(
        "compounds with serial correlation — the more structure, the less "
        "privacy."
    )


if __name__ == "__main__":
    main()
