"""Publisher-side walkthrough of the Section 8 defense.

The paper's fix for correlation attacks: make the noise correlate like
the data.  This example takes the publisher's point of view:

1. Sweep the noise eigenvalue profile from "matches the data" through
   "independent" to "anti-matched", at constant noise power.
2. For each design, measure (a) privacy — the best attacker's RMSE — and
   (b) utility — how well a data miner can still recover the original
   covariance via Theorem 8.2 and train a classifier from recovered
   moments.

The punchline is the paper's: matched noise maximizes attacker error at
zero cost to distribution-level utility.

Run:  python examples/correlated_noise_defense.py
"""

import numpy as np

import repro
from repro.linalg.covariance import covariance_from_disguised
from repro.mining.naive_bayes import GaussianNaiveBayes


def covariance_recovery_error(disguised, noise_cov, truth) -> float:
    """Relative Frobenius error of the Theorem-8.2 covariance recovery."""
    recovered = covariance_from_disguised(disguised, noise_cov)
    return float(
        np.linalg.norm(recovered - truth, "fro") / np.linalg.norm(truth, "fro")
    )


def classifier_utility(disguised, labels, noise_cov, test_x, test_y) -> float:
    """Accuracy of a naive Bayes trained on moment-corrected disguised data."""
    model = GaussianNaiveBayes().fit_disguised(disguised, labels, noise_cov)
    return model.accuracy(test_x, test_y)


def main() -> None:
    m, n = 24, 4000
    sigma = 5.0
    spectrum = repro.two_level_spectrum(
        m, 6, total_variance=100.0 * m, non_principal_value=4.0
    )
    dataset = repro.generate_dataset(
        spectrum=spectrum, n_records=n, rng=0
    )
    # A label correlated with the first principal direction, so the
    # utility check reflects structure the noise could destroy.
    direction = dataset.covariance_model.eigenvectors[:, 0]
    scores = dataset.values @ direction
    labels = (scores > np.median(scores)).astype(int)
    test = repro.generate_dataset(
        covariance_model=dataset.covariance_model, n_records=2000, rng=99
    )
    test_labels = (test.values @ direction > np.median(scores)).astype(int)

    designer = repro.NoiseDesigner(
        dataset.covariance_model, noise_power=m * sigma**2
    )
    attacks = {
        "SF": repro.SpectralFilteringReconstructor(),
        "PCA-DR": repro.PCAReconstructor(),
        "BE-DR": repro.BayesEstimateReconstructor(),
    }

    print(
        "Noise design sweep (constant power = m * sigma^2, "
        f"sigma = {sigma:g}):\n"
    )
    header = (
        f"{'profile':>8} {'dissim.':>8} {'best attack RMSE':>17} "
        f"{'cov recovery err':>17} {'classifier acc':>15}"
    )
    print(header)
    print("-" * len(header))

    for profile in (0.0, 0.5, 1.0, 1.5, 2.0):
        designed = designer.design(profile)
        disguised = designed.scheme.disguise(dataset.values, rng=7)
        outcomes = repro.evaluate_attacks(disguised, attacks)
        best_rmse = min(outcome.rmse for outcome in outcomes.values())
        recovery = covariance_recovery_error(
            disguised.disguised,
            designed.scheme.covariance,
            dataset.population_covariance,
        )
        accuracy = classifier_utility(
            disguised.disguised,
            labels,
            designed.scheme.covariance,
            test.values,
            test_labels,
        )
        is_baseline = abs(profile - 1.0) < 1e-12
        tag = "  <- independent (baseline)" if is_baseline else ""
        print(
            f"{profile:>8.2f} {designed.dissimilarity:>8.4f} "
            f"{best_rmse:>17.3f} {recovery:>17.4f} {accuracy:>15.3f}{tag}"
        )

    print(
        "\nReading the table: moving from the independent baseline "
        "(profile 1.0) to matched"
    )
    print(
        "noise (profile 0.0) raises the best attacker's error — more "
        "privacy — while the"
    )
    print(
        "Theorem-8.2 covariance recovery and the classifier trained on "
        "recovered moments"
    )
    print(
        "stay essentially unchanged: the defense costs distribution-level "
        "utility nothing."
    )


if __name__ == "__main__":
    main()
