"""Beyond Gaussian priors: distribution reconstruction + numerical MAP.

Section 6 derives BE-DR in closed form for multivariate normal data and
notes that other distributions need numerical methods ("such as Gradient
descent") — deferred to future work.  This example implements that path
for a bimodal attribute (e.g. a lab value with healthy and pathological
clusters):

1. The adversary first recovers the attribute's *distribution* from the
   disguised sample with the Agrawal-Srikant iterative reconstruction —
   the bimodality reappears even though the disguised histogram is mush.
2. They fit a two-component Gaussian mixture to samples of that
   recovered density (EM), and
3. run the gradient-ascent MAP attack with the mixture prior, beating
   the Gaussian-prior UDR baseline on per-record reconstruction.

Run:  python examples/nongaussian_priors.py
"""

import numpy as np

import repro
from repro.stats.em import UnivariateGaussianMixtureEM


def main() -> None:
    rng = np.random.default_rng(0)
    sigma = 4.0

    # Ground truth: 60/40 bimodal attribute (say, a biomarker).
    true_prior = repro.GaussianMixtureDensity(
        weights=[0.6, 0.4], means=[-10.0, 10.0], stds=[1.5, 1.5]
    )
    original = true_prior.sample(4000, rng=rng).reshape(-1, 1)
    scheme = repro.AdditiveNoiseScheme(std=sigma)
    disguised = scheme.disguise(original, rng=1)

    # -- Step 1: recover the distribution from the disguised column. -----
    recovered = repro.reconstruct_distribution(
        disguised.disguised[:, 0],
        scheme.marginal_density(),
        n_bins=80,
    )
    left_mass = recovered.probabilities[recovered.centers < 0].sum()
    print("Step 1 — Agrawal-Srikant distribution reconstruction:")
    print(
        f"  recovered mass left of 0: {left_mass:.2f}  (truth: 0.60) — "
        "the bimodal shape is back.\n"
    )

    # -- Step 2: fit a mixture prior to the recovered density. -----------
    em = UnivariateGaussianMixtureEM(2)
    prior_fit = em.fit(recovered.sample(6000, rng=2), rng=3)
    means = np.sort(prior_fit.means)
    print("Step 2 — EM mixture fit to the recovered density:")
    print(
        f"  component means: {means[0]:+.2f}, {means[1]:+.2f} "
        "(truth: -10, +10)\n"
    )

    # -- Step 3: per-record MAP with the learned non-Gaussian prior. -----
    attacks = {
        "UDR (Gaussian prior)": repro.UnivariateReconstructor(
            prior="gaussian"
        ),
        "UDR (recovered prior)": repro.UnivariateReconstructor(
            prior="reconstructed", n_bins=80
        ),
        "MAP-GD (mixture prior)": repro.MAPGradientReconstructor(
            [prior_fit]
        ),
    }
    print("Step 3 — per-record reconstruction error:")
    for name, attack in attacks.items():
        rmse = repro.root_mean_square_error(
            original, attack.reconstruct(disguised)
        )
        print(f"  {name:<24} RMSE = {rmse:.3f}")

    print(
        "\nThe moment-matched Gaussian prior wastes the bimodal structure;"
    )
    print(
        "the recovered-distribution posterior mean and the mixture-prior "
        "MAP exploit it,"
    )
    print(
        "extending the paper's attack beyond its multivariate-normal "
        "assumption."
    )


if __name__ == "__main__":
    main()
