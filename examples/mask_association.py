"""Categorical randomization: MASK mining plus breach analysis (§2).

The paper's related work covers the second randomization branch —
randomized response for categorical data (Warner; MASK for association
mining; Evfimievski et al.'s privacy-breach framework).  This example
walks that branch end-to-end on a synthetic retail basket:

1. Disguise baskets with MASK (keep each bit w.p. p, flip otherwise).
2. Mine frequent itemsets from the disguised data by inverting the flip
   channel, and compare with the plain-data truth.
3. Analyze the per-record privacy of the same scheme with the
   Evfimievski machinery: amplification factor, worst-case posterior,
   and whether a rho1-to-rho2 breach is possible.

The punchline mirrors the numeric story: aggregate utility (supports)
survives mild randomization that still leaves individuals exposed —
utility and privacy are controlled by the same dial p, in tension.

Run:  python examples/mask_association.py
"""

import numpy as np

from repro.metrics.breach import (
    amplification_factor,
    amplification_prevents_breach,
    worst_case_posterior,
)
from repro.mining.association import AprioriMiner, MaskScheme


def make_baskets(n=30000, seed=0):
    """8-item baskets with a planted 'bread -> butter' association."""
    rng = np.random.default_rng(seed)
    baskets = np.zeros((n, 8), dtype=np.int8)
    baskets[:, 0] = rng.random(n) < 0.5          # bread
    copy = rng.random(n) < 0.9
    baskets[:, 1] = np.where(copy, baskets[:, 0], rng.random(n) < 0.5)
    for item, support in zip(range(2, 8),
                             (0.45, 0.4, 0.35, 0.25, 0.15, 0.05)):
        baskets[:, item] = rng.random(n) < support
    return baskets


def warner_channel(p):
    return np.array([[p, 1.0 - p], [1.0 - p, p]])


def main() -> None:
    baskets = make_baskets()
    miner = AprioriMiner(min_support=0.3, max_size=3)
    truth = {fs.items: fs.support for fs in miner.mine_plain(baskets)}

    print("MASK randomized association mining (min support 0.3):\n")
    header = (
        f"{'p':>5} {'itemsets found':>15} {'exact match?':>13} "
        f"{'max support err':>16} {'gamma':>7} {'0.1->0.6 breach?':>17}"
    )
    print(header)
    print("-" * len(header))

    for p in (0.95, 0.85, 0.7, 0.6):
        scheme = MaskScheme(p)
        disguised = scheme.disguise(baskets, rng=int(p * 100))
        mined = {
            fs.items: fs.support
            for fs in miner.mine_disguised(disguised, scheme)
        }
        common = set(truth) & set(mined)
        max_err = max(
            (abs(mined[s] - truth[s]) for s in common), default=1.0
        )
        gamma = amplification_factor(warner_channel(p))
        safe = amplification_prevents_breach(
            warner_channel(p), rho1=0.1, rho2=0.6
        )
        print(
            f"{p:>5.2f} {len(mined):>15} "
            f"{str(set(mined) == set(truth)):>13} {max_err:>16.4f} "
            f"{gamma:>7.2f} {str(not safe):>17}"
        )

    # Per-record view at p = 0.85 for a rare, sensitive item.
    p = 0.85
    rare_prior = 0.05  # e.g. a sensitive purchase held by 5% of clients
    posterior = worst_case_posterior(
        [1 - rare_prior, rare_prior], warner_channel(p), [1]
    )
    print(
        f"\nAt p = {p}: a rare item with prior {rare_prior:.0%} is "
        f"believed at {posterior:.0%} after one observed bit —"
    )
    print(
        "aggregate supports are recovered almost exactly while individual "
        "bits leak; the"
    )
    print(
        "breach framework quantifies the per-record side the paper's "
        "RMSE measure plays"
    )
    print("for numeric data.")


if __name__ == "__main__":
    main()
