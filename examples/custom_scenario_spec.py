"""Build, serialize, and run a user-defined experiment — no core edits.

The declarative API makes an experiment a *document*: pick registered
components (``repro list schemes|attacks|datasets`` shows the catalog),
describe the sweep, and run it.  This example defines a scenario the
library has no runner for — how the correlated-noise defense degrades
the paper's attacks on a skewed-marginal (lognormal) table as the noise
budget grows — then shows the same spec round-tripping through JSON,
which is exactly what ``repro run <spec.json>`` executes.

Run:  python examples/custom_scenario_spec.py
"""

import numpy as np

from repro import CorrelatedNoiseScheme, two_level_spectrum
from repro.api import ExperimentSpec, run_spec
from repro.experiments.reporting import render_series

M = 12  # attributes


def main() -> None:
    # 1. Components, by registry spec.  The correlated scheme's spec is
    #    easiest to produce from a live object (to_spec), here matching
    #    a two-level data covariance at total power m * 4^2.
    spectrum = two_level_spectrum(M, 3, total_variance=100.0 * M)
    defense = CorrelatedNoiseScheme.matching_data_covariance(
        np.diag(spectrum), noise_power=M * 16.0
    )

    spec = ExperimentSpec(
        name="defense-vs-skewed-data",
        dataset={
            "kind": "copula",
            "spectrum": spectrum.tolist(),
            "marginal": "lognormal",
            "target_std": 10.0,
            "basis_seed": 3,
        },
        scheme=defense.to_spec(),
        attacks={
            "UDR": {"kind": "udr"},
            "SF": {"kind": "sf"},
            "PCA-DR": {"kind": "pca-dr", "selector": {"kind": "energy", "fraction": 0.9}},
            "BE-DR": {"kind": "be-dr"},
        },
        params={"n_records": 1000},
        # Sweep any dotted parameter path ("scheme.std", "n_records", ...)
        grid={"n_records": [300, 1000, 3000]},
        x_param="n_records",
        x_label="published records (n)",
        trials=2,
        seed=11,
        metadata={"marginal": "lognormal", "defense_power": M * 16.0},
    )

    # 2. The spec is pure data: write it out, read it back, run it.
    document = spec.to_json()
    print("--- spec JSON (excerpt) ---")
    print("\n".join(document.splitlines()[:8]), "\n  ...\n")
    reloaded = ExperimentSpec.from_json(document)
    assert reloaded == spec

    result = run_spec(reloaded)  # add jobs=4 for a process pool
    print(render_series(result.to_series()))
    print(
        f"\n{result.stats['jobs']} engine jobs, "
        f"{result.stats['duration']:.2f}s of task time."
    )


if __name__ == "__main__":
    main()
