"""Medical-records scenario: attribute correlation plus a side channel.

The paper motivates its attacks with a disguised medical database
(Section 3): "Knowing that the patient Alice has diabetes and heart
problems, we might be able to estimate the other information about her."

This example plays both halves of that story on a synthetic census/
clinical table (10 correlated attributes driven by age/wealth/health
factors):

* a correlation-only adversary (BE-DR) against the published table, and
* an adversary who additionally learned two columns exactly (age and
  income leaked from a public registry), using the conditional BE-DR
  attack.

For each, we report per-attribute RMSE and the Agrawal-Srikant interval
privacy (how wide a 95%-confidence interval the adversary can pin each
value into).

Run:  python examples/medical_reidentification.py
"""

import numpy as np

import repro


def print_breakdown(title, table, outcome, interval_widths):
    print(f"\n{title}")
    print(f"{'attribute':<16} {'RMSE':>8} {'95% interval':>14}")
    print("-" * 42)
    for j, name in enumerate(table.column_names):
        print(
            f"{name:<16} {outcome.attribute_rmse[j]:>8.2f} "
            f"{interval_widths[j]:>14.2f}"
        )


def main() -> None:
    generator = repro.CensusLikeGenerator()
    table = generator.sample(5000, rng=0)

    # The hospital publishes the table with additive noise.  sigma = 15
    # is large against the clinical columns (bp std ~ 13) — nominally a
    # strong disguise.
    scheme = repro.AdditiveNoiseScheme(std=15.0)
    disguised = scheme.disguise(table.values, rng=1)

    # --- Adversary 1: correlations only. --------------------------------
    be = repro.BayesEstimateReconstructor().reconstruct(disguised)
    outcome_be = repro.evaluate_attacks(
        disguised, {"BE-DR": repro.BayesEstimateReconstructor()}
    )["BE-DR"]
    widths_be = repro.interval_privacy(table.values, be, confidence=0.95)

    # Nominal privacy: what the noise level alone promises.
    widths_nominal = repro.interval_privacy(
        table.values, disguised.disguised, confidence=0.95
    )
    print(
        "Nominal 95% interval width (noise only): "
        f"{widths_nominal.mean():.1f} on average"
    )
    print_breakdown(
        "Adversary with correlations only (BE-DR):",
        table,
        outcome_be,
        widths_be,
    )

    # --- Adversary 2: age and income leaked. ----------------------------
    leaked = [
        table.column_names.index("age"),
        table.column_names.index("income"),
    ]
    threat = repro.ThreatModel(
        leaked_attributes=tuple(leaked),
        leaked_values=table.values[:, leaked],
    )
    outcomes = repro.evaluate_attacks(disguised, threat.build_attacks())
    outcome_leak = outcomes["BE-DR+leak"]
    widths_leak = repro.interval_privacy(
        table.values, outcome_leak.result, confidence=0.95
    )
    print_breakdown(
        "Adversary who also knows age and income exactly (BE-DR+leak):",
        table,
        outcome_leak,
        widths_leak,
    )

    hidden = np.setdiff1d(np.arange(table.n_attributes), leaked)
    improvement = (
        outcome_be.attribute_rmse[hidden].mean()
        / outcome_leak.attribute_rmse[hidden].mean()
    )
    print(
        f"\nThe two leaked columns sharpen the remaining eight by "
        f"{improvement:.2f}x on average —"
    )
    print(
        "partial value disclosure compounds with attribute correlation, "
        "exactly as Section 3 warns."
    )


if __name__ == "__main__":
    main()
