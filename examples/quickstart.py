"""Quickstart: how correlated attributes break additive randomization.

Reproduces the paper's core observation through the declarative API:

1. Describe the experiment as data — a correlated table (the paper's
   Section 7.1 methodology), i.i.d. Gaussian noise at sigma = 5, and
   the full attack ladder — in one :class:`repro.api.ExperimentSpec`.
2. Run it (``run_spec`` compiles the spec into engine jobs; add
   ``jobs=4`` for a process pool — results are bit-identical).
3. Print how much of the nominal privacy actually survives.

The same spec serialized to JSON (``spec.to_json()``) runs from the
command line as ``repro run quickstart.json``.

Run:  python examples/quickstart.py
"""

from repro import two_level_spectrum
from repro.api import ExperimentSpec, run_spec


def main() -> None:
    # 1. The whole experiment as data.  A 30-attribute table whose
    #    variance concentrates in 4 principal directions (strongly
    #    correlated, like real demographic data), disguised by the
    #    Agrawal-Srikant randomization Y = X + R with R ~ N(0, 5^2) iid,
    #    attacked by the paper's ladder in order.
    spec = ExperimentSpec(
        name="quickstart",
        dataset={
            "kind": "synthetic",
            "spectrum": two_level_spectrum(
                30, 4, total_variance=3000.0, non_principal_value=4.0
            ).tolist(),
        },
        scheme={"kind": "additive", "std": 5.0},
        attacks={
            "NDR": {"kind": "ndr"},
            "UDR": {"kind": "udr"},
            "SF": {"kind": "sf"},
            "PCA-DR": {"kind": "pca-dr"},
            "BE-DR": {"kind": "be-dr"},
        },
        params={"n_records": 2000},
        seed=0,
    )

    # 2. Compile to engine jobs and execute.
    result = run_spec(spec)
    rmse = {label: float(curve[0]) for label, curve in result.series.items()}

    # 3. The attack ladder, in the paper's order.
    print("Attack ladder on a correlated table (noise sigma = 5):\n")
    print(f"{'attack':<10} {'RMSE':>7}   interpretation")
    print("-" * 66)
    notes = {
        "NDR": "nominal privacy: guess the disguised value",
        "UDR": "per-attribute posterior mean (no correlations)",
        "SF": "Kargupta et al.'s spectral filtering",
        "PCA-DR": "the paper's PCA attack (Section 5)",
        "BE-DR": "the paper's Bayes-estimate attack (Section 6)",
    }
    for name in ("NDR", "UDR", "SF", "PCA-DR", "BE-DR"):
        print(f"{name:<10} {rmse[name]:>7.3f}   {notes[name]}")

    print(
        f"\nBE-DR recovers the private values "
        f"{rmse['NDR'] / rmse['BE-DR']:.1f}x more "
        "accurately than the nominal noise level suggests —"
    )
    print(
        "correlation, not the noise variance, decides how much privacy "
        "randomization provides."
    )


if __name__ == "__main__":
    main()
