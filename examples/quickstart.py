"""Quickstart: how correlated attributes break additive randomization.

Reproduces the paper's core observation in ~40 lines of API use:

1. Generate a correlated table (the paper's Section 7.1 methodology).
2. Disguise it with i.i.d. Gaussian noise, sigma = 5 (nominal privacy:
   an adversary guessing the noise is zero is off by 5 on average).
3. Run the full attack ladder — NDR, UDR, SF, PCA-DR, BE-DR — and print
   how much of that nominal privacy actually survives.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # 1. A 30-attribute table whose variance concentrates in 4 principal
    #    directions: strongly correlated, like real demographic data.
    dataset = repro.generate_dataset(
        spectrum=repro.two_level_spectrum(
            30, 4, total_variance=3000.0, non_principal_value=4.0
        ),
        n_records=2000,
        rng=0,
    )

    # 2. The Agrawal-Srikant randomization: Y = X + R, R ~ N(0, 5^2) iid.
    scheme = repro.AdditiveNoiseScheme(std=5.0)
    disguised = scheme.disguise(dataset.values, rng=1)

    # 3. The attack ladder, in the paper's order.
    attacks = repro.ThreatModel().build_attacks()
    outcomes = repro.evaluate_attacks(disguised, attacks)

    print("Attack ladder on a correlated table (noise sigma = 5):\n")
    print(f"{'attack':<10} {'RMSE':>7}   interpretation")
    print("-" * 66)
    notes = {
        "NDR": "nominal privacy: guess the disguised value",
        "UDR": "per-attribute posterior mean (no correlations)",
        "SF": "Kargupta et al.'s spectral filtering",
        "PCA-DR": "the paper's PCA attack (Section 5)",
        "BE-DR": "the paper's Bayes-estimate attack (Section 6)",
    }
    for name in ("NDR", "UDR", "SF", "PCA-DR", "BE-DR"):
        print(f"{name:<10} {outcomes[name].rmse:>7.3f}   {notes[name]}")

    ndr = outcomes["NDR"].rmse
    be = outcomes["BE-DR"].rmse
    print(
        f"\nBE-DR recovers the private values {ndr / be:.1f}x more "
        "accurately than the nominal noise level suggests —"
    )
    print(
        "correlation, not the noise variance, decides how much privacy "
        "randomization provides."
    )


if __name__ == "__main__":
    main()
