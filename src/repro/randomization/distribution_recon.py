"""Agrawal-Srikant iterative Bayes distribution reconstruction.

The randomization approach's legitimacy rests on this algorithm: "given
the distribution of random noises, recovering the distribution of the
original data is possible" (Section 1, citing Agrawal-Srikant [2]).  UDR
(Section 4.2) also needs the reconstructed prior ``f_X``.

The update, discretized over bins ``a_1..a_K`` with midpoints ``c_k``:

    f'(a_k) = (1/n) * sum_i  f_R(y_i - c_k) f(a_k)
                              ---------------------------------
                              sum_j f_R(y_i - c_j) f(a_j) w_j

iterated to a fixed point.  This is an EM algorithm for the mixture
deconvolution problem; each sweep cannot decrease the likelihood of the
observed disguised sample.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.stats.density import Density, HistogramDensity
from repro.utils.validation import check_positive_int, check_vector

__all__ = [
    "reconstruct_distribution",
    "reconstruction_kernel",
    "reconstruction_sweep",
]


def reconstruction_kernel(
    disguised_samples: np.ndarray,
    noise_density: Density,
    edges: np.ndarray,
) -> np.ndarray:
    """Noise-likelihood matrix ``kernel[i, k] = f_R(y_i - c_k)``.

    ``c_k`` are the bin midpoints of ``edges``.  The kernel depends only
    on the samples, the noise density, and the grid — not on the current
    estimate — so the EM iteration computes it once and reuses it for
    every sweep.  (Before the PR-3 vectorization pass each of the up-to-
    ``max_iter`` sweeps rebuilt this ``(n, K)`` matrix from scratch; the
    hoist is the dominant speedup and leaves every sweep's arithmetic
    bit-identical.)

    Parameters
    ----------
    disguised_samples:
        Observed ``y_i`` values, shape ``(n,)``.
    noise_density:
        The public noise density ``f_R``.
    edges:
        Bin edges of the reconstruction grid, shape ``(K + 1,)``.

    Returns
    -------
    numpy.ndarray
        Likelihood matrix of shape ``(n, K)``.
    """
    centers = (edges[:-1] + edges[1:]) / 2.0
    return noise_density.pdf(disguised_samples[:, None] - centers[None, :])


def reconstruction_sweep(
    disguised_samples: np.ndarray,
    noise_density: Density,
    edges: np.ndarray,
    probabilities: np.ndarray,
    *,
    kernel: np.ndarray | None = None,
) -> np.ndarray:
    """One Bayes-update sweep over all disguised samples.

    Parameters
    ----------
    disguised_samples:
        Observed ``y_i`` values, shape ``(n,)``.
    noise_density:
        The public noise density ``f_R``.
    edges:
        Bin edges of the current estimate, shape ``(K + 1,)``.
    probabilities:
        Current per-bin probabilities, shape ``(K,)``, summing to one.
    kernel:
        Optional precomputed :func:`reconstruction_kernel` matrix; pass
        it when sweeping repeatedly so the ``(n, K)`` noise-likelihood
        evaluation is not redone per sweep.

    Returns
    -------
    numpy.ndarray
        Updated per-bin probabilities, shape ``(K,)``, summing to one.
    """
    if kernel is None:
        kernel = reconstruction_kernel(
            disguised_samples, noise_density, edges
        )
    weighted = kernel * probabilities[None, :]
    denominator = weighted.sum(axis=1, keepdims=True)
    # Samples falling where the current estimate assigns zero density
    # contribute nothing this sweep (they re-enter once mass spreads).
    valid = denominator[:, 0] > 0.0
    if not np.any(valid):
        raise ConvergenceError(
            "every disguised sample has zero likelihood under the current "
            "estimate; the support grid does not cover the data"
        )
    if bool(valid.all()):
        # Common case: divide the (n, K) posterior in place instead of
        # paying a boolean-gather copy of the whole matrix per sweep.
        posterior = np.divide(weighted, denominator, out=weighted)
    else:
        posterior = weighted[valid] / denominator[valid]
    updated = posterior.mean(axis=0)
    total = updated.sum()
    if total <= 0.0:
        raise ConvergenceError("distribution reconstruction lost all mass")
    return updated / total


def reconstruct_distribution(
    disguised_samples,
    noise_density: Density,
    *,
    n_bins: int = 64,
    support: tuple[float, float] | None = None,
    max_iter: int = 500,
    tol: float = 1e-3,
) -> HistogramDensity:
    """Recover the original univariate distribution from disguised values.

    Parameters
    ----------
    disguised_samples:
        The published values ``y_i = x_i + r_i`` for one attribute.
    noise_density:
        Public noise density ``f_R``.
    n_bins:
        Resolution of the reconstructed histogram.
    support:
        Interval to reconstruct over.  Defaults to the disguised sample
        range padded by 10% of the noise spread on each side.  (``Y``'s
        support dilates ``X``'s by the noise, so the true support is
        narrower, but trimming aggressively risks clipping genuine mass
        for small samples; padding is the safe default.)
    max_iter:
        Iteration budget.
    tol:
        Stop when the L1 change between sweeps falls below ``tol``.  EM
        deconvolution converges geometrically with a rate close to one,
        so very small tolerances take thousands of sweeps for negligible
        density change; ``1e-3`` matches the stopping criteria used in
        the original Agrawal-Srikant implementations.

    Returns
    -------
    HistogramDensity
        The reconstructed estimate of ``f_X``.

    Raises
    ------
    ConvergenceError
        If the sweep budget is exhausted before the estimate stabilizes.
    """
    samples = check_vector(disguised_samples, "disguised_samples",
                           min_length=2)
    n_bins = check_positive_int(n_bins, "n_bins", minimum=2)
    max_iter = check_positive_int(max_iter, "max_iter")
    if tol <= 0.0:
        raise ValidationError(f"tol must be positive, got {tol}")

    if support is None:
        noise_lo, noise_hi = noise_density.support(0.999)
        lo = float(samples.min()) - noise_hi * 0.1
        hi = float(samples.max()) - noise_lo * 0.1
        # Y = X + R dilates the support; trimming the full noise width can
        # clip genuine X mass when n is small, so trim conservatively.
        if hi <= lo:
            lo, hi = float(samples.min()), float(samples.max())
    else:
        lo, hi = float(support[0]), float(support[1])
        if hi <= lo:
            raise ValidationError(
                f"support upper bound must exceed lower, got [{lo}, {hi}]"
            )
    edges = np.linspace(lo, hi, n_bins + 1)
    probabilities = np.full(n_bins, 1.0 / n_bins)

    # The (n, K) noise-likelihood kernel is iteration-invariant: hoist
    # it out of the EM loop (each sweep then costs one elementwise
    # multiply and two reductions instead of n*K density evaluations).
    kernel = reconstruction_kernel(samples, noise_density, edges)
    for _ in range(max_iter):
        updated = reconstruction_sweep(
            samples, noise_density, edges, probabilities, kernel=kernel
        )
        change = float(np.abs(updated - probabilities).sum())
        probabilities = updated
        if change < tol:
            return HistogramDensity(edges, probabilities)
    raise ConvergenceError(
        "distribution reconstruction did not converge", iterations=max_iter
    )
