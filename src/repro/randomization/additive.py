"""The baseline additive randomization scheme (Agrawal-Srikant).

Independent zero-mean noise is added to every attribute: ``y_i = x_i +
r_i`` with ``r_i`` drawn i.i.d. from a public distribution (Section 1 of
the paper).  Gaussian and uniform noise are supported; both appear in the
randomization literature, and the paper's analysis only uses the variance
(Theorems 5.1 and 5.2 hold for any zero-mean independent noise).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.randomization.base import NoiseModel, RandomizationScheme
from repro.registry import check_spec, register_scheme
from repro.stats.density import Density, GaussianDensity, UniformDensity
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range

__all__ = ["AdditiveNoiseScheme"]

_FAMILIES = ("gaussian", "uniform")


@register_scheme("additive")
class AdditiveNoiseScheme(RandomizationScheme):
    """I.i.d. additive noise with a chosen family and standard deviation.

    Parameters
    ----------
    std:
        Noise standard deviation ``sigma`` (same for every attribute, as
        in the paper's experiments).
    family:
        ``"gaussian"`` (paper default, Section 6.1) or ``"uniform"``
        (the introduction's motivating example).  Uniform noise of std
        ``sigma`` is drawn on ``[-sigma*sqrt(3), sigma*sqrt(3)]``.
    """

    def __init__(self, std: float, *, family: str = "gaussian"):
        self._std = check_in_range(
            std, "std", low=0.0, inclusive_low=False
        )
        if family not in _FAMILIES:
            raise ValidationError(
                f"family must be one of {_FAMILIES}, got {family!r}"
            )
        self._family = family

    @property
    def std(self) -> float:
        """Per-attribute noise standard deviation ``sigma``."""
        return self._std

    @property
    def variance(self) -> float:
        """Per-attribute noise variance ``sigma^2``."""
        return self._std**2

    @property
    def family(self) -> str:
        """Noise family name."""
        return self._family

    def to_spec(self) -> dict:
        return {"kind": "additive", "std": self._std, "family": self._family}

    @classmethod
    def from_spec(cls, spec: dict) -> "AdditiveNoiseScheme":
        check_spec(spec, "additive", required=("std",), optional=("family",))
        return cls(
            std=float(spec["std"]), family=spec.get("family", "gaussian")
        )

    def marginal_density(self) -> Density:
        """Univariate density of the noise on one attribute (``f_R``)."""
        if self._family == "gaussian":
            return GaussianDensity(0.0, self._std)
        halfwidth = self._std * math.sqrt(3.0)
        return UniformDensity(-halfwidth, halfwidth)

    def noise_model(self, n_attributes: int) -> NoiseModel:
        if n_attributes < 1:
            raise ValidationError(
                f"n_attributes must be >= 1, got {n_attributes}"
            )
        return NoiseModel(
            covariance=self.variance * np.eye(n_attributes),
            mean=np.zeros(n_attributes),
            family=self._family,
        )

    def sample_noise(self, shape: tuple[int, int], rng=None) -> np.ndarray:
        n, m = shape
        if n < 1 or m < 1:
            raise ValidationError(f"shape must be positive, got {shape}")
        generator = as_generator(rng)
        if self._family == "gaussian":
            return generator.normal(0.0, self._std, size=(n, m))
        halfwidth = self._std * math.sqrt(3.0)
        return generator.uniform(-halfwidth, halfwidth, size=(n, m))

    def __repr__(self) -> str:
        return (
            f"AdditiveNoiseScheme(std={self._std:g}, "
            f"family={self._family!r})"
        )
