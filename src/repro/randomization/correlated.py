"""The paper's improved randomization scheme: correlated noise (Section 8).

Independent noise spreads its variance evenly over all eigen-directions,
so PCA-style attacks filter most of it out.  The fix: draw the noise from
a multivariate normal whose correlation structure resembles the data's —
"we let the correlations of the random noises similar to the correlations
of the original data" (Section 8.1).

:class:`CorrelatedNoiseScheme` takes an arbitrary noise covariance.  The
experiment-specific construction (reuse the data eigenvectors, reshape the
eigenvalue profile, fix the total noise power) lives in
:mod:`repro.core.defense`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.psd import cholesky_with_jitter, is_positive_semidefinite
from repro.randomization.base import NoiseModel, RandomizationScheme
from repro.registry import check_spec, register_scheme
from repro.utils.rng import as_generator
from repro.utils.validation import check_symmetric

__all__ = ["CorrelatedNoiseScheme"]


@register_scheme("correlated")
class CorrelatedNoiseScheme(RandomizationScheme):
    """Zero-mean multivariate-Gaussian noise with a full covariance.

    Parameters
    ----------
    covariance:
        Noise covariance ``Sigma_r``, shape ``(m, m)``; must be PSD.  The
        covariance is public (Theorem 8.2 needs it to recover ``Sigma_x =
        Sigma_y - Sigma_r`` for legitimate data mining).
    """

    def __init__(self, covariance):
        cov = check_symmetric(covariance, "covariance")
        if not is_positive_semidefinite(cov):
            raise ValidationError(
                "noise covariance must be positive semidefinite"
            )
        self._cov = cov
        self._chol = cholesky_with_jitter(cov)

    @classmethod
    def matching_data_covariance(
        cls, data_covariance, *, noise_power: float
    ) -> "CorrelatedNoiseScheme":
        """Noise proportional to the data covariance.

        The strongest version of the defense: ``Sigma_r = c * Sigma_x``
        with ``c`` chosen so the total noise power (trace) equals
        ``noise_power``.  The noise correlation matrix then *equals* the
        data's, i.e. zero correlation dissimilarity (Definition 8.1).
        """
        cov = check_symmetric(data_covariance, "data_covariance")
        trace = float(np.trace(cov))
        if trace <= 0.0:
            raise ValidationError("data covariance has non-positive trace")
        if noise_power <= 0.0:
            raise ValidationError(
                f"noise_power must be positive, got {noise_power}"
            )
        return cls(cov * (noise_power / trace))

    @property
    def covariance(self) -> np.ndarray:
        """Noise covariance ``Sigma_r`` (copy)."""
        return self._cov.copy()

    @property
    def total_power(self) -> float:
        """Trace of the noise covariance — total variance across attributes."""
        return float(np.trace(self._cov))

    def to_spec(self) -> dict:
        return {"kind": "correlated", "covariance": self._cov.tolist()}

    @classmethod
    def from_spec(cls, spec: dict) -> "CorrelatedNoiseScheme":
        check_spec(spec, "correlated", required=("covariance",))
        return cls(np.asarray(spec["covariance"], dtype=np.float64))

    def noise_model(self, n_attributes: int) -> NoiseModel:
        if n_attributes != self._cov.shape[0]:
            raise ValidationError(
                f"scheme covers {self._cov.shape[0]} attributes, data has "
                f"{n_attributes}"
            )
        return NoiseModel(
            covariance=self._cov,
            mean=np.zeros(n_attributes),
            family="gaussian",
        )

    def sample_noise(self, shape: tuple[int, int], rng=None) -> np.ndarray:
        n, m = shape
        if m != self._cov.shape[0]:
            raise ValidationError(
                f"scheme covers {self._cov.shape[0]} attributes, requested "
                f"shape has {m}"
            )
        if n < 1:
            raise ValidationError(f"shape must be positive, got {shape}")
        generator = as_generator(rng)
        standard = generator.standard_normal((n, m))
        return standard @ self._chol.T

    def __repr__(self) -> str:
        return (
            f"CorrelatedNoiseScheme(m={self._cov.shape[0]}, "
            f"power={self.total_power:.4g})"
        )
