"""Warner's randomized response for categorical attributes.

The second family of randomization methods the paper surveys (Section 2):
"The randomized response is mainly used to deal with categorical data",
citing Warner (1965) and its data-mining descendants (MASK, privacy-
preserving decision trees).  Included so the library covers both
randomization branches the paper describes; the reconstruction attacks
target the additive branch.

Warner's scheme for a binary attribute: with probability ``theta`` report
the true value, otherwise report its complement.  The population
proportion ``pi`` of ones is recoverable from the reported proportion
``lambda`` via ``pi = (lambda + theta - 1) / (2 theta - 1)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["WarnerRandomizedResponse"]


class WarnerRandomizedResponse:
    """Binary randomized response with truth probability ``theta``.

    Parameters
    ----------
    truth_probability:
        Probability of reporting the true bit; must differ from 0.5
        (at exactly 0.5 the output carries no information and the
        proportion estimator is undefined).
    """

    def __init__(self, truth_probability: float):
        theta = check_probability(truth_probability, "truth_probability")
        if abs(theta - 0.5) < 1e-9:
            raise ValidationError(
                "truth_probability must not be 0.5; responses would be "
                "independent of the data"
            )
        self._theta = theta

    @property
    def truth_probability(self) -> float:
        """Probability of reporting the true value."""
        return self._theta

    def disguise(self, bits, rng=None) -> np.ndarray:
        """Randomize an array of 0/1 values elementwise."""
        data = np.asarray(bits)
        if not np.isin(data, (0, 1)).all():
            raise ValidationError("'bits' must contain only 0 and 1")
        generator = as_generator(rng)
        keep = generator.random(data.shape) < self._theta
        return np.where(keep, data, 1 - data).astype(np.int64)

    def estimate_proportion(self, responses) -> float:
        """Unbiased estimate of the true proportion of ones.

        ``pi_hat = (lambda_hat + theta - 1) / (2 theta - 1)`` clipped to
        ``[0, 1]`` (the raw estimator can step outside for small samples).
        """
        data = np.asarray(responses)
        if data.size == 0:
            raise ValidationError("'responses' must be non-empty")
        if not np.isin(data, (0, 1)).all():
            raise ValidationError("'responses' must contain only 0 and 1")
        reported = float(np.mean(data))
        estimate = (reported + self._theta - 1.0) / (2.0 * self._theta - 1.0)
        return float(np.clip(estimate, 0.0, 1.0))

    def posterior_truth_probability(self, response: int, prior: float) -> float:
        """P(true bit = 1 | reported bit, prior P(bit = 1)).

        The per-record privacy view: how confident an adversary becomes
        about an individual's true bit after seeing the response.  This is
        the quantity privacy-breach analyses (Evfimievski et al., cited in
        Section 2) bound.
        """
        if response not in (0, 1):
            raise ValidationError(f"response must be 0 or 1, got {response}")
        pi = check_probability(prior, "prior")
        like_one = self._theta if response == 1 else 1.0 - self._theta
        like_zero = 1.0 - self._theta if response == 1 else self._theta
        numerator = like_one * pi
        denominator = numerator + like_zero * (1.0 - pi)
        # Exact degenerate guard: the division below is safe for every
        # non-zero denominator, however small.
        if denominator == 0.0:  # repro: ignore[float-eq] degenerate guard
            raise ValidationError(
                "prior and scheme give the observed response zero probability"
            )
        return numerator / denominator

    def __repr__(self) -> str:
        return f"WarnerRandomizedResponse(theta={self._theta:g})"
