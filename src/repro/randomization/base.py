"""Randomization-scheme interface and the disguised-data container.

A :class:`RandomizationScheme` turns an original table ``X`` into a
:class:`DisguisedDataset` holding the published ``Y = X + R`` together
with the *public* knowledge an adversary legitimately has: the noise
model.  The actual realized noise ``R`` is retained privately for
evaluation (computing reconstruction error requires the original data
anyway) but attack code must only consume the public fields.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.serialization import values_equal
from repro.utils.validation import check_matrix

__all__ = ["NoiseModel", "DisguisedDataset", "RandomizationScheme"]


@dataclass(frozen=True, eq=False)
class NoiseModel:
    """Public description of the perturbing noise.

    In the randomization literature the noise distribution is public
    (Section 4.2: "R's distribution f_R is public"); this object is what
    the data publisher announces.

    Attributes
    ----------
    covariance:
        Noise covariance matrix, shape ``(m, m)``.  ``sigma^2 * I`` for
        the baseline i.i.d. scheme; a full matrix for Section 8's
        correlated scheme.
    mean:
        Noise mean vector (zero in all the paper's schemes).
    family:
        Distribution family label, e.g. ``"gaussian"`` or ``"uniform"``.
    """

    covariance: np.ndarray
    mean: np.ndarray
    family: str = "gaussian"

    def __post_init__(self):
        cov = check_matrix(self.covariance, "covariance")
        if cov.shape[0] != cov.shape[1]:
            raise ValidationError("noise covariance must be square")
        mean = np.asarray(self.mean, dtype=np.float64).ravel()
        if mean.size != cov.shape[0]:
            raise ValidationError(
                f"noise mean has length {mean.size}, expected {cov.shape[0]}"
            )
        object.__setattr__(self, "covariance", (cov + cov.T) / 2.0)
        object.__setattr__(self, "mean", mean)

    def __eq__(self, other) -> bool:
        # dataclass-generated equality compares ndarray fields with
        # ``==`` and dies on the ambiguous-truth ValueError; compare the
        # arrays element-wise instead.
        if not isinstance(other, NoiseModel):
            return NotImplemented
        return (
            self.family == other.family
            and values_equal(self.mean, other.mean)
            and values_equal(self.covariance, other.covariance)
        )

    @property
    def dim(self) -> int:
        """Number of attributes the noise covers."""
        return int(self.mean.size)

    @property
    def is_isotropic(self) -> bool:
        """True when the covariance is ``sigma^2 * I`` (i.i.d. noise)."""
        diagonal = np.diag(self.covariance)
        off = self.covariance - np.diag(diagonal)
        scale = max(float(diagonal.max()), 1e-300)
        same_variance = np.allclose(
            diagonal, diagonal[0], rtol=1e-9, atol=1e-12 * scale
        )
        no_correlation = np.allclose(off, 0.0, atol=1e-9 * scale)
        return bool(same_variance and no_correlation)

    @property
    def scalar_variance(self) -> float:
        """The shared per-attribute variance ``sigma^2``.

        Only meaningful for isotropic noise; raises otherwise so callers
        cannot silently treat correlated noise as i.i.d.
        """
        if not self.is_isotropic:
            raise ValidationError(
                "noise is not isotropic; use the full covariance"
            )
        return float(self.covariance[0, 0])


@dataclass(frozen=True, eq=False)
class DisguisedDataset:
    """The published, randomized table plus the adversary's knowledge.

    Attributes
    ----------
    disguised:
        ``Y = X + R``, shape ``(n, m)`` — what the adversary sees.
    noise_model:
        Public noise description.
    original:
        The private table ``X`` (held for evaluation only).
    noise:
        The realized perturbation ``R`` (evaluation only).
    """

    disguised: np.ndarray
    noise_model: NoiseModel
    original: np.ndarray
    noise: np.ndarray

    def __post_init__(self):
        disguised = check_matrix(self.disguised, "disguised")
        original = check_matrix(self.original, "original")
        noise = check_matrix(self.noise, "noise")
        if not (disguised.shape == original.shape == noise.shape):
            raise ValidationError(
                "disguised, original, and noise must share one shape; got "
                f"{disguised.shape}, {original.shape}, {noise.shape}"
            )
        if disguised.shape[1] != self.noise_model.dim:
            raise ValidationError(
                f"data has {disguised.shape[1]} attributes but the noise "
                f"model covers {self.noise_model.dim}"
            )
        object.__setattr__(self, "disguised", disguised)
        object.__setattr__(self, "original", original)
        object.__setattr__(self, "noise", noise)

    def __eq__(self, other) -> bool:
        if not isinstance(other, DisguisedDataset):
            return NotImplemented
        return (
            self.noise_model == other.noise_model
            and values_equal(self.disguised, other.disguised)
            and values_equal(self.original, other.original)
            and values_equal(self.noise, other.noise)
        )

    @property
    def n_records(self) -> int:
        """Number of rows ``n``."""
        return int(self.disguised.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of columns ``m``."""
        return int(self.disguised.shape[1])

    def __repr__(self) -> str:
        return (
            f"DisguisedDataset(n={self.n_records}, m={self.n_attributes}, "
            f"noise={self.noise_model.family!r})"
        )


class RandomizationScheme(abc.ABC):
    """A data-disguising mechanism producing ``Y = X + R``.

    Subclasses registered with :func:`repro.registry.register_scheme`
    additionally implement ``to_spec()`` / ``from_spec(spec)`` so the
    scheme is constructible from a plain JSON-safe dict; unregistered
    schemes simply cannot appear in serialized experiment specs.
    """

    def to_spec(self) -> dict:
        """JSON-safe description; overridden by registered schemes."""
        raise ValidationError(
            f"{type(self).__name__} does not support spec serialization; "
            "register it with repro.registry.register_scheme and "
            "implement to_spec()/from_spec()"
        )

    @abc.abstractmethod
    def noise_model(self, n_attributes: int) -> NoiseModel:
        """The public noise description for an ``m``-attribute table."""

    @abc.abstractmethod
    def sample_noise(self, shape: tuple[int, int], rng=None) -> np.ndarray:
        """Draw a noise matrix of the given ``(n, m)`` shape."""

    def disguise(self, original, rng=None) -> DisguisedDataset:
        """Perturb an original table and package the published view."""
        matrix = check_matrix(original, "original")
        noise = self.sample_noise(matrix.shape, rng)
        model = self.noise_model(matrix.shape[1])
        return DisguisedDataset(
            disguised=matrix + noise,
            noise_model=model,
            original=matrix,
            noise=noise,
        )
