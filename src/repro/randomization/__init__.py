"""Randomization (data-disguising) schemes and distribution recovery.

The object of study: additive random perturbation ``Y = X + R`` (Agrawal-
Srikant), the paper's improved *correlated-noise* variant (Section 8), the
randomized-response technique for categorical data (Warner; used by the
related work in Section 2), and the iterative Bayes procedure that
recovers the original distribution from disguised data — the
"data mining still works" half of the randomization story and the source
of UDR's prior.
"""

from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.base import DisguisedDataset, RandomizationScheme
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.randomization.distribution_recon import (
    reconstruct_distribution,
    reconstruction_sweep,
)
from repro.randomization.randomized_response import WarnerRandomizedResponse

__all__ = [
    "AdditiveNoiseScheme",
    "DisguisedDataset",
    "RandomizationScheme",
    "CorrelatedNoiseScheme",
    "reconstruct_distribution",
    "reconstruction_sweep",
    "WarnerRandomizedResponse",
]
