"""Core types of the static-analysis subsystem.

The checker is organized exactly like the component catalog in
:mod:`repro.registry`: rules are classes registered under short string
keys in a lazily-populated :class:`RuleRegistry`.  Each rule walks one
parsed module (:class:`ModuleContext`) and yields :class:`Finding`
records; the runner applies inline ``# repro: ignore[rule-key]``
suppressions afterwards, so rules never need to know about them.

A rule carries its own documentation: a one-line ``title``, a
``rationale`` naming the historical bug class it guards against, and a
``hint`` shown by ``repro check --fix-hints``.  Severities are
``"error"`` (violates a determinism/safety contract) or ``"warning"``
(hazard that needs review).  Any unsuppressed finding — either severity
— fails the check, so the distinction is informational, not a gate.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import ValidationError

__all__ = [
    "SEVERITIES",
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "RULES",
    "register_rule",
]

#: Recognized severities, strongest first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes
    ----------
    rule:
        Registry key of the rule that fired (also the suppression ID).
    severity:
        ``"error"`` or ``"warning"`` (copied from the rule).
    path:
        File the finding is in, as given to the runner.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of this specific violation.
    suppressed:
        True when an inline ``# repro: ignore[...]`` on the line covers
        this rule; suppressed findings never fail the check.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def location(self) -> str:
        """``path:line:col`` (column 1-based, editor convention)."""
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass
class ModuleContext:
    """One parsed source file handed to every applicable rule.

    Attributes
    ----------
    path:
        Path the file was read from (relative paths stay relative, so
        reports are stable across machines).
    module:
        Dotted module name, derived by walking ``__init__.py`` parents
        (e.g. ``"repro.stats.em"``); scripts outside a package get their
        bare stem.  Scoped rules match their prefixes against this.
    source:
        Full file text.
    tree:
        Parsed ``ast`` module node.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    _lines: list[str] = field(default_factory=list, repr=False)

    @property
    def lines(self) -> list[str]:
        """Source split into lines (lazily, cached)."""
        if not self._lines:
            self._lines = self.source.splitlines()
        return self._lines

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits under any of the dotted prefixes."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for one registered check.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes
    ----------
    key:
        Registry key; also the ID accepted by ``# repro: ignore[key]``
        and ``repro check --rules key``.  Set by registration.
    title:
        One-line summary used in listings.
    severity:
        ``"error"`` or ``"warning"``.
    rationale:
        Why the rule exists — the bug class (ideally the concrete
        historical incident) it would have caught.
    hint:
        Suggested fix, shown by ``--fix-hints``.
    scope:
        Dotted module prefixes the rule is restricted to; empty means
        every checked file.
    """

    key: str = ""
    title: str = ""
    severity: str = "error"
    rationale: str = ""
    hint: str = ""
    scope: tuple[str, ...] = ()

    def applies(self, context: ModuleContext) -> bool:
        """Whether this rule runs on the given module (scope check)."""
        if not self.scope:
            return True
        return context.in_package(*self.scope)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            rule=self.key,
            severity=self.severity,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class RuleRegistry:
    """String-keyed rule catalog (the :class:`repro.registry.Registry`
    pattern, specialized for rules).

    Parameters
    ----------
    modules:
        Modules imported lazily before the first lookup; importing them
        triggers the ``@register_rule`` decorators they contain.
    """

    def __init__(self, modules: tuple[str, ...] = ()):
        self._modules = modules
        self._entries: dict[str, Rule] = {}
        self._loaded = False

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        for module in self._modules:
            importlib.import_module(module)
        # Set only after every import succeeded so a failed import
        # surfaces again instead of leaving a partial catalog.
        self._loaded = True

    def register(self, key: str):
        """Class decorator adding a :class:`Rule` subclass under ``key``."""
        if not isinstance(key, str) or not key:
            raise ValidationError(
                f"rule key must be a non-empty string, got {key!r}"
            )

        def decorate(cls: type) -> type:
            if not (isinstance(cls, type) and issubclass(cls, Rule)):
                raise ValidationError(
                    f"{cls!r} must subclass Rule to be registered"
                )
            existing = self._entries.get(key)
            if existing is not None and type(existing) is not cls:
                raise ValidationError(
                    f"rule key {key!r} already registered to "
                    f"{type(existing).__name__}"
                )
            if cls.severity not in SEVERITIES:
                raise ValidationError(
                    f"rule {key!r} severity must be one of {SEVERITIES}, "
                    f"got {cls.severity!r}"
                )
            cls.key = key
            self._entries[key] = cls()
            return cls

        return decorate

    def names(self) -> list[str]:
        """All registered rule keys, sorted."""
        self._ensure_loaded()
        return sorted(self._entries)

    def get(self, key: str) -> Rule:
        """The rule instance registered under ``key``."""
        self._ensure_loaded()
        try:
            return self._entries[key]
        except KeyError:
            raise ValidationError(
                f"unknown rule {key!r}; registered: {self.names()}"
            ) from None

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._entries

    def select(self, keys=None) -> list[Rule]:
        """Rule instances for ``keys`` (all rules when ``None``)."""
        self._ensure_loaded()
        if keys is None:
            return [self._entries[key] for key in self.names()]
        return [self.get(key) for key in keys]

    def __repr__(self) -> str:
        self._ensure_loaded()
        return f"RuleRegistry({self.names()})"


#: The rule catalog; rule modules register themselves on import.
RULES = RuleRegistry(
    (
        "repro.analysis.rules.determinism",
        "repro.analysis.rules.dataclass_eq",
        "repro.analysis.rules.pickle_safety",
        "repro.analysis.rules.api_surface",
        "repro.analysis.rules.concurrency",
        "repro.analysis.rules.registry_contract",
        "repro.analysis.rules.shm_lifecycle",
        "repro.analysis.rules.iter_hotpath",
    )
)

register_rule = RULES.register
