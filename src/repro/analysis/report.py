"""Text and JSON reporters for :class:`~repro.analysis.runner.CheckReport`.

The text form is the classic one-finding-per-line linter format
(``path:line:col: severity[rule] message``), grep- and editor-friendly.
The JSON form is a versioned ``repro-check/v1`` document mirroring the
other machine-readable artifacts in this repository (``repro-bench/v1``,
``repro-trace/v1``) so CI can archive and diff it.
"""

from __future__ import annotations

from repro.analysis.base import RULES
from repro.analysis.runner import CheckReport

__all__ = ["REPORT_VERSION", "render_report", "report_payload", "render_rules"]

#: Schema tag of the JSON report.
REPORT_VERSION = "repro-check/v1"


def render_report(report: CheckReport, *, fix_hints: bool = False) -> str:
    """Human-readable findings plus a one-line summary."""
    lines: list[str] = []
    hinted: set[str] = set()
    for path, message in report.errors:
        lines.append(f"{path}:1:1: error[parse] {message}")
    for finding in report.active:
        lines.append(
            f"{finding.location()}: {finding.severity}[{finding.rule}] "
            f"{finding.message}"
        )
        if fix_hints and finding.rule not in hinted:
            hinted.add(finding.rule)
            lines.append(f"    hint: {RULES.get(finding.rule).hint}")
    active = len(report.active)
    suppressed = len(report.suppressed)
    status = "clean" if report.ok else "FAILED"
    lines.append(
        f"repro check: {status} — {len(report.files)} files, "
        f"{active} finding{'s' if active != 1 else ''}"
        f" ({suppressed} suppressed)"
        + (f", {len(report.errors)} parse errors" if report.errors else "")
    )
    return "\n".join(lines)


def report_payload(report: CheckReport) -> dict:
    """The ``repro-check/v1`` JSON document."""
    return {
        "version": REPORT_VERSION,
        "rules": [
            {
                "key": rule.key,
                "title": rule.title,
                "severity": rule.severity,
                "scope": list(rule.scope),
            }
            for rule in RULES.select(report.rules)
        ],
        "files": list(report.files),
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col + 1,
                "message": finding.message,
                "suppressed": finding.suppressed,
            }
            for finding in report.findings
        ],
        "errors": [
            {"path": path, "message": message}
            for path, message in report.errors
        ],
        "summary": {
            "files": len(report.files),
            "findings": len(report.active),
            "suppressed": len(report.suppressed),
            "errors": len(report.errors),
            "ok": report.ok,
        },
    }


def render_rules() -> str:
    """The rule catalog as an aligned text table (``--list-rules``)."""
    rows = []
    for key in RULES.names():
        rule = RULES.get(key)
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        rows.append((key, rule.severity, rule.title, scope))
    key_width = max(len(row[0]) for row in rows)
    sev_width = max(len(row[1]) for row in rows)
    lines = [
        f"{key:<{key_width}}  {severity:<{sev_width}}  {title}\n"
        f"{'':<{key_width}}  {'':<{sev_width}}  scope: {scope}"
        for key, severity, title, scope in rows
    ]
    return "\n".join(lines)
