"""Inline ``# repro: ignore[...]`` suppression comments.

A finding is suppressed by a comment **on the same line** as the
violation::

    if prior_var == 0.0:  # repro: ignore[float-eq] exact degenerate guard

``# repro: ignore[rule-a,rule-b]`` suppresses the listed rules only;
a bare ``# repro: ignore`` suppresses every rule on that line.  Text
after the closing bracket is free-form justification (encouraged).

Suppressions are extracted with :mod:`tokenize` rather than a substring
scan so the marker is only honored inside real comments — a string
literal containing ``repro: ignore`` stays data.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["ALL_RULES", "parse_suppressions", "is_suppressed"]

#: Sentinel for a bare ``# repro: ignore`` (suppresses every rule).
ALL_RULES = "*"

_MARKER = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number to the set of rule keys suppressed on that line.

    A bare ``# repro: ignore`` maps to ``{ALL_RULES}``.  Unreadable
    files (tokenize errors) yield no suppressions — the parse error
    will already have surfaced as a checker-level failure.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(token.string)
            if match is None:
                continue
            listed = match.group("rules")
            line = token.start[0]
            keys = suppressions.setdefault(line, set())
            if listed is None:
                keys.add(ALL_RULES)
            else:
                keys.update(
                    key.strip() for key in listed.split(",") if key.strip()
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


def is_suppressed(
    suppressions: dict[int, set[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is suppressed at ``line``."""
    keys = suppressions.get(line)
    if not keys:
        return False
    return ALL_RULES in keys or rule in keys
