"""File discovery, parsing, and rule execution for ``repro check``.

:func:`run_check` is the programmatic entry point: it expands the given
paths into ``*.py`` files, derives each file's dotted module name (so
scoped rules know where they are), parses once, runs every selected
rule, and applies inline suppressions.  The result is a
:class:`CheckReport` that the reporters in :mod:`repro.analysis.report`
render as text or JSON.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

from repro.analysis.base import RULES, Finding, ModuleContext, Rule
from repro.analysis.suppressions import is_suppressed, parse_suppressions
from repro.exceptions import ValidationError

__all__ = ["CheckReport", "discover_files", "module_name_for", "run_check"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}
)


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation produced.

    Attributes
    ----------
    findings:
        Every finding, including suppressed ones (reporters separate
        them); sorted by path, line, column, rule.
    files:
        Files checked, in the order they were scanned.
    rules:
        Keys of the rules that ran.
    errors:
        ``(path, message)`` pairs for files that could not be parsed;
        any entry fails the check.
    """

    findings: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    rules: list[str] = field(default_factory=list)
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        """Findings not silenced by an inline suppression."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings covered by ``# repro: ignore[...]`` comments."""
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """True when nothing (active findings or parse errors) fired."""
        return not self.active and not self.errors


def discover_files(paths) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not any(
                    part in _SKIP_DIRS or part.startswith(".")
                    for part in candidate.parts
                )
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise ValidationError(f"no such file or directory: {raw}")
        for candidate in candidates:
            marker = candidate.resolve()
            if marker not in seen:
                seen.add(marker)
                files.append(candidate)
    return files


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` parents.

    ``src/repro/stats/em.py`` maps to ``"repro.stats.em"``; a script
    outside any package maps to its bare stem, which keeps it out of
    every scoped rule.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


def run_check(paths, rules=None) -> CheckReport:
    """Run the selected rules over the given paths.

    Parameters
    ----------
    paths:
        Files and/or directories to scan.
    rules:
        Iterable of rule keys, or ``None`` for the full catalog.
        Unknown keys raise :class:`~repro.exceptions.ValidationError`.
    """
    selected: list[Rule] = RULES.select(rules)
    report = CheckReport(rules=[rule.key for rule in selected])
    for path in discover_files(paths):
        display = str(path)
        report.files.append(display)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append((display, f"{type(exc).__name__}: {exc}"))
            continue
        context = ModuleContext(
            path=display,
            module=module_name_for(path),
            source=source,
            tree=tree,
        )
        suppressions = parse_suppressions(source)
        for rule in selected:
            if not rule.applies(context):
                continue
            for finding in rule.check(context):
                if is_suppressed(suppressions, finding.line, finding.rule):
                    finding = Finding(
                        rule=finding.rule,
                        severity=finding.severity,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        suppressed=True,
                    )
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
