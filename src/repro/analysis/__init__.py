"""Static analysis for determinism and parallel-safety invariants.

``repro check`` (CLI) and :func:`run_check` (API) enforce, at parse
time, the contracts the rest of the repository promises at runtime:
explicitly seeded randomness, pickle-safe engine tasks, array-aware
dataclass equality, clock-free kernels, and stable registry spec
signatures.  Each shipped rule is distilled from a bug this repo
actually had; see ``docs/guides/static-analysis.md`` for the catalog
with the incident each rule would have caught.

Quick use::

    from repro.analysis import run_check, render_report

    report = run_check(["src"])          # full catalog
    print(render_report(report))
    assert report.ok

Suppress a deliberate violation inline, with a justification::

    if variance == 0.0:  # repro: ignore[float-eq] exact degenerate guard
"""

from repro.analysis.base import (
    RULES,
    Finding,
    ModuleContext,
    Rule,
    RuleRegistry,
    register_rule,
)
from repro.analysis.report import (
    REPORT_VERSION,
    render_report,
    render_rules,
    report_payload,
)
from repro.analysis.runner import CheckReport, discover_files, run_check

__all__ = [
    "REPORT_VERSION",
    "RULES",
    "CheckReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "discover_files",
    "register_rule",
    "render_report",
    "render_rules",
    "report_payload",
    "run_check",
]
