"""Rule guarding the per-iteration telemetry fast path in kernel loops.

The convergence layer (:mod:`repro.telemetry.convergence`) keeps
permanently-instrumented kernels cheap through two disciplines: span
and metric calls are hoisted *out* of iteration loops (one
``IterationTracker`` per fit, obtained before the loop), and any
record argument that costs something to build — a reduction, a norm, a
condition number — is computed only under a ``tracker.enabled`` guard.
This rule pins both, so a future edit cannot quietly put a dict
allocation or a vectorized max on the disabled hot path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["IterHotpathRule"]

#: Trace-facade functions that are per-fit machinery, not per-iteration
#: machinery: calling any of them inside a kernel loop means spans or
#: ring metrics churn once per iteration.
_FACADE_CALLS = frozenset({"span", "count", "gauge", "iterations"})

#: Modules whose import binds the trace facade.
_TRACE_MODULES = ("repro.telemetry", "repro.telemetry.trace")


def _is_simple(node: ast.expr) -> bool:
    """Whether evaluating the argument is free on the disabled path.

    Names, constants, and plain attribute chains only — a call, an
    arithmetic expression, a conditional, or a dict/list literal all do
    per-iteration work (or allocate) before ``record`` can no-op.
    """
    if isinstance(node, (ast.Name, ast.Constant)):
        return True
    if isinstance(node, ast.Attribute):
        return _is_simple(node.value)
    return False


def _is_enabled_probe(node: ast.expr) -> bool:
    """``X.enabled`` / ``X.enabled()`` / bare ``enabled`` tests."""
    if isinstance(node, ast.Call):
        return _is_enabled_probe(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr == "enabled"
    return isinstance(node, ast.Name) and node.id == "enabled"


def _guard_kind(test: ast.expr) -> str | None:
    """Classify an ``if`` test: ``"pos"`` when its truthy branch is the
    tracing-enabled side, ``"neg"`` when its falsy branch is, ``None``
    when the test says nothing about tracing."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return "neg" if _is_enabled_probe(test.operand) else None
    if _is_enabled_probe(test):
        return "pos"
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        if any(_is_enabled_probe(value) for value in test.values):
            return "pos"
    return None


@register_rule("iter-hotpath")
class IterHotpathRule(Rule):
    """Per-iteration telemetry must ride the no-op tracker fast path."""

    title = "per-iteration telemetry off the no-op fast path"
    severity = "error"
    rationale = (
        "Kernels stay permanently instrumented only because the "
        "disabled path is near-free: trace.iterations() hands back a "
        "shared no-op tracker and record() takes named scalars, so a "
        "loop iteration with tracing off costs one attribute read.  A "
        "trace.span/count/gauge call inside a kernel loop, or a "
        "record() argument that computes a reduction or allocates a "
        "container, silently re-introduces per-iteration overhead for "
        "every untraced production run — the regression the "
        "telemetry.convergence benchmark exists to catch, moved to "
        "check time."
    )
    hint = (
        "Hoist span/metric calls out of the loop (open one "
        "trace.iterations(...) tracker per fit) and compute derived "
        "record() arguments in locals under an 'if tracker.enabled:' "
        "guard so the disabled path skips them."
    )
    scope = (
        "repro.stats",
        "repro.reconstruction",
        "repro.linalg",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        self._trace_names: set[str] = set()
        self._facade_aliases: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _TRACE_MODULES:
                        bound = alias.asname or alias.name.split(".")[0]
                        if alias.name == "repro.telemetry.trace":
                            self._trace_names.add(
                                alias.asname or "trace"
                            )
                        else:
                            self._trace_names.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "repro.telemetry":
                    for alias in node.names:
                        if alias.name == "trace":
                            self._trace_names.add(alias.asname or "trace")
                elif node.module == "repro.telemetry.trace":
                    for alias in node.names:
                        if alias.name in _FACADE_CALLS:
                            self._facade_aliases.add(
                                alias.asname or alias.name
                            )
        yield from self._scan(context, context.tree.body, False, False)

    # -- statement traversal -------------------------------------------

    def _scan(
        self,
        context: ModuleContext,
        stmts: list[ast.stmt],
        guarded: bool,
        in_loop: bool,
    ) -> Iterator[Finding]:
        """Walk a statement list tracking loop depth and enabled guards.

        ``guarded`` is sticky for the rest of the list after an
        early-exit guard (``if not X.enabled(): ...; continue``), and
        set for the matching branch of an ``if X.enabled:`` test.
        """
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                kind = _guard_kind(stmt.test)
                yield from self._scan(
                    context, stmt.body, guarded or kind == "pos", in_loop
                )
                yield from self._scan(
                    context, stmt.orelse, guarded or kind == "neg", in_loop
                )
                if (
                    kind == "neg"
                    and stmt.body
                    and isinstance(
                        stmt.body[-1],
                        (ast.Continue, ast.Break, ast.Return, ast.Raise),
                    )
                ):
                    guarded = True
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                header = (
                    stmt.test
                    if isinstance(stmt, ast.While)
                    else stmt.iter
                )
                yield from self._check_expr(context, header, guarded, True)
                yield from self._scan(context, stmt.body, guarded, True)
                yield from self._scan(context, stmt.orelse, guarded, in_loop)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from self._scan(context, stmt.body, False, False)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield from self._check_expr(
                        context, item.context_expr, guarded, in_loop
                    )
                yield from self._scan(context, stmt.body, guarded, in_loop)
            elif isinstance(stmt, ast.Try):
                for block in (
                    stmt.body,
                    stmt.orelse,
                    stmt.finalbody,
                    *(handler.body for handler in stmt.handlers),
                ):
                    yield from self._scan(context, block, guarded, in_loop)
            else:
                yield from self._check_expr(context, stmt, guarded, in_loop)

    def _check_expr(
        self,
        context: ModuleContext,
        node: ast.AST | None,
        guarded: bool,
        in_loop: bool,
    ) -> Iterator[Finding]:
        """Flag facade and costly-record calls in one simple statement."""
        if node is None or guarded or not in_loop:
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            facade = self._facade_call(sub.func)
            if facade is not None:
                yield self.finding(
                    context,
                    sub,
                    f"trace.{facade}() inside a kernel loop runs once "
                    "per iteration; hoist it out of the loop and feed "
                    "per-iteration data through an IterationTracker",
                )
            elif (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "record"
            ):
                yield from self._check_record(context, sub)

    def _facade_call(self, func: ast.expr) -> str | None:
        """The facade function name when ``func`` is a trace call."""
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _FACADE_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._trace_names
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in self._facade_aliases:
            return func.id
        return None

    def _check_record(
        self, context: ModuleContext, call: ast.Call
    ) -> Iterator[Finding]:
        """Unguarded ``.record(...)`` may only pass free-to-read args."""
        for arg in call.args:
            if isinstance(arg, ast.Starred) or not _is_simple(arg):
                yield self.finding(
                    context,
                    call,
                    "unguarded record() argument does per-iteration "
                    "work even when tracing is disabled; compute it in "
                    "a local under 'if tracker.enabled:'",
                )
                return
        for keyword in call.keywords:
            if keyword.arg is None or not _is_simple(keyword.value):
                yield self.finding(
                    context,
                    call,
                    "unguarded record() argument does per-iteration "
                    "work even when tracing is disabled; compute it in "
                    "a local under 'if tracker.enabled:'",
                )
                return
