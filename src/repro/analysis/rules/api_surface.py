"""Rules for API-surface hazards: mutable defaults and float equality.

Both are classic Python footguns with a determinism twist here: a
mutable default is cross-call shared state (the very thing the seeded
engine exists to eliminate), and an exact float ``==`` encodes an
assumption the numerics do not honor once a kernel is vectorized or
reordered — the PR-3 vectorization kept results *bit-identical* only
because nothing downstream gated on exact float equality.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["MutableDefaultRule", "FloatEqRule"]

#: Constructor names whose bare call is a fresh mutable container.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _describe_default(node: ast.expr) -> str | None:
    """A short description when the default is mutable, else ``None``."""
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Set):
        return "set literal"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    ):
        return f"{node.func.id}()"
    return None


@register_rule("mutable-default")
class MutableDefaultRule(Rule):
    """Public functions must not use mutable default arguments."""

    title = "mutable default argument on a public function"
    severity = "error"
    rationale = (
        "A mutable default is evaluated once at def time and shared by "
        "every call — hidden cross-call state in a codebase whose whole "
        "premise is that results are a pure function of (spec, seed).  "
        "A cache dict or accumulator default turns the first sweep's "
        "data into every later sweep's input."
    )
    hint = (
        "Default to None and create the container inside the function "
        "(or use dataclasses.field(default_factory=...) on dataclass "
        "fields)."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            arguments = node.args
            defaults = list(arguments.defaults) + [
                default
                for default in arguments.kw_defaults
                if default is not None
            ]
            for default in defaults:
                description = _describe_default(default)
                if description is not None:
                    yield self.finding(
                        context,
                        default,
                        f"public function {node.name}() has mutable "
                        f"default {description}; the object is shared "
                        "across calls",
                    )


@register_rule("float-eq")
class FloatEqRule(Rule):
    """No exact == / != against float literals outside tests."""

    title = "exact equality comparison against a float literal"
    severity = "warning"
    rationale = (
        "Exact float equality encodes an assumption about the bit "
        "pattern a computation produces; any reordering (vectorization, "
        "BLAS dispatch, accumulation order across workers) silently "
        "flips the branch.  The PR-3 kernel rewrites were only safe "
        "because no production branch gated on exact float equality."
    )
    hint = (
        "Compare with a tolerance (math.isclose / np.isclose), or — "
        "for genuine degenerate-value guards like 'variance == 0.0' — "
        "keep the exact test and suppress with a justification."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        stem = context.module.rpartition(".")[2]
        if stem.startswith("test_") or stem == "conftest":
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_nan_idiom(left, right):
                    continue
                literal = self._float_literal(left) or self._float_literal(
                    right
                )
                if literal is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        context,
                        node,
                        f"exact float comparison '{symbol} {literal}'; "
                        "use a tolerance or justify the exact guard",
                    )

    @staticmethod
    def _float_literal(node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return repr(node.value)
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            return f"-{node.operand.value!r}"
        return None

    @staticmethod
    def _is_nan_idiom(left: ast.expr, right: ast.expr) -> bool:
        # `x != x` is the portable NaN test; identical sides are allowed.
        return ast.dump(left) == ast.dump(right)
