"""The shipped rule catalog.

Importing this package registers every built-in rule with
:data:`repro.analysis.base.RULES`; the registry also imports the
submodules lazily on first lookup, so either entry point sees the full
catalog.  Current rules (key → module):

======================  =========================================
``global-rng``          :mod:`repro.analysis.rules.determinism`
``wall-clock``          :mod:`repro.analysis.rules.determinism`
``ndarray-eq``          :mod:`repro.analysis.rules.dataclass_eq`
``task-pickle``         :mod:`repro.analysis.rules.pickle_safety`
``mutable-default``     :mod:`repro.analysis.rules.api_surface`
``float-eq``            :mod:`repro.analysis.rules.api_surface`
``bare-lock``           :mod:`repro.analysis.rules.concurrency`
``spec-signature``      :mod:`repro.analysis.rules.registry_contract`
``iter-hotpath``        :mod:`repro.analysis.rules.iter_hotpath`
======================  =========================================
"""

from repro.analysis.rules import (  # noqa: F401  (registration imports)
    api_surface,
    concurrency,
    dataclass_eq,
    determinism,
    iter_hotpath,
    pickle_safety,
    registry_contract,
)

__all__ = [
    "api_surface",
    "concurrency",
    "dataclass_eq",
    "determinism",
    "iter_hotpath",
    "pickle_safety",
    "registry_contract",
]
