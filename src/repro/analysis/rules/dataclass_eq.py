"""Rule: frozen dataclasses holding ndarrays need explicit equality.

The dataclass-generated ``__eq__`` compares field tuples with ``==``;
on an ndarray field that produces an elementwise array whose truth
value raises the ambiguous-truth ``ValueError`` (or silently compares
identity for object fields).  The generated ``__hash__`` of a frozen
dataclass hashes the field tuple and raises ``TypeError`` on the first
ndarray.  This exact bug shipped once already — see the PR-2 fix that
retrofitted array-aware ``__eq__`` onto ``NoiseModel``,
``DisguisedDataset``, ``PipelineReport`` and friends.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["NdarrayEqRule"]

#: Annotation substrings that mark an array-typed field.
_ARRAY_MARKERS = ("ndarray", "NDArray", "ArrayLike")


def _decorator_parts(node: ast.expr) -> tuple[str, ast.Call | None]:
    """Terminal decorator name plus the call node (None when bare)."""
    call = None
    if isinstance(node, ast.Call):
        call = node
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr, call
    if isinstance(node, ast.Name):
        return node.id, call
    return "", call


def _keyword_bool(call: ast.Call | None, name: str, default: bool) -> bool:
    """A literal True/False keyword on the decorator call."""
    if call is None:
        return default
    for keyword in call.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return default


def _field_compares(value: ast.expr | None) -> bool:
    """False when the field() default sets ``compare=False``."""
    if not isinstance(value, ast.Call):
        return True
    terminal = (
        value.func.attr
        if isinstance(value.func, ast.Attribute)
        else value.func.id
        if isinstance(value.func, ast.Name)
        else ""
    )
    if terminal != "field":
        return True
    for keyword in value.keywords:
        if keyword.arg == "compare" and isinstance(
            keyword.value, ast.Constant
        ):
            return bool(keyword.value.value)
    return True


@register_rule("ndarray-eq")
class NdarrayEqRule(Rule):
    """Frozen dataclasses with ndarray fields must define equality."""

    title = "frozen dataclass with ndarray field relies on generated __eq__/__hash__"
    severity = "error"
    rationale = (
        "dataclass-generated __eq__ on an ndarray field raises the "
        "ambiguous-truth ValueError the first time two instances are "
        "compared, and the generated frozen __hash__ raises TypeError "
        "on the unhashable array — both at the call site, far from the "
        "class.  The repo hit this on NoiseModel/DisguisedDataset "
        "(fixed in PR 2) and again on ThreatModel.__hash__ (fixed in "
        "PR 4)."
    )
    hint = (
        "Declare @dataclass(frozen=True, eq=False) and implement an "
        "array-aware __eq__ via repro.utils.serialization.values_equal "
        "(add a field-based __hash__ like ThreatModel's if instances "
        "must be hashable), or exclude the array with "
        "field(compare=False)."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            finding = self._check_class(context, node)
            if finding is not None:
                yield finding

    def _check_class(
        self, context: ModuleContext, node: ast.ClassDef
    ) -> Finding | None:
        dataclass_call: ast.Call | None = None
        is_dataclass = False
        for decorator in node.decorator_list:
            name, call = _decorator_parts(decorator)
            if name == "dataclass":
                is_dataclass = True
                dataclass_call = call
                break
        if not is_dataclass:
            return None
        if not _keyword_bool(dataclass_call, "frozen", False):
            return None
        if not _keyword_bool(dataclass_call, "eq", True):
            return None
        array_fields = [
            statement.target.id
            for statement in node.body
            if isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and self._is_array_annotation(statement.annotation)
            and _field_compares(statement.value)
        ]
        if not array_fields:
            return None
        defined = {
            statement.name
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "__eq__" in defined:
            return None
        return self.finding(
            context,
            node,
            f"frozen dataclass {node.name!r} has ndarray field(s) "
            f"{array_fields} but keeps the generated __eq__/__hash__ "
            "(ambiguous-truth ValueError / unhashable TypeError); set "
            "eq=False and define an array-aware __eq__",
        )

    @staticmethod
    def _is_array_annotation(annotation: ast.expr) -> bool:
        try:
            text = ast.unparse(annotation)
        except Exception:  # pragma: no cover - malformed annotation
            return False
        return any(marker in text for marker in _ARRAY_MARKERS)
