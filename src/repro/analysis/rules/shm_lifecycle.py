"""Rule: ``SharedMemory(...)`` must sit inside a cleanup-guaranteeing try.

A POSIX shared-memory segment is kernel state, not process state: a
``SharedMemory`` handle that is opened and then abandoned on an
exception path outlives the process as a file in ``/dev/shm``, pinning
its full payload in RAM until someone unlinks it by hand.  The data
plane (:mod:`repro.engine.dataplane`) is the sanctioned owner of that
lifecycle — it creates segments under a handler that closes *and*
unlinks on every failure, and sweeps leftovers at exit.  Any other
``SharedMemory(...)`` call must show the same shape: the call enclosed
in a ``try`` whose handler or ``finally`` calls ``.close()`` /
``.unlink()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["ShmLifecycleRule"]

#: Method names whose presence in a handler/finally marks it as cleanup.
_CLEANUP_METHODS = frozenset({"close", "unlink"})


def _callable_name(node: ast.expr) -> str:
    """The terminal identifier of the called object (``SharedMemory``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _calls_cleanup(statements: list[ast.stmt]) -> bool:
    """True when any statement (transitively) calls .close()/.unlink()."""
    for statement in statements:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLEANUP_METHODS
            ):
                return True
    return False


def _is_guarding_try(node: ast.AST) -> bool:
    """A try whose except/finally releases the segment on failure."""
    if not isinstance(node, ast.Try):
        return False
    if _calls_cleanup(node.finalbody):
        return True
    return any(_calls_cleanup(handler.body) for handler in node.handlers)


@register_rule("shm-lifecycle")
class ShmLifecycleRule(Rule):
    """``SharedMemory(...)`` only under a try that closes and unlinks."""

    title = "SharedMemory(...) outside a cleanup-guaranteeing try"
    severity = "error"
    rationale = (
        "A shared-memory segment abandoned on an exception path is not "
        "reclaimed with the process: it persists in /dev/shm with its "
        "full payload resident until unlinked by hand.  One leaked "
        "320 MB dataset per failed sweep exhausts worker memory long "
        "before anyone notices the stray files."
    )
    hint = (
        "Publish arrays through repro.engine.dataplane.DataPlane, or "
        "enclose the SharedMemory(...) call in a try whose handler or "
        "finally calls close() — plus unlink() for segments this "
        "process created."
    )
    scope = ()  # segment leaks are a bug wherever they occur

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        # ast carries no parent links: walk with an explicit stack so
        # every Call sees its chain of enclosing statements.
        stack: list[ast.AST] = []

        def visit(node: ast.AST) -> Iterator[Finding]:
            if (
                isinstance(node, ast.Call)
                and _callable_name(node.func) == "SharedMemory"
            ):
                if not any(_is_guarding_try(parent) for parent in stack):
                    yield self.finding(
                        context,
                        node,
                        "SharedMemory(...) with no enclosing try that "
                        "closes/unlinks on failure; an exception here "
                        "leaks the segment in /dev/shm",
                    )
            stack.append(node)
            try:
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
            finally:
                stack.pop()

        yield from visit(context.tree)
