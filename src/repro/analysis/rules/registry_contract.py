"""Rule: registered components must honor the spec-method contract.

:class:`repro.registry.Registry` dispatches ``create(spec)`` to
``cls.from_spec(spec)`` and serializes with ``instance.to_spec()`` —
zero extra arguments in both directions.  A drifted signature (an added
required parameter, a forgotten ``@classmethod``) type-checks locally
but explodes only when a JSON spec round-trips through a worker
process or the result cache, far from the class that caused it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["SpecSignatureRule"]

#: Decorator names that register a component class.
_REGISTER_DECORATORS = frozenset(
    {"register_scheme", "register_attack", "register_dataset", "register"}
)


def _registration(node: ast.ClassDef) -> str | None:
    """The registry key when the class carries a register decorator."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name in _REGISTER_DECORATORS:
            if decorator.args and isinstance(decorator.args[0], ast.Constant):
                return str(decorator.args[0].value)
            return "?"
    return None


def _positional_arity(node: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    return len(node.args.posonlyargs) + len(node.args.args)


def _required_arity(node: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    return _positional_arity(node) - len(node.args.defaults)


def _is_classmethod(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        (isinstance(decorator, ast.Name) and decorator.id == "classmethod")
        or (
            isinstance(decorator, ast.Attribute)
            and decorator.attr == "classmethod"
        )
        for decorator in node.decorator_list
    )


@register_rule("spec-signature")
class SpecSignatureRule(Rule):
    """Registered components: ``to_spec(self)`` / ``from_spec(cls, spec)``."""

    title = "registered component with a drifted to_spec/from_spec signature"
    severity = "error"
    rationale = (
        "Registry.create(spec) calls cls.from_spec(spec) and the "
        "declarative layer calls instance.to_spec() with no arguments; "
        "a drifted signature passes every local use and fails only "
        "when a JSON spec is rebuilt inside a worker process or "
        "rehydrated from the result cache — the failure points at the "
        "engine, not at the class that drifted."
    )
    hint = (
        "Keep exactly to_spec(self) and a @classmethod "
        "from_spec(cls, spec); push optional knobs into the spec dict "
        "itself."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            key = _registration(node)
            if key is None:
                continue
            yield from self._check_component(context, node, key)

    def _check_component(
        self, context: ModuleContext, node: ast.ClassDef, key: str
    ) -> Iterator[Finding]:
        methods = {
            statement.name: statement
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        label = f"{node.name} (registered {key!r})"
        to_spec = methods.get("to_spec")
        # Either method may be inherited; only a *present* drifted
        # definition is flagged (Registry.register verifies presence
        # at import time already).
        if to_spec is not None and (
            _required_arity(to_spec) != 1 or to_spec.args.vararg is not None
        ):
            yield self.finding(
                context,
                to_spec,
                f"{label}: to_spec must take exactly (self); the "
                "declarative layer calls it with no arguments",
            )
        from_spec = methods.get("from_spec")
        if from_spec is not None:
            if not _is_classmethod(from_spec):
                yield self.finding(
                    context,
                    from_spec,
                    f"{label}: from_spec must be a @classmethod "
                    "(Registry.create dispatches on the class)",
                )
            elif (
                _required_arity(from_spec) != 2
                or from_spec.args.vararg is not None
            ):
                yield self.finding(
                    context,
                    from_spec,
                    f"{label}: from_spec must take exactly (cls, spec); "
                    "Registry.create passes the spec dict alone",
                )
