"""Rule: engine task modules must stay pickle- and fork-safe.

Worker functions run inside process-pool workers that import the task
module fresh (tasks travel as ``"package.module:function"`` strings —
see :mod:`repro.engine.jobs`).  Three patterns defeat that contract:

* a task bound to a ``lambda`` cannot be resolved by a clean import in
  another process (and is not picklable at all);
* a factory returning a nested function produces a callable that no
  ``module:function`` string can name;
* ``global`` statements mutate module state that every worker process
  copies independently — the mutation silently diverges between the
  parent and each worker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["TaskPickleRule"]


@register_rule("task-pickle")
class TaskPickleRule(Rule):
    """Task modules: no lambdas, closures, or global-state mutation."""

    title = "pickle/fork hazard in an engine task module"
    severity = "error"
    rationale = (
        "Engine jobs reference tasks by importable "
        "'package.module:function' strings so worker processes resolve "
        "them with a clean import.  Lambdas and closure-returning "
        "factories cannot be named that way, and 'global' mutations "
        "fork into per-worker copies that silently diverge from the "
        "parent — results then depend on which worker ran which job."
    )
    hint = (
        "Define every task as a module-level def taking "
        "(params, rng); pass state through params (JSON-safe) instead "
        "of module globals or captured closures."
    )

    def applies(self, context: ModuleContext) -> bool:
        # Task modules by convention: repro.experiments.tasks,
        # repro.api.tasks, and any future sibling named `tasks`.
        return context.module.rpartition(".")[2] == "tasks"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for statement in context.tree.body:
            if isinstance(statement, ast.Assign) and isinstance(
                statement.value, ast.Lambda
            ):
                yield self.finding(
                    context,
                    statement,
                    "module-level lambda in a task module; worker "
                    "processes cannot resolve or pickle it — use a "
                    "module-level def",
                )
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    context,
                    node,
                    f"'global {', '.join(node.names)}' mutates module "
                    "state that diverges per worker process; pass state "
                    "through task params",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_factory(context, node)

    def _check_factory(
        self, context: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        inner_defs = {
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for child in ast.walk(node):
            if not isinstance(child, ast.Return) or child.value is None:
                continue
            value = child.value
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    context,
                    value,
                    f"{node.name}() returns a lambda; the result cannot "
                    "be named by a 'module:function' task string",
                )
            elif (
                isinstance(value, ast.Name) and value.id in inner_defs
            ):
                yield self.finding(
                    context,
                    child,
                    f"{node.name}() returns nested function "
                    f"{value.id!r}; closures cannot be resolved by the "
                    "worker-side task import",
                )
