"""Rule: lock acquisition must be scoped by a ``with`` block.

The telemetry recorder is the one genuinely concurrent data structure
in the repository (spans arrive from worker callbacks and the main
thread at once).  A bare ``lock.acquire()`` that is not paired with a
``finally: release()`` — and, in practice, even one that is — leaks the
lock on the first exception between the two calls, deadlocking every
later span.  ``with lock:`` is the only idiom that cannot leak.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["BareLockRule"]


def _terminal_name(node: ast.expr) -> str:
    """The last identifier of a Name/Attribute chain (lowercased)."""
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    return ""


@register_rule("bare-lock")
class BareLockRule(Rule):
    """Use ``with lock:`` — never call ``.acquire()`` directly."""

    title = "lock .acquire() outside a with-statement"
    severity = "error"
    rationale = (
        "An exception between acquire() and release() leaves the "
        "telemetry recorder's lock held forever: every later span "
        "record blocks and the run hangs instead of failing.  The "
        "with-statement releases on every exit path, including "
        "KeyboardInterrupt during a parallel sweep."
    )
    hint = (
        "Rewrite as 'with lock:' (timeout-based acquisition needs an "
        "explicit try/finally and a suppression justifying it)."
    )
    scope = ("repro.telemetry", "repro.engine")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr != "acquire":
                continue
            receiver = _terminal_name(func.value)
            if "lock" in receiver or "mutex" in receiver:
                yield self.finding(
                    context,
                    node,
                    f"bare {receiver}.acquire(); an exception before "
                    "release() holds the lock forever — use 'with "
                    f"{receiver}:'",
                )
