"""Rules guarding the seeded-randomness and clock-free determinism contract.

Every result this repository publishes is derived from an explicit
``numpy.random.Generator`` rooted in a ``SeedSequence`` (see
:mod:`repro.engine.jobs`).  Randomness drawn from hidden global state or
values read from the wall clock break bit-identical replay — and, when
they reach cache-key code, silently poison the content-addressed result
cache.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, ModuleContext, Rule, register_rule

__all__ = ["GlobalRngRule", "WallClockRule"]

#: numpy.random attributes that are part of the explicit-Generator API
#: (everything else is the legacy global-state / RandomState surface).
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` attributes that do not touch the module-level
#: Mersenne Twister.  ``Random`` instances are still discouraged (use
#: numpy Generators) but are at least explicitly seeded and local.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random"})


class _ImportTracker(ast.NodeVisitor):
    """Collect local names bound to numpy, numpy.random, and random."""

    def __init__(self) -> None:
        self.numpy_names: set[str] = set()
        self.numpy_random_names: set[str] = set()
        self.stdlib_random_names: set[str] = set()
        self.bad_imports: list[tuple[ast.AST, str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_names.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    self.numpy_random_names.add(alias.asname)
                else:
                    self.numpy_names.add("numpy")
            elif alias.name == "random":
                self.stdlib_random_names.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.numpy_random_names.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NUMPY_RANDOM_ALLOWED:
                    self.bad_imports.append(
                        (node, f"numpy.random.{alias.name}")
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in _STDLIB_RANDOM_ALLOWED:
                    self.bad_imports.append((node, f"random.{alias.name}"))
        self.generic_visit(node)


@register_rule("global-rng")
class GlobalRngRule(Rule):
    """Randomness must flow from an explicit Generator parameter."""

    title = "global-state RNG call (np.random.* / stdlib random.*)"
    severity = "error"
    rationale = (
        "Randomness drawn from hidden module-level state cannot be "
        "replayed: the engine's bit-identical-for-any-worker-count "
        "guarantee holds only because every stream is derived from an "
        "explicit SeedSequence (seed_root, seed_path).  A single "
        "np.random.* call anywhere in a job makes results depend on "
        "import order and scheduling."
    )
    hint = (
        "Thread an explicit numpy.random.Generator parameter through "
        "(rng=np.random.default_rng(seed) at the boundary; "
        "repro.utils.rng helpers derive child streams)."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        tracker = _ImportTracker()
        tracker.visit(context.tree)
        for node, name in tracker.bad_imports:
            yield self.finding(
                context,
                node,
                f"import of global-state RNG symbol {name}; use an "
                "explicit numpy.random.Generator instead",
            )
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Attribute):
                continue
            target = self._resolve(node, tracker)
            if target is not None:
                yield self.finding(
                    context,
                    node,
                    f"{target} uses process-global RNG state; all "
                    "randomness must flow from an explicit Generator/"
                    "SeedSequence parameter",
                )

    def _resolve(
        self, node: ast.Attribute, tracker: _ImportTracker
    ) -> str | None:
        value = node.value
        # np.random.<attr> / numpy.random.<attr>
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in tracker.numpy_names
        ):
            if node.attr not in _NUMPY_RANDOM_ALLOWED:
                return f"np.random.{node.attr}"
            return None
        if isinstance(value, ast.Name):
            # <numpy.random alias>.<attr>
            if value.id in tracker.numpy_random_names:
                if node.attr not in _NUMPY_RANDOM_ALLOWED:
                    return f"numpy.random.{node.attr}"
                return None
            # stdlib random.<attr>
            if value.id in tracker.stdlib_random_names:
                if node.attr not in _STDLIB_RANDOM_ALLOWED:
                    return f"random.{node.attr}"
        return None


#: ``time`` attributes that read a clock.
_CLOCK_CALLS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.datetime`` / ``datetime.date`` constructors reading a clock.
_DATETIME_CALLS = frozenset({"now", "utcnow", "today"})


@register_rule("wall-clock")
class WallClockRule(Rule):
    """No clock reads in kernel or cache-key code."""

    title = "wall-clock read in kernel/cache-key code"
    severity = "error"
    rationale = (
        "Numerical kernels and the modules that compute cache keys must "
        "be pure functions of their inputs.  A clock read in a kernel "
        "makes reruns non-identical; one that leaks into a cache key "
        "makes every run a cache miss (or, worse, lets two different "
        "computations collide).  Timing belongs in the telemetry layer "
        "(repro.telemetry spans), not in the kernels it observes.  The "
        "run-health layer (metrics exporter, resource sampler, trace "
        "diff, bench history) is held to the same bar for a different "
        "reason: its clock reads must all flow through the sanctioned "
        "repro.telemetry._clock shims so the full set of timestamp "
        "sources stays auditable in one module."
    )
    hint = (
        "Move timing to repro.telemetry spans around the call site, use "
        "the repro.telemetry._clock shims in run-health modules, or "
        "suppress with a justification when the value measures duration "
        "and provably never reaches a payload or cache key."
    )
    scope = (
        "repro.stats",
        "repro.reconstruction",
        "repro.linalg",
        "repro.randomization",
        "repro.metrics",
        "repro.mining",
        "repro.engine.jobs",
        "repro.engine.cache",
        # Run-health modules: clock reads only through the sanctioned
        # repro.telemetry._clock shims (which are themselves out of
        # scope — they are the one audited touch point).
        "repro.telemetry.exporter",
        "repro.telemetry.sampler",
        "repro.telemetry.diff",
        "repro.telemetry.history",
        "repro.telemetry.watch",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        time_names: set[str] = set()
        datetime_types: set[str] = set()
        clock_functions: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_names.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_types.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _CLOCK_CALLS:
                            clock_functions.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_types.add(alias.asname or alias.name)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in clock_functions:
                yield self.finding(
                    context,
                    node,
                    f"clock read {func.id}() in deterministic code",
                )
            elif isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in time_names
                    and func.attr in _CLOCK_CALLS
                ):
                    yield self.finding(
                        context,
                        node,
                        f"clock read time.{func.attr}() in deterministic "
                        "code",
                    )
                elif func.attr in _DATETIME_CALLS and self._is_datetime(
                    value, datetime_types
                ):
                    yield self.finding(
                        context,
                        node,
                        f"clock read datetime .{func.attr}() in "
                        "deterministic code",
                    )

    @staticmethod
    def _is_datetime(value: ast.expr, datetime_types: set[str]) -> bool:
        # datetime.now() via `from datetime import datetime`.
        if isinstance(value, ast.Name) and value.id in datetime_types:
            return True
        # datetime.datetime.now() via `import datetime`.
        return (
            isinstance(value, ast.Attribute)
            and value.attr in ("datetime", "date")
            and isinstance(value.value, ast.Name)
            and value.value.id in datetime_types
        )
