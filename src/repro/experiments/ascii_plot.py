"""Terminal line plots for experiment series (no matplotlib available).

The paper communicates its results as line charts; this renderer draws an
:class:`~repro.api.config.ExperimentSeries` as an ASCII chart so
`repro figure1 --plot` visually matches the published figures in any
terminal.  One glyph per curve, row-major rasterization, y-axis
auto-scaled with padded ticks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.api.config import ExperimentSeries
from repro.utils.validation import check_positive_int

__all__ = ["plot_series", "bar_chart"]

_GLYPHS = "*o+x#@%&"


def bar_chart(
    labels,
    values,
    *,
    width: int = 48,
    value_format=None,
) -> str:
    """Render labeled non-negative values as horizontal ASCII bars.

    Used by the ``repro trace`` viewer for its top-N-slowest-jobs
    section, and usable for any small ranked summary.

    Parameters
    ----------
    labels:
        One label per bar.
    values:
        Non-negative finite numbers, same length as ``labels``.
    width:
        Maximum bar length in characters.
    value_format:
        Optional ``callable(value) -> str`` for the right-hand value
        column; defaults to ``"{:g}"`` formatting.

    Returns
    -------
    str
        One line per bar: ``label |#### value``.
    """
    labels = [str(label) for label in labels]
    values = [float(value) for value in values]
    if len(labels) != len(values):
        raise ValidationError(
            f"bar_chart got {len(labels)} labels for {len(values)} values"
        )
    if not labels:
        raise ValidationError("bar_chart needs at least one bar")
    if any(not np.isfinite(value) or value < 0.0 for value in values):
        raise ValidationError(
            "bar_chart values must be finite and non-negative"
        )
    width = check_positive_int(width, "width", minimum=8)
    if value_format is None:
        value_format = "{:g}".format
    peak = max(values)
    label_width = min(max(len(label) for label in labels), 32)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width)) if peak > 0 else ""
        # At least one glyph for a nonzero value, so tiny bars stay visible.
        if value > 0 and not bar:
            bar = "#"
        lines.append(
            f"{label[:label_width]:<{label_width}} |{bar:<{width}} "
            f"{value_format(value)}"
        )
    return "\n".join(lines)


def plot_series(
    series: ExperimentSeries,
    *,
    width: int = 72,
    height: int = 20,
) -> str:
    """Render an experiment series as an ASCII line chart.

    Parameters
    ----------
    series:
        The regenerated figure data.
    width, height:
        Plot-area size in characters (axes and legend are extra).

    Returns
    -------
    str
        Multi-line chart; curves are drawn with distinct glyphs listed in
        the legend, later curves overdrawing earlier ones on collisions.
    """
    if not isinstance(series, ExperimentSeries):
        raise ValidationError(
            f"expected an ExperimentSeries, got {type(series).__name__}"
        )
    width = check_positive_int(width, "width", minimum=20)
    height = check_positive_int(height, "height", minimum=5)
    if len(series.methods) > len(_GLYPHS):
        raise ValidationError(
            f"cannot plot more than {len(_GLYPHS)} curves"
        )

    if not series.methods:
        raise ValidationError("series has no curves to plot")
    x = series.x_values
    if x.size == 0:
        raise ValidationError("series has no sweep points to plot")
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    all_values = np.concatenate(
        [series.series[m] for m in series.methods]
    )
    finite = all_values[np.isfinite(all_values)]
    if finite.size == 0:
        raise ValidationError(
            "series has no finite values to plot (all points are "
            "NaN/inf — every attack failed)"
        )
    y_lo, y_hi = float(finite.min()), float(finite.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    canvas = [[" "] * width for _ in range(height)]

    def to_col(value: float) -> int:
        return int(round((value - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(value: float) -> int:
        fraction = (value - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(round(fraction * (height - 1)))

    for glyph, method in zip(_GLYPHS, series.methods):
        curve = series.series[method]
        # Dense interpolation so curves read as lines, not dots.
        dense_x = np.linspace(x_lo, x_hi, width * 2)
        dense_y = np.interp(dense_x, x, curve)
        # Non-finite points (a failed attack's NaN curve segment) are
        # simply not drawn; the finite remainder still plots.
        for xv, yv in zip(dense_x, dense_y):
            if np.isfinite(yv):
                canvas[to_row(float(yv))][to_col(float(xv))] = glyph
        # Re-mark the actual data points last so they stay visible.
        for xv, yv in zip(x, curve):
            if np.isfinite(yv):
                canvas[to_row(float(yv))][to_col(float(xv))] = glyph

    lines = [f"  {series.name}: {series.x_label}"]
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = f"{y_hi:8.2f} |"
        elif row_index == height - 1:
            label = f"{y_lo:8.2f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    gap = max(width - len(left) - len(right), 1)
    lines.append("          " + left + " " * gap + right)
    legend = "   ".join(
        f"{glyph} {method}"
        for glyph, method in zip(_GLYPHS, series.methods)
    )
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)
