"""Engine task functions for the figure runners and ablations.

Every function here is one serializable unit of experiment work with the
engine task signature ``task(params, rng) -> dict`` (see
:mod:`repro.engine.jobs`).  They live at module level so process-pool
workers can resolve them by their ``"repro.experiments.tasks:<name>"``
reference, and they return plain JSON-serializable payloads so the
result cache can persist them.

Determinism contract
--------------------
Figure tasks consume the single engine-derived generator sequentially —
data generation first, then the disguise draw — exactly like the
historical in-process loops, so a task run under any executor is
bit-identical to the serial code it replaced.  Ablation tasks reproduce
the historical explicit integer seeding instead: they carry their seeds
in ``params`` and ignore the ``rng`` argument (their specs use
``seed_root=None``).
"""

from __future__ import annotations

import numpy as np

from repro.core.defense import NoiseDesigner
from repro.core.pipeline import AttackPipeline
from repro.data.copula import GaussianCopulaGenerator
from repro.data.synthetic import generate_dataset
from repro.metrics.error import root_mean_square_error
from repro.mining.naive_bayes import utility_report
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import (
    EnergyFractionSelector,
    FixedCountSelector,
    LargestGapSelector,
)
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
)
from repro.reconstruction.udr import UnivariateReconstructor

__all__ = [
    "two_level_trial",
    "correlated_noise_trial",
    "theorem52_check",
    "ablation_selection_workload",
    "ablation_covariance_point",
    "ablation_samplesize_point",
    "ablation_utility_scheme",
    "ablation_marginals_shape",
]


def _figure_attacks() -> dict:
    """The four-curve battery of Experiments 1-3."""
    return {
        "UDR": UnivariateReconstructor(prior="gaussian"),
        "SF": SpectralFilteringReconstructor(),
        "PCA-DR": PCAReconstructor(),
        "BE-DR": BayesEstimateReconstructor(),
    }


def two_level_trial(params, rng):
    """One (sweep-point, trial) run of Experiments 1-3.

    params: ``spectrum`` (eigenvalue list), ``n_records``, ``noise_std``.
    Returns ``{"rmse": {method: value}}`` for the four figure attacks.
    """
    dataset = generate_dataset(
        spectrum=np.asarray(params["spectrum"], dtype=np.float64),
        n_records=int(params["n_records"]),
        rng=rng,
    )
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(float(params["noise_std"])), _figure_attacks()
    )
    report = pipeline.run(dataset, rng=rng)
    return {
        "rmse": {name: report.rmse(name) for name in pipeline.attack_names}
    }


def correlated_noise_trial(params, rng):
    """One (profile, trial) run of Experiment 4 (Section 8.2 defense).

    params: ``spectrum``, ``n_records``, ``noise_power``, ``profile``.
    Returns the three curve RMSEs plus the measured Definition-8.1
    dissimilarity of the designed noise.
    """
    dataset = generate_dataset(
        spectrum=np.asarray(params["spectrum"], dtype=np.float64),
        n_records=int(params["n_records"]),
        rng=rng,
    )
    designer = NoiseDesigner(
        dataset.covariance_model, noise_power=float(params["noise_power"])
    )
    designed = designer.design(float(params["profile"]))
    attacks = {
        "SF": SpectralFilteringReconstructor(),
        "PCA-DR": PCAReconstructor(),
        "BE-DR": BayesEstimateReconstructor(),
    }
    pipeline = AttackPipeline(designed.scheme, attacks)
    report = pipeline.run(dataset, rng=rng)
    return {
        "rmse": {name: report.rmse(name) for name in attacks},
        "dissimilarity": float(designed.dissimilarity),
    }


def theorem52_check(params, rng):
    """Empirical Theorem-5.2 energies for every component count.

    params: ``n_attributes``, ``component_counts``, ``noise_std``,
    ``n_records``.  Returns the empirical and analytic mean-square
    values, aligned with ``component_counts``.
    """
    from repro.linalg.gram_schmidt import random_orthogonal

    n_attributes = int(params["n_attributes"])
    noise_std = float(params["noise_std"])
    basis = random_orthogonal(n_attributes, rng)
    noise = rng.normal(
        0.0, noise_std, size=(int(params["n_records"]), n_attributes)
    )
    empirical = []
    analytic = []
    for p in params["component_counts"]:
        q = basis[:, : int(p)]
        projected = noise @ q @ q.T
        empirical.append(float(np.mean(projected**2)))
        analytic.append(noise_std**2 * int(p) / n_attributes)
    return {"empirical": empirical, "analytic": analytic}


def ablation_selection_workload(params, rng):
    """A2 — the three PCA-DR selection rules on one workload spectrum.

    params: ``spectrum``, ``n_principal``, ``n_records``, ``noise_std``,
    ``data_seed``, ``attack_seed``.
    """
    n_principal = int(params["n_principal"])
    selectors = {
        f"oracle-fixed({n_principal})": FixedCountSelector(n_principal),
        "energy(0.95)": EnergyFractionSelector(0.95),
        "largest-gap": LargestGapSelector(),
    }
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=float(params["noise_std"])),
        {name: PCAReconstructor(sel) for name, sel in selectors.items()},
    )
    dataset = generate_dataset(
        spectrum=np.asarray(params["spectrum"], dtype=np.float64),
        n_records=int(params["n_records"]),
        rng=int(params["data_seed"]),
    )
    report = pipeline.run(dataset, rng=int(params["attack_seed"]))
    return {"rmse": {name: report.rmse(name) for name in selectors}}


def ablation_covariance_point(params, rng):
    """A3 — estimated-vs-oracle covariance attacks at one sample size.

    params: ``spectrum``, ``n_records``, ``noise_std``, ``data_seed``,
    ``noise_seed``.
    """
    dataset = generate_dataset(
        spectrum=np.asarray(params["spectrum"], dtype=np.float64),
        n_records=int(params["n_records"]),
        rng=int(params["data_seed"]),
    )
    scheme = AdditiveNoiseScheme(std=float(params["noise_std"]))
    disguised = scheme.disguise(dataset.values, rng=int(params["noise_seed"]))
    oracle_cov = dataset.population_covariance
    attacks = {
        "PCA-estimated": PCAReconstructor(),
        "PCA-oracle": PCAReconstructor(oracle_covariance=oracle_cov),
        "BE-estimated": BayesEstimateReconstructor(),
        "BE-oracle": BayesEstimateReconstructor(
            oracle_covariance=oracle_cov, oracle_mean=dataset.mean
        ),
    }
    return {
        "rmse": {
            name: root_mean_square_error(
                dataset.values, attack.reconstruct(disguised)
            )
            for name, attack in attacks.items()
        }
    }


def ablation_samplesize_point(params, rng):
    """A4 — the three-attack battery at one published-record count.

    params: ``spectrum``, ``n_records``, ``noise_std``, ``data_seed``,
    ``attack_seed``.
    """
    dataset = generate_dataset(
        spectrum=np.asarray(params["spectrum"], dtype=np.float64),
        n_records=int(params["n_records"]),
        rng=int(params["data_seed"]),
    )
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=float(params["noise_std"])),
        {
            "UDR": UnivariateReconstructor(),
            "PCA-DR": PCAReconstructor(),
            "BE-DR": BayesEstimateReconstructor(),
        },
    )
    report = pipeline.run(dataset, rng=int(params["attack_seed"]))
    return {
        "rmse": {name: report.rmse(name) for name in pipeline.attack_names}
    }


def _classed_data(n, n_attributes, data_seed):
    """A5's two-class training/test generator (unchanged seeding)."""
    from repro.data.covariance_builder import CovarianceModel
    from repro.stats.mvn import MultivariateNormal

    rng = np.random.default_rng(data_seed)
    model = CovarianceModel.from_spectrum(
        np.sort(rng.uniform(2.0, 40.0, n_attributes))[::-1],
        rng=data_seed,
    )
    half = n // 2
    offset = np.full(n_attributes, 6.0)
    class0 = MultivariateNormal(np.zeros(n_attributes), model.matrix).sample(
        half, rng=rng
    )
    class1 = MultivariateNormal(offset, model.matrix).sample(half, rng=rng)
    features = np.vstack([class0, class1])
    labels = np.array([0] * half + [1] * half)
    order = rng.permutation(n)
    return features[order], labels[order], model


def ablation_utility_scheme(params, rng):
    """A5 — naive-Bayes utility of one disguise scheme.

    params: ``scheme`` ("iid" or "correlated"), ``scheme_index``,
    ``n_train``, ``n_test``, ``n_attributes``, ``noise_std``, ``seed``.
    The train/test draw is seed-determined, so regenerating it per job
    keeps schemes independent without changing any number.
    """
    n_attributes = int(params["n_attributes"])
    noise_std = float(params["noise_std"])
    seed = int(params["seed"])
    train_x, train_y, model = _classed_data(
        int(params["n_train"]), n_attributes, seed
    )
    test_x, test_y, _ = _classed_data(
        int(params["n_test"]), n_attributes, seed + 99
    )
    if params["scheme"] == "iid":
        scheme = AdditiveNoiseScheme(std=noise_std)
    elif params["scheme"] == "correlated":
        scheme = CorrelatedNoiseScheme.matching_data_covariance(
            model.matrix, noise_power=n_attributes * noise_std**2
        )
    else:
        raise ValueError(f"unknown scheme {params['scheme']!r}")
    disguised = scheme.disguise(
        train_x, rng=seed + int(params["scheme_index"]) + 1
    )
    report = utility_report(
        train_x,
        disguised.disguised,
        train_y,
        test_x,
        test_y,
        noise_covariance=disguised.noise_model.covariance,
    )
    return {
        key: float(report[key])
        for key in ("original", "disguised_naive", "disguised_corrected")
    }


def ablation_marginals_shape(params, rng):
    """A6 — the attack battery on one non-normal marginal shape.

    params: ``spectrum``, ``marginal``, ``n_records``, ``noise_std``,
    ``copula_seed``, ``sample_seed``, ``attack_seed``.
    """
    generator = GaussianCopulaGenerator.from_spectrum(
        np.asarray(params["spectrum"], dtype=np.float64),
        marginal=params["marginal"],
        target_std=10.0,
        rng=int(params["copula_seed"]),
    )
    table = generator.sample(
        int(params["n_records"]), rng=int(params["sample_seed"])
    )
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=float(params["noise_std"])),
        {
            "UDR": UnivariateReconstructor(),
            "PCA-DR": PCAReconstructor(),
            "BE-DR": BayesEstimateReconstructor(),
        },
    )
    report = pipeline.run(table, rng=int(params["attack_seed"]))
    return {
        "rmse": {name: report.rmse(name) for name in pipeline.attack_names}
    }
