"""Plain-text rendering of experiment series.

The benchmark harness prints each regenerated figure as an aligned text
table — the same rows/series the paper plots — so `pytest benchmarks/`
output doubles as the reproduction record copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.api.config import ExperimentSeries

__all__ = ["series_to_rows", "render_series"]


def series_to_rows(series: ExperimentSeries) -> list[list[str]]:
    """Tabulate a series: header row, then one row per sweep point."""
    if not isinstance(series, ExperimentSeries):
        raise ValidationError(
            f"expected an ExperimentSeries, got {type(series).__name__}"
        )
    header = [series.x_label] + series.methods
    rows = [header]
    for index, x in enumerate(series.x_values):
        row = [_format_number(x)]
        row.extend(
            _format_number(series.series[method][index])
            for method in series.methods
        )
        rows.append(row)
    return rows


def render_series(series: ExperimentSeries, *, title: str | None = None) -> str:
    """Render a series as an aligned text table with a metadata header.

    Parameters
    ----------
    series:
        The regenerated figure data.
    title:
        Optional heading; defaults to the series name.
    """
    rows = series_to_rows(series)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    heading = title or f"Experiment: {series.name}"
    lines.append(heading)
    if series.metadata:
        meta = ", ".join(
            f"{key}={_format_value(value)}"
            for key, value in sorted(series.metadata.items())
        )
        lines.append(f"  [{meta}]")
    separator = "-+-".join("-" * width for width in widths)
    for row_index, row in enumerate(rows):
        padded = " | ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        )
        lines.append(padded)
        if row_index == 0:
            lines.append(separator)
    return "\n".join(lines)


def _format_number(value: float) -> str:
    value = float(value)
    # NaN marks a failed attack's curve point (the pipeline records the
    # error and carries on); render it literally instead of crashing on
    # int(nan).
    if not math.isfinite(value):
        return str(value)
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.4f}"


def _format_value(value) -> str:
    if isinstance(value, float):
        return _format_number(value)
    if isinstance(value, (list, tuple, np.ndarray)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    return str(value)
