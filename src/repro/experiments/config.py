"""Deprecated shim — this module moved to :mod:`repro.api.config`.

``SweepConfig``, ``ExperimentSeries``, and the ``DEFAULT_*`` constants
are part of the declarative-API surface now.  Importing them from here
still works but emits a :class:`DeprecationWarning`; update imports to
``repro.api.config`` (or just ``repro.api``).
"""

from __future__ import annotations

import warnings

_MOVED = (
    "DEFAULT_NOISE_STD",
    "DEFAULT_RECORDS",
    "DEFAULT_VARIANCE_PER_ATTRIBUTE",
    "SweepConfig",
    "ExperimentSeries",
)

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            "repro.experiments.config is deprecated; import "
            f"{name} from repro.api.config instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import config as _config

        return getattr(_config, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(__all__)
