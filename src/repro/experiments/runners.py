"""Runners regenerating the paper's four figures and Theorem 5.2.

Each runner reproduces one experiment's sweep exactly as Section 7 / 8.2
describes it, averaging over ``config.n_trials`` independent datasets per
sweep point, and returns an :class:`ExperimentSeries` with one RMSE curve
per attack.
"""

from __future__ import annotations

import numpy as np

from repro.core.defense import NoiseDesigner
from repro.core.pipeline import AttackPipeline
from repro.data.spectra import two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentSeries, SweepConfig
from repro.randomization.additive import AdditiveNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
)
from repro.reconstruction.udr import UnivariateReconstructor
from repro.utils.rng import spawn_generators

__all__ = [
    "run_experiment1_attributes",
    "run_experiment2_principal_components",
    "run_experiment3_nonprincipal_eigenvalues",
    "run_experiment4_correlated_noise",
    "run_theorem52_verification",
]

#: Attack battery of Experiments 1-3 (the four curves of Figures 1-3).
_FIGURE_METHODS = ("UDR", "SF", "PCA-DR", "BE-DR")


def _standard_attacks() -> dict:
    return {
        "UDR": UnivariateReconstructor(prior="gaussian"),
        "SF": SpectralFilteringReconstructor(),
        "PCA-DR": PCAReconstructor(),
        "BE-DR": BayesEstimateReconstructor(),
    }


def _run_two_level_sweep(
    name: str,
    x_label: str,
    sweep_points,
    spectrum_for_point,
    config: SweepConfig,
) -> ExperimentSeries:
    """Shared loop for Experiments 1-3 (i.i.d. noise, two-level spectra)."""
    points = list(sweep_points)
    if not points:
        raise ConfigurationError("sweep has no points")
    scheme = AdditiveNoiseScheme(config.noise_std)
    pipeline = AttackPipeline(scheme, _standard_attacks())
    point_rngs = spawn_generators(config.seed, len(points))

    curves = {method: np.zeros(len(points)) for method in _FIGURE_METHODS}
    for index, point in enumerate(points):
        spectrum = spectrum_for_point(point)
        trial_rngs = point_rngs[index].spawn(config.n_trials)
        for trial_rng in trial_rngs:
            dataset = generate_dataset(
                spectrum=spectrum,
                n_records=config.n_records,
                rng=trial_rng,
            )
            report = pipeline.run(dataset, rng=trial_rng)
            for method in _FIGURE_METHODS:
                curves[method][index] += report.rmse(method)
    for method in _FIGURE_METHODS:
        curves[method] /= config.n_trials

    return ExperimentSeries(
        name=name,
        x_label=x_label,
        x_values=np.asarray(points, dtype=np.float64),
        series=curves,
        metadata={
            "n_records": config.n_records,
            "noise_std": config.noise_std,
            "n_trials": config.n_trials,
        },
    )


def run_experiment1_attributes(
    config: SweepConfig | None = None,
    *,
    attribute_counts=None,
    n_principal: int = 5,
) -> ExperimentSeries:
    """Experiment 1 / Figure 1: RMSE vs the number of attributes ``m``.

    The number of principal components is fixed (``p = 5`` in the paper)
    while ``m`` grows, so correlations rise with ``m``.  Eq. 12 keeps the
    trace at ``variance_per_attribute * m`` so UDR stays flat.
    """
    config = config or SweepConfig()
    if attribute_counts is None:
        attribute_counts = [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    counts = [int(m) for m in attribute_counts]
    if any(m < n_principal for m in counts):
        raise ConfigurationError(
            f"all attribute counts must be >= n_principal={n_principal}"
        )

    def spectrum_for(m: int):
        if m == n_principal:
            # Degenerate first point: every component is principal.
            return two_level_spectrum(
                m, m, total_variance=config.trace_for(m),
                non_principal_value=config.non_principal_value,
            )
        return two_level_spectrum(
            m,
            n_principal,
            total_variance=config.trace_for(m),
            non_principal_value=config.non_principal_value,
        )

    series = _run_two_level_sweep(
        "figure1",
        "number of attributes (m)",
        counts,
        spectrum_for,
        config,
    )
    series.metadata["n_principal"] = n_principal
    return series


def run_experiment2_principal_components(
    config: SweepConfig | None = None,
    *,
    principal_counts=None,
    n_attributes: int = 100,
) -> ExperimentSeries:
    """Experiment 2 / Figure 2: RMSE vs the number of principals ``p``.

    ``m`` is fixed at 100; growing ``p`` spreads the (fixed, Eq. 12)
    total variance over more directions, weakening correlations.
    """
    config = config or SweepConfig()
    if principal_counts is None:
        principal_counts = [2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    counts = [int(p) for p in principal_counts]
    if any(p < 1 or p > n_attributes for p in counts):
        raise ConfigurationError(
            f"principal counts must lie in [1, {n_attributes}]"
        )
    trace = config.trace_for(n_attributes)

    def spectrum_for(p: int):
        return two_level_spectrum(
            n_attributes,
            p,
            total_variance=trace,
            non_principal_value=config.non_principal_value,
        )

    series = _run_two_level_sweep(
        "figure2",
        "number of principal components (p)",
        counts,
        spectrum_for,
        config,
    )
    series.metadata["n_attributes"] = n_attributes
    return series


def run_experiment3_nonprincipal_eigenvalues(
    config: SweepConfig | None = None,
    *,
    eigenvalues=None,
    n_attributes: int = 100,
    n_principal: int = 20,
    principal_value: float = 400.0,
) -> ExperimentSeries:
    """Experiment 3 / Figure 3: RMSE vs the non-principal eigenvalue.

    The paper fixes 20 principal eigenvalues at 400 and sweeps the other
    80 from 1 to 50.  Larger non-principal eigenvalues mean more real
    signal lives off the principal subspace — PCA-style filtering
    discards it and eventually does worse than UDR, while BE-DR
    converges to UDR from below (Section 7.4).
    """
    config = config or SweepConfig()
    if eigenvalues is None:
        eigenvalues = [1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    values = [float(e) for e in eigenvalues]
    if any(e <= 0.0 or e > principal_value for e in values):
        raise ConfigurationError(
            f"non-principal eigenvalues must lie in (0, {principal_value}]"
        )

    def spectrum_for(e: float):
        return two_level_spectrum(
            n_attributes,
            n_principal,
            principal_value=principal_value,
            non_principal_value=e,
        )

    series = _run_two_level_sweep(
        "figure3",
        "eigenvalue of the non-principal components",
        values,
        spectrum_for,
        config,
    )
    series.metadata.update(
        {
            "n_attributes": n_attributes,
            "n_principal": n_principal,
            "principal_value": principal_value,
        }
    )
    return series


def run_experiment4_correlated_noise(
    config: SweepConfig | None = None,
    *,
    profiles=None,
    n_attributes: int = 100,
    n_principal: int = 50,
) -> ExperimentSeries:
    """Experiment 4 / Figure 4: the correlated-noise defense (Section 8.2).

    Data: 100 attributes, the first 50 eigenvalues large (the paper's
    setup).  Noise: same eigenvectors as the data, eigenvalue profile
    swept from proportional (similar, dissimilarity ~ 0) through flat
    (independent noise — the figure's vertical line, ``profile = 1``)
    to reversed (concentrated on non-principal directions).  Total noise
    power is fixed at ``m * sigma^2`` throughout.

    The x-axis is the *measured* Definition-8.1 dissimilarity; curves are
    SF, PCA-DR, and the improved BE-DR (Theorem 8.1).
    """
    config = config or SweepConfig()
    if profiles is None:
        profiles = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
    profile_values = [float(t) for t in profiles]
    noise_power = n_attributes * config.noise_std**2
    trace = config.trace_for(n_attributes)
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=trace,
        non_principal_value=config.non_principal_value,
    )
    attacks = {
        "SF": SpectralFilteringReconstructor(),
        "PCA-DR": PCAReconstructor(),
        "BE-DR": BayesEstimateReconstructor(),
    }
    methods = list(attacks)
    point_rngs = spawn_generators(config.seed, len(profile_values))

    curves = {method: np.zeros(len(profile_values)) for method in methods}
    dissimilarities = np.zeros(len(profile_values))
    for index, profile in enumerate(profile_values):
        trial_rngs = point_rngs[index].spawn(config.n_trials)
        for trial_rng in trial_rngs:
            dataset = generate_dataset(
                spectrum=spectrum,
                n_records=config.n_records,
                rng=trial_rng,
            )
            designer = NoiseDesigner(
                dataset.covariance_model, noise_power=noise_power
            )
            designed = designer.design(profile)
            pipeline = AttackPipeline(designed.scheme, attacks)
            report = pipeline.run(dataset, rng=trial_rng)
            dissimilarities[index] += designed.dissimilarity
            for method in methods:
                curves[method][index] += report.rmse(method)
        dissimilarities[index] /= config.n_trials
        for method in methods:
            curves[method][index] /= config.n_trials

    return ExperimentSeries(
        name="figure4",
        x_label="correlation dissimilarity (noise vs data)",
        x_values=dissimilarities,
        series=curves,
        metadata={
            "n_records": config.n_records,
            "noise_power": noise_power,
            "profiles": profile_values,
            "independent_noise_profile": 1.0,
            "n_attributes": n_attributes,
            "n_principal": n_principal,
            "n_trials": config.n_trials,
        },
    )


def run_theorem52_verification(
    *,
    n_attributes: int = 100,
    component_counts=(5, 20, 50, 80, 100),
    noise_std: float = 5.0,
    n_records: int = 5000,
    seed: int = 52,
) -> ExperimentSeries:
    """Empirical check of Theorem 5.2: ``mean_square(R Q_p Q_p^T) = sigma^2 p/m``.

    Draws i.i.d. noise, projects it onto the top-``p`` eigenvectors of a
    random orthogonal basis, and compares the surviving energy to the
    analytic ``sigma^2 * p / m``.
    """
    from repro.linalg.gram_schmidt import random_orthogonal
    from repro.utils.rng import as_generator

    generator = as_generator(seed)
    basis = random_orthogonal(n_attributes, generator)
    noise = generator.normal(0.0, noise_std, size=(n_records, n_attributes))

    counts = [int(p) for p in component_counts]
    empirical = np.zeros(len(counts))
    analytic = np.zeros(len(counts))
    for index, p in enumerate(counts):
        if not 1 <= p <= n_attributes:
            raise ConfigurationError(
                f"component counts must lie in [1, {n_attributes}]"
            )
        q = basis[:, :p]
        projected = noise @ q @ q.T
        empirical[index] = float(np.mean(projected**2))
        analytic[index] = noise_std**2 * p / n_attributes

    return ExperimentSeries(
        name="theorem52",
        x_label="number of principal components (p)",
        x_values=np.asarray(counts, dtype=np.float64),
        series={"empirical": empirical, "analytic": analytic},
        metadata={
            "n_attributes": n_attributes,
            "noise_std": noise_std,
            "n_records": n_records,
        },
    )
