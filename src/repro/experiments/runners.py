"""Runners regenerating the paper's four figures and Theorem 5.2.

Each runner reproduces one experiment's sweep exactly as Section 7 / 8.2
describes it, averaging over ``config.n_trials`` independent datasets per
sweep point, and returns an :class:`ExperimentSeries` with one RMSE curve
per attack.

Execution goes through :mod:`repro.engine`: a runner expands its sweep
into one :class:`~repro.engine.jobs.JobSpec` per (sweep-point, trial),
hands the list to an :class:`~repro.engine.Engine`, and aggregates the
returned payloads.  Every job derives its generator from ``(config.seed,
(point_index, trial_index))`` — the same ``spawn_generators`` tree the
historical serial loops used — so any executor backend, worker count, or
cached rerun produces bit-identical series, and extending a sweep never
changes existing points.
"""

from __future__ import annotations

import numpy as np

from repro.data.spectra import two_level_spectrum
from repro.engine import Engine, JobSpec
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentSeries, SweepConfig

__all__ = [
    "run_experiment1_attributes",
    "run_experiment2_principal_components",
    "run_experiment3_nonprincipal_eigenvalues",
    "run_experiment4_correlated_noise",
    "run_theorem52_verification",
]

#: Attack battery of Experiments 1-3 (the four curves of Figures 1-3).
_FIGURE_METHODS = ("UDR", "SF", "PCA-DR", "BE-DR")

_TWO_LEVEL_TASK = "repro.experiments.tasks:two_level_trial"
_CORRELATED_TASK = "repro.experiments.tasks:correlated_noise_trial"
_THEOREM52_TASK = "repro.experiments.tasks:theorem52_check"


def _run_two_level_sweep(
    name: str,
    x_label: str,
    sweep_points,
    spectrum_for_point,
    config: SweepConfig,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Shared sweep for Experiments 1-3 (i.i.d. noise, two-level spectra)."""
    points = list(sweep_points)
    if not points:
        raise ConfigurationError("sweep has no points")
    engine = engine or Engine()

    specs = []
    for index, point in enumerate(points):
        spectrum = np.asarray(spectrum_for_point(point), dtype=np.float64)
        for trial in range(config.n_trials):
            specs.append(
                JobSpec(
                    task=_TWO_LEVEL_TASK,
                    params={
                        "spectrum": spectrum.tolist(),
                        "n_records": config.n_records,
                        "noise_std": config.noise_std,
                    },
                    seed_root=config.seed,
                    seed_path=(index, trial),
                )
            )
    results = engine.run(specs)

    curves = {method: np.zeros(len(points)) for method in _FIGURE_METHODS}
    for job_index, result in enumerate(results):
        point_index = job_index // config.n_trials
        for method in _FIGURE_METHODS:
            curves[method][point_index] += result.values["rmse"][method]
    for method in _FIGURE_METHODS:
        curves[method] /= config.n_trials

    return ExperimentSeries(
        name=name,
        x_label=x_label,
        x_values=np.asarray(points, dtype=np.float64),
        series=curves,
        metadata={
            "n_records": config.n_records,
            "noise_std": config.noise_std,
            "n_trials": config.n_trials,
        },
    )


def run_experiment1_attributes(
    config: SweepConfig | None = None,
    *,
    attribute_counts=None,
    n_principal: int = 5,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 1 / Figure 1: RMSE vs the number of attributes ``m``.

    The number of principal components is fixed (``p = 5`` in the paper)
    while ``m`` grows, so correlations rise with ``m``.  Eq. 12 keeps the
    trace at ``variance_per_attribute * m`` so UDR stays flat.
    """
    config = config or SweepConfig()
    if attribute_counts is None:
        attribute_counts = [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    counts = [int(m) for m in attribute_counts]
    if any(m < n_principal for m in counts):
        raise ConfigurationError(
            f"all attribute counts must be >= n_principal={n_principal}"
        )

    def spectrum_for(m: int):
        if m == n_principal:
            # Degenerate first point: every component is principal.
            return two_level_spectrum(
                m, m, total_variance=config.trace_for(m),
                non_principal_value=config.non_principal_value,
            )
        return two_level_spectrum(
            m,
            n_principal,
            total_variance=config.trace_for(m),
            non_principal_value=config.non_principal_value,
        )

    series = _run_two_level_sweep(
        "figure1",
        "number of attributes (m)",
        counts,
        spectrum_for,
        config,
        engine,
    )
    series.metadata["n_principal"] = n_principal
    return series


def run_experiment2_principal_components(
    config: SweepConfig | None = None,
    *,
    principal_counts=None,
    n_attributes: int = 100,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 2 / Figure 2: RMSE vs the number of principals ``p``.

    ``m`` is fixed at 100; growing ``p`` spreads the (fixed, Eq. 12)
    total variance over more directions, weakening correlations.
    """
    config = config or SweepConfig()
    if principal_counts is None:
        principal_counts = [2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    counts = [int(p) for p in principal_counts]
    if any(p < 1 or p > n_attributes for p in counts):
        raise ConfigurationError(
            f"principal counts must lie in [1, {n_attributes}]"
        )
    trace = config.trace_for(n_attributes)

    def spectrum_for(p: int):
        return two_level_spectrum(
            n_attributes,
            p,
            total_variance=trace,
            non_principal_value=config.non_principal_value,
        )

    series = _run_two_level_sweep(
        "figure2",
        "number of principal components (p)",
        counts,
        spectrum_for,
        config,
        engine,
    )
    series.metadata["n_attributes"] = n_attributes
    return series


def run_experiment3_nonprincipal_eigenvalues(
    config: SweepConfig | None = None,
    *,
    eigenvalues=None,
    n_attributes: int = 100,
    n_principal: int = 20,
    principal_value: float = 400.0,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 3 / Figure 3: RMSE vs the non-principal eigenvalue.

    The paper fixes 20 principal eigenvalues at 400 and sweeps the other
    80 from 1 to 50.  Larger non-principal eigenvalues mean more real
    signal lives off the principal subspace — PCA-style filtering
    discards it and eventually does worse than UDR, while BE-DR
    converges to UDR from below (Section 7.4).
    """
    config = config or SweepConfig()
    if eigenvalues is None:
        eigenvalues = [1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    values = [float(e) for e in eigenvalues]
    if any(e <= 0.0 or e > principal_value for e in values):
        raise ConfigurationError(
            f"non-principal eigenvalues must lie in (0, {principal_value}]"
        )

    def spectrum_for(e: float):
        return two_level_spectrum(
            n_attributes,
            n_principal,
            principal_value=principal_value,
            non_principal_value=e,
        )

    series = _run_two_level_sweep(
        "figure3",
        "eigenvalue of the non-principal components",
        values,
        spectrum_for,
        config,
        engine,
    )
    series.metadata.update(
        {
            "n_attributes": n_attributes,
            "n_principal": n_principal,
            "principal_value": principal_value,
        }
    )
    return series


def run_experiment4_correlated_noise(
    config: SweepConfig | None = None,
    *,
    profiles=None,
    n_attributes: int = 100,
    n_principal: int = 50,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 4 / Figure 4: the correlated-noise defense (Section 8.2).

    Data: 100 attributes, the first 50 eigenvalues large (the paper's
    setup).  Noise: same eigenvectors as the data, eigenvalue profile
    swept from proportional (similar, dissimilarity ~ 0) through flat
    (independent noise — the figure's vertical line, ``profile = 1``)
    to reversed (concentrated on non-principal directions).  Total noise
    power is fixed at ``m * sigma^2`` throughout.

    The x-axis is the *measured* Definition-8.1 dissimilarity; curves are
    SF, PCA-DR, and the improved BE-DR (Theorem 8.1).
    """
    config = config or SweepConfig()
    if profiles is None:
        profiles = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
    profile_values = [float(t) for t in profiles]
    engine = engine or Engine()
    noise_power = n_attributes * config.noise_std**2
    trace = config.trace_for(n_attributes)
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=trace,
        non_principal_value=config.non_principal_value,
    )
    methods = ["SF", "PCA-DR", "BE-DR"]

    specs = []
    for index, profile in enumerate(profile_values):
        for trial in range(config.n_trials):
            specs.append(
                JobSpec(
                    task=_CORRELATED_TASK,
                    params={
                        "spectrum": np.asarray(spectrum).tolist(),
                        "n_records": config.n_records,
                        "noise_power": noise_power,
                        "profile": profile,
                    },
                    seed_root=config.seed,
                    seed_path=(index, trial),
                )
            )
    results = engine.run(specs)

    curves = {method: np.zeros(len(profile_values)) for method in methods}
    dissimilarities = np.zeros(len(profile_values))
    for job_index, result in enumerate(results):
        point_index = job_index // config.n_trials
        dissimilarities[point_index] += result.values["dissimilarity"]
        for method in methods:
            curves[method][point_index] += result.values["rmse"][method]
    dissimilarities /= config.n_trials
    for method in methods:
        curves[method] /= config.n_trials

    return ExperimentSeries(
        name="figure4",
        x_label="correlation dissimilarity (noise vs data)",
        x_values=dissimilarities,
        series=curves,
        metadata={
            "n_records": config.n_records,
            "noise_power": noise_power,
            "profiles": profile_values,
            "independent_noise_profile": 1.0,
            "n_attributes": n_attributes,
            "n_principal": n_principal,
            "n_trials": config.n_trials,
        },
    )


def run_theorem52_verification(
    *,
    n_attributes: int = 100,
    component_counts=(5, 20, 50, 80, 100),
    noise_std: float = 5.0,
    n_records: int = 5000,
    seed: int = 52,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Empirical check of Theorem 5.2: ``mean_square(R Q_p Q_p^T) = sigma^2 p/m``.

    Draws i.i.d. noise, projects it onto the top-``p`` eigenvectors of a
    random orthogonal basis, and compares the surviving energy to the
    analytic ``sigma^2 * p / m``.  Runs as a single engine job whose
    generator is the root ``SeedSequence(seed)`` — identical to the
    historical direct computation.
    """
    counts = [int(p) for p in component_counts]
    for p in counts:
        if not 1 <= p <= n_attributes:
            raise ConfigurationError(
                f"component counts must lie in [1, {n_attributes}]"
            )
    engine = engine or Engine()
    spec = JobSpec(
        task=_THEOREM52_TASK,
        params={
            "n_attributes": n_attributes,
            "component_counts": counts,
            "noise_std": noise_std,
            "n_records": n_records,
        },
        seed_root=seed,
        seed_path=(),
    )
    (result,) = engine.run([spec])

    return ExperimentSeries(
        name="theorem52",
        x_label="number of principal components (p)",
        x_values=np.asarray(counts, dtype=np.float64),
        series={
            "empirical": np.asarray(result.values["empirical"]),
            "analytic": np.asarray(result.values["analytic"]),
        },
        metadata={
            "n_attributes": n_attributes,
            "noise_std": noise_std,
            "n_records": n_records,
        },
    )
