"""Runners regenerating the paper's four figures and Theorem 5.2.

Each runner is now a thin wrapper over the declarative API: it builds
the corresponding built-in :class:`~repro.api.spec.ExperimentSpec`
(:mod:`repro.api.builtin`), executes it through
:func:`~repro.api.runner.run_spec`, and returns the aggregated
:class:`~repro.api.config.ExperimentSeries`.

The specs compile into exactly the engine jobs the historical
hand-written loops emitted — same task references, same params, same
``(config.seed, (point_index, trial_index))`` seed tree — so any
executor backend, worker count, or cached rerun produces bit-identical
series, and extending a sweep never changes existing points.
"""

from __future__ import annotations

from repro.api.builtin import (
    figure1_spec,
    figure2_spec,
    figure3_spec,
    figure4_spec,
    theorem52_spec,
)
from repro.api.config import ExperimentSeries, SweepConfig
from repro.api.runner import run_spec
from repro.engine import Engine

__all__ = [
    "run_experiment1_attributes",
    "run_experiment2_principal_components",
    "run_experiment3_nonprincipal_eigenvalues",
    "run_experiment4_correlated_noise",
    "run_theorem52_verification",
]


def run_experiment1_attributes(
    config: SweepConfig | None = None,
    *,
    attribute_counts=None,
    n_principal: int = 5,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 1 / Figure 1: RMSE vs the number of attributes ``m``.

    The number of principal components is fixed (``p = 5`` in the paper)
    while ``m`` grows, so correlations rise with ``m``.  Eq. 12 keeps the
    trace at ``variance_per_attribute * m`` so UDR stays flat.
    """
    spec = figure1_spec(
        config, attribute_counts=attribute_counts, n_principal=n_principal
    )
    return run_spec(spec, engine=engine).to_series()


def run_experiment2_principal_components(
    config: SweepConfig | None = None,
    *,
    principal_counts=None,
    n_attributes: int = 100,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 2 / Figure 2: RMSE vs the number of principals ``p``.

    ``m`` is fixed at 100; growing ``p`` spreads the (fixed, Eq. 12)
    total variance over more directions, weakening correlations.
    """
    spec = figure2_spec(
        config, principal_counts=principal_counts, n_attributes=n_attributes
    )
    return run_spec(spec, engine=engine).to_series()


def run_experiment3_nonprincipal_eigenvalues(
    config: SweepConfig | None = None,
    *,
    eigenvalues=None,
    n_attributes: int = 100,
    n_principal: int = 20,
    principal_value: float = 400.0,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 3 / Figure 3: RMSE vs the non-principal eigenvalue.

    The paper fixes 20 principal eigenvalues at 400 and sweeps the other
    80 from 1 to 50.  Larger non-principal eigenvalues mean more real
    signal lives off the principal subspace — PCA-style filtering
    discards it and eventually does worse than UDR, while BE-DR
    converges to UDR from below (Section 7.4).
    """
    spec = figure3_spec(
        config,
        eigenvalues=eigenvalues,
        n_attributes=n_attributes,
        n_principal=n_principal,
        principal_value=principal_value,
    )
    return run_spec(spec, engine=engine).to_series()


def run_experiment4_correlated_noise(
    config: SweepConfig | None = None,
    *,
    profiles=None,
    n_attributes: int = 100,
    n_principal: int = 50,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Experiment 4 / Figure 4: the correlated-noise defense (Section 8.2).

    Data: 100 attributes, the first 50 eigenvalues large (the paper's
    setup).  Noise: same eigenvectors as the data, eigenvalue profile
    swept from proportional (similar, dissimilarity ~ 0) through flat
    (independent noise — the figure's vertical line, ``profile = 1``)
    to reversed (concentrated on non-principal directions).  Total noise
    power is fixed at ``m * sigma^2`` throughout.

    The x-axis is the *measured* Definition-8.1 dissimilarity; curves are
    SF, PCA-DR, and the improved BE-DR (Theorem 8.1).
    """
    spec = figure4_spec(
        config,
        profiles=profiles,
        n_attributes=n_attributes,
        n_principal=n_principal,
    )
    return run_spec(spec, engine=engine).to_series()


def run_theorem52_verification(
    *,
    n_attributes: int = 100,
    component_counts=(5, 20, 50, 80, 100),
    noise_std: float = 5.0,
    n_records: int = 5000,
    seed: int = 52,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """Empirical check of Theorem 5.2: ``mean_square(R Q_p Q_p^T) = sigma^2 p/m``.

    Draws i.i.d. noise, projects it onto the top-``p`` eigenvectors of a
    random orthogonal basis, and compares the surviving energy to the
    analytic ``sigma^2 * p / m``.  Runs as a single engine job whose
    generator is the root ``SeedSequence(seed)`` — identical to the
    historical direct computation.
    """
    spec = theorem52_spec(
        n_attributes=n_attributes,
        component_counts=component_counts,
        noise_std=noise_std,
        n_records=n_records,
        seed=seed,
    )
    return run_spec(spec, engine=engine).to_series()
