"""Experiment harness regenerating every figure in the paper.

One runner per figure (Section 7's Experiments 1-3 and Section 8.2's
Experiment 4), plus the Theorem 5.2 verification and the ablations listed
in DESIGN.md.  Runners return :class:`~repro.api.config.
ExperimentSeries` objects; :mod:`repro.experiments.reporting` renders them
as the text tables the benchmarks print.
"""

from repro.experiments.ablations import (
    run_ablation_covariance,
    run_ablation_marginals,
    run_ablation_samplesize,
    run_ablation_selection,
    run_ablation_utility,
)
from repro.experiments.ascii_plot import plot_series
from repro.api.config import (
    DEFAULT_NOISE_STD,
    DEFAULT_RECORDS,
    DEFAULT_VARIANCE_PER_ATTRIBUTE,
    ExperimentSeries,
    SweepConfig,
)
from repro.experiments.reporting import render_series, series_to_rows
from repro.experiments.runners import (
    run_experiment1_attributes,
    run_experiment2_principal_components,
    run_experiment3_nonprincipal_eigenvalues,
    run_experiment4_correlated_noise,
    run_theorem52_verification,
)

__all__ = [
    "run_ablation_covariance",
    "run_ablation_marginals",
    "run_ablation_samplesize",
    "run_ablation_selection",
    "run_ablation_utility",
    "plot_series",
    "DEFAULT_NOISE_STD",
    "DEFAULT_RECORDS",
    "DEFAULT_VARIANCE_PER_ATTRIBUTE",
    "ExperimentSeries",
    "SweepConfig",
    "render_series",
    "series_to_rows",
    "run_experiment1_attributes",
    "run_experiment2_principal_components",
    "run_experiment3_nonprincipal_eigenvalues",
    "run_experiment4_correlated_noise",
    "run_theorem52_verification",
]
