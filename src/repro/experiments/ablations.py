"""Ablation runners (DESIGN.md A2-A6).

These are not figures from the paper; they probe the design choices the
paper makes implicitly — which component-selection rule, how much the
Theorem-5.1 estimate costs vs the true covariance, how sample size and
non-normal marginals move the results, and whether disguised data stays
minable.  Each returns an :class:`ExperimentSeries` like the figure
runners, so the same reporting and benchmark plumbing applies.

Like the figure runners, every ablation is a thin wrapper over its
built-in :class:`~repro.api.spec.ExperimentSpec`
(:mod:`repro.api.builtin`) executed through
:func:`~repro.api.runner.run_spec`.  The ablations keep their historical
explicit integer seeding: each compiled job carries its seeds in
``params`` and is therefore bit-identical to the old in-process loops
under any executor backend.
"""

from __future__ import annotations

from repro.api.builtin import (
    ablation_covariance_spec,
    ablation_marginals_spec,
    ablation_samplesize_spec,
    ablation_selection_spec,
    ablation_utility_spec,
)
from repro.api.config import ExperimentSeries
from repro.api.runner import run_spec
from repro.engine import Engine

__all__ = [
    "run_ablation_selection",
    "run_ablation_covariance",
    "run_ablation_samplesize",
    "run_ablation_utility",
    "run_ablation_marginals",
]


def run_ablation_selection(
    *,
    n_attributes: int = 60,
    n_principal: int = 5,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 42,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A2 — PCA-DR component-selection rules across spectrum shapes.

    Compares oracle fixed-count, energy-fraction, and largest-gap (the
    paper's choice) on a clean two-level spectrum and on a geometric
    decay with no gap to find.
    """
    spec = ablation_selection_spec(
        n_attributes=n_attributes,
        n_principal=n_principal,
        n_records=n_records,
        noise_std=noise_std,
        seed=seed,
    )
    return run_spec(spec, engine=engine).to_series()


def run_ablation_covariance(
    *,
    sample_sizes=(100, 200, 500, 1000, 2000, 5000),
    n_attributes: int = 40,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A3 — Theorem-5.1 estimated covariance vs the oracle, across n."""
    spec = ablation_covariance_spec(
        sample_sizes=sample_sizes,
        n_attributes=n_attributes,
        n_principal=n_principal,
        noise_std=noise_std,
        seed=seed,
    )
    return run_spec(spec, engine=engine).to_series()


def run_ablation_samplesize(
    *,
    sample_sizes=(100, 250, 500, 1000, 2500, 5000, 10000),
    n_attributes: int = 50,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A4 — attack accuracy vs the number of published records."""
    spec = ablation_samplesize_spec(
        sample_sizes=sample_sizes,
        n_attributes=n_attributes,
        n_principal=n_principal,
        noise_std=noise_std,
        seed=seed,
    )
    return run_spec(spec, engine=engine).to_series()


def run_ablation_utility(
    *,
    n_train: int = 6000,
    n_test: int = 3000,
    n_attributes: int = 8,
    noise_std: float = 4.0,
    seed: int = 0,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A5 — naive-Bayes utility under the baseline and improved schemes."""
    spec = ablation_utility_spec(
        n_train=n_train,
        n_test=n_test,
        n_attributes=n_attributes,
        noise_std=noise_std,
        seed=seed,
    )
    return run_spec(spec, engine=engine).to_series()


def run_ablation_marginals(
    *,
    marginals=("normal", "lognormal", "uniform", "bimodal"),
    n_attributes: int = 30,
    n_principal: int = 4,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 11,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A6 — non-normal marginals (Section 6's normality assumption).

    BE-DR is derived for multivariate-normal data; real attributes are
    skewed or multi-modal.  This ablation keeps the correlation structure
    fixed (Gaussian copula) and swaps the marginals, measuring how much
    of the attack's edge over UDR survives model misspecification.
    """
    spec = ablation_marginals_spec(
        marginals=marginals,
        n_attributes=n_attributes,
        n_principal=n_principal,
        n_records=n_records,
        noise_std=noise_std,
        seed=seed,
    )
    return run_spec(spec, engine=engine).to_series()
