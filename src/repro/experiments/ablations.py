"""Ablation runners (DESIGN.md A2-A6).

These are not figures from the paper; they probe the design choices the
paper makes implicitly — which component-selection rule, how much the
Theorem-5.1 estimate costs vs the true covariance, how sample size and
non-normal marginals move the results, and whether disguised data stays
minable.  Each returns an :class:`ExperimentSeries` like the figure
runners, so the same reporting and benchmark plumbing applies.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import AttackPipeline
from repro.data.copula import GaussianCopulaGenerator
from repro.data.spectra import decaying_spectrum, two_level_spectrum
from repro.data.synthetic import generate_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentSeries
from repro.metrics.error import root_mean_square_error
from repro.mining.naive_bayes import utility_report
from repro.randomization.additive import AdditiveNoiseScheme
from repro.randomization.correlated import CorrelatedNoiseScheme
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import (
    EnergyFractionSelector,
    FixedCountSelector,
    LargestGapSelector,
)
from repro.reconstruction.udr import UnivariateReconstructor

__all__ = [
    "run_ablation_selection",
    "run_ablation_covariance",
    "run_ablation_samplesize",
    "run_ablation_utility",
    "run_ablation_marginals",
]


def run_ablation_selection(
    *,
    n_attributes: int = 60,
    n_principal: int = 5,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 42,
) -> ExperimentSeries:
    """A2 — PCA-DR component-selection rules across spectrum shapes.

    Compares oracle fixed-count, energy-fraction, and largest-gap (the
    paper's choice) on a clean two-level spectrum and on a geometric
    decay with no gap to find.
    """
    selectors = {
        f"oracle-fixed({n_principal})": FixedCountSelector(n_principal),
        "energy(0.95)": EnergyFractionSelector(0.95),
        "largest-gap": LargestGapSelector(),
    }
    workloads = {
        f"two-level(m={n_attributes},p={n_principal})": two_level_spectrum(
            n_attributes,
            n_principal,
            total_variance=100.0 * n_attributes,
            non_principal_value=4.0,
        ),
        f"decaying(m={n_attributes},rate=0.9)": decaying_spectrum(
            n_attributes, decay=0.9, total_variance=100.0 * n_attributes
        ),
    }
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=noise_std),
        {name: PCAReconstructor(sel) for name, sel in selectors.items()},
    )
    curves = {name: [] for name in selectors}
    for index, spectrum in enumerate(workloads.values()):
        dataset = generate_dataset(
            spectrum=spectrum, n_records=n_records, rng=seed + index
        )
        report = pipeline.run(dataset, rng=seed + 100 + index)
        for name in selectors:
            curves[name].append(report.rmse(name))
    return ExperimentSeries(
        name="ablation-selection",
        x_label="workload (0=two-level, 1=decaying)",
        x_values=np.arange(len(workloads), dtype=float),
        series=curves,
        metadata={"workloads": list(workloads), "noise_std": noise_std},
    )


def run_ablation_covariance(
    *,
    sample_sizes=(100, 200, 500, 1000, 2000, 5000),
    n_attributes: int = 40,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
) -> ExperimentSeries:
    """A3 — Theorem-5.1 estimated covariance vs the oracle, across n."""
    sizes = [int(n) for n in sample_sizes]
    if not sizes:
        raise ConfigurationError("'sample_sizes' must be non-empty")
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=100.0 * n_attributes,
        non_principal_value=4.0,
    )
    scheme = AdditiveNoiseScheme(std=noise_std)
    curves = {
        "PCA-estimated": [],
        "PCA-oracle": [],
        "BE-estimated": [],
        "BE-oracle": [],
    }
    for index, n in enumerate(sizes):
        dataset = generate_dataset(
            spectrum=spectrum, n_records=n, rng=seed + index
        )
        disguised = scheme.disguise(dataset.values, rng=seed + 50 + index)
        oracle_cov = dataset.population_covariance
        attacks = {
            "PCA-estimated": PCAReconstructor(),
            "PCA-oracle": PCAReconstructor(oracle_covariance=oracle_cov),
            "BE-estimated": BayesEstimateReconstructor(),
            "BE-oracle": BayesEstimateReconstructor(
                oracle_covariance=oracle_cov, oracle_mean=dataset.mean
            ),
        }
        for name, attack in attacks.items():
            curves[name].append(
                root_mean_square_error(
                    dataset.values, attack.reconstruct(disguised)
                )
            )
    return ExperimentSeries(
        name="ablation-covariance",
        x_label="records (n)",
        x_values=np.asarray(sizes, dtype=float),
        series=curves,
        metadata={
            "m": n_attributes,
            "p": n_principal,
            "noise_std": noise_std,
        },
    )


def run_ablation_samplesize(
    *,
    sample_sizes=(100, 250, 500, 1000, 2500, 5000, 10000),
    n_attributes: int = 50,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
) -> ExperimentSeries:
    """A4 — attack accuracy vs the number of published records."""
    sizes = [int(n) for n in sample_sizes]
    if not sizes:
        raise ConfigurationError("'sample_sizes' must be non-empty")
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=100.0 * n_attributes,
        non_principal_value=4.0,
    )
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=noise_std),
        {
            "UDR": UnivariateReconstructor(),
            "PCA-DR": PCAReconstructor(),
            "BE-DR": BayesEstimateReconstructor(),
        },
    )
    curves = {name: [] for name in pipeline.attack_names}
    for index, n in enumerate(sizes):
        dataset = generate_dataset(
            spectrum=spectrum, n_records=n, rng=seed + index
        )
        report = pipeline.run(dataset, rng=seed + 10 + index)
        for name in curves:
            curves[name].append(report.rmse(name))
    return ExperimentSeries(
        name="ablation-samplesize",
        x_label="records (n)",
        x_values=np.asarray(sizes, dtype=float),
        series=curves,
        metadata={
            "m": n_attributes,
            "p": n_principal,
            "noise_std": noise_std,
        },
    )


def run_ablation_utility(
    *,
    n_train: int = 6000,
    n_test: int = 3000,
    n_attributes: int = 8,
    noise_std: float = 4.0,
    seed: int = 0,
) -> ExperimentSeries:
    """A5 — naive-Bayes utility under the baseline and improved schemes."""
    from repro.data.covariance_builder import CovarianceModel
    from repro.stats.mvn import MultivariateNormal

    def classed_data(n, data_seed):
        rng = np.random.default_rng(data_seed)
        model = CovarianceModel.from_spectrum(
            np.sort(rng.uniform(2.0, 40.0, n_attributes))[::-1],
            rng=data_seed,
        )
        half = n // 2
        offset = np.full(n_attributes, 6.0)
        class0 = MultivariateNormal(
            np.zeros(n_attributes), model.matrix
        ).sample(half, rng=rng)
        class1 = MultivariateNormal(offset, model.matrix).sample(
            half, rng=rng
        )
        features = np.vstack([class0, class1])
        labels = np.array([0] * half + [1] * half)
        order = rng.permutation(n)
        return features[order], labels[order], model

    train_x, train_y, model = classed_data(n_train, seed)
    test_x, test_y, _ = classed_data(n_test, seed + 99)
    schemes = {
        "iid": AdditiveNoiseScheme(std=noise_std),
        "correlated": CorrelatedNoiseScheme.matching_data_covariance(
            model.matrix, noise_power=n_attributes * noise_std**2
        ),
    }
    rows = {
        "original": [],
        "disguised_naive": [],
        "disguised_corrected": [],
    }
    for index, scheme in enumerate(schemes.values()):
        disguised = scheme.disguise(train_x, rng=seed + index + 1)
        report = utility_report(
            train_x,
            disguised.disguised,
            train_y,
            test_x,
            test_y,
            noise_covariance=disguised.noise_model.covariance,
        )
        for key in rows:
            rows[key].append(report[key])
    return ExperimentSeries(
        name="ablation-utility",
        x_label="scheme (0=iid, 1=correlated)",
        x_values=np.arange(len(schemes), dtype=float),
        series=rows,
        metadata={"noise_std": noise_std, "m": n_attributes},
    )


def run_ablation_marginals(
    *,
    marginals=("normal", "lognormal", "uniform", "bimodal"),
    n_attributes: int = 30,
    n_principal: int = 4,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 11,
) -> ExperimentSeries:
    """A6 — non-normal marginals (Section 6's normality assumption).

    BE-DR is derived for multivariate-normal data; real attributes are
    skewed or multi-modal.  This ablation keeps the correlation structure
    fixed (Gaussian copula) and swaps the marginals, measuring how much
    of the attack's edge over UDR survives model misspecification.
    """
    shapes = list(marginals)
    if not shapes:
        raise ConfigurationError("'marginals' must be non-empty")
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=float(n_attributes),
        non_principal_value=0.04,
    )
    pipeline = AttackPipeline(
        AdditiveNoiseScheme(std=noise_std),
        {
            "UDR": UnivariateReconstructor(),
            "PCA-DR": PCAReconstructor(),
            "BE-DR": BayesEstimateReconstructor(),
        },
    )
    curves = {name: [] for name in pipeline.attack_names}
    for index, shape in enumerate(shapes):
        generator = GaussianCopulaGenerator.from_spectrum(
            spectrum,
            marginal=shape,
            target_std=10.0,
            rng=seed,
        )
        table = generator.sample(n_records, rng=seed + index + 1)
        report = pipeline.run(table, rng=seed + 50 + index)
        for name in curves:
            curves[name].append(report.rmse(name))
    return ExperimentSeries(
        name="ablation-marginals",
        x_label="marginal shape index",
        x_values=np.arange(len(shapes), dtype=float),
        series=curves,
        metadata={
            "marginals": shapes,
            "noise_std": noise_std,
            "m": n_attributes,
        },
    )
