"""Ablation runners (DESIGN.md A2-A6).

These are not figures from the paper; they probe the design choices the
paper makes implicitly — which component-selection rule, how much the
Theorem-5.1 estimate costs vs the true covariance, how sample size and
non-normal marginals move the results, and whether disguised data stays
minable.  Each returns an :class:`ExperimentSeries` like the figure
runners, so the same reporting and benchmark plumbing applies.

Like the figure runners, every ablation expands into engine jobs (one
per workload / sample size / scheme / marginal shape) executed through
:class:`~repro.engine.Engine`.  The ablations keep their historical
explicit integer seeding: each job carries its seeds in ``params`` and
is therefore bit-identical to the old in-process loops under any
executor backend.
"""

from __future__ import annotations

import numpy as np

from repro.data.spectra import decaying_spectrum, two_level_spectrum
from repro.engine import Engine, JobSpec
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentSeries

__all__ = [
    "run_ablation_selection",
    "run_ablation_covariance",
    "run_ablation_samplesize",
    "run_ablation_utility",
    "run_ablation_marginals",
]

_SELECTION_TASK = "repro.experiments.tasks:ablation_selection_workload"
_COVARIANCE_TASK = "repro.experiments.tasks:ablation_covariance_point"
_SAMPLESIZE_TASK = "repro.experiments.tasks:ablation_samplesize_point"
_UTILITY_TASK = "repro.experiments.tasks:ablation_utility_scheme"
_MARGINALS_TASK = "repro.experiments.tasks:ablation_marginals_shape"


def _rmse_curves(results) -> dict[str, list[float]]:
    """Collect per-method curves from engine payloads.

    Method names (and their order) come from the task's own payload, so
    runners cannot drift out of sync with the attack batteries built in
    :mod:`repro.experiments.tasks`.
    """
    names = list(results[0].values["rmse"])
    return {
        name: [result.values["rmse"][name] for result in results]
        for name in names
    }


def run_ablation_selection(
    *,
    n_attributes: int = 60,
    n_principal: int = 5,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 42,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A2 — PCA-DR component-selection rules across spectrum shapes.

    Compares oracle fixed-count, energy-fraction, and largest-gap (the
    paper's choice) on a clean two-level spectrum and on a geometric
    decay with no gap to find.
    """
    engine = engine or Engine()
    workloads = {
        f"two-level(m={n_attributes},p={n_principal})": two_level_spectrum(
            n_attributes,
            n_principal,
            total_variance=100.0 * n_attributes,
            non_principal_value=4.0,
        ),
        f"decaying(m={n_attributes},rate=0.9)": decaying_spectrum(
            n_attributes, decay=0.9, total_variance=100.0 * n_attributes
        ),
    }
    specs = [
        JobSpec(
            task=_SELECTION_TASK,
            params={
                "spectrum": np.asarray(spectrum).tolist(),
                "n_principal": n_principal,
                "n_records": n_records,
                "noise_std": noise_std,
                "data_seed": seed + index,
                "attack_seed": seed + 100 + index,
            },
        )
        for index, spectrum in enumerate(workloads.values())
    ]
    results = engine.run(specs)
    curves = _rmse_curves(results)
    return ExperimentSeries(
        name="ablation-selection",
        x_label="workload (0=two-level, 1=decaying)",
        x_values=np.arange(len(workloads), dtype=float),
        series=curves,
        metadata={"workloads": list(workloads), "noise_std": noise_std},
    )


def run_ablation_covariance(
    *,
    sample_sizes=(100, 200, 500, 1000, 2000, 5000),
    n_attributes: int = 40,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A3 — Theorem-5.1 estimated covariance vs the oracle, across n."""
    sizes = [int(n) for n in sample_sizes]
    if not sizes:
        raise ConfigurationError("'sample_sizes' must be non-empty")
    engine = engine or Engine()
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=100.0 * n_attributes,
        non_principal_value=4.0,
    )
    specs = [
        JobSpec(
            task=_COVARIANCE_TASK,
            params={
                "spectrum": np.asarray(spectrum).tolist(),
                "n_records": n,
                "noise_std": noise_std,
                "data_seed": seed + index,
                "noise_seed": seed + 50 + index,
            },
        )
        for index, n in enumerate(sizes)
    ]
    results = engine.run(specs)
    curves = _rmse_curves(results)
    return ExperimentSeries(
        name="ablation-covariance",
        x_label="records (n)",
        x_values=np.asarray(sizes, dtype=float),
        series=curves,
        metadata={
            "m": n_attributes,
            "p": n_principal,
            "noise_std": noise_std,
        },
    )


def run_ablation_samplesize(
    *,
    sample_sizes=(100, 250, 500, 1000, 2500, 5000, 10000),
    n_attributes: int = 50,
    n_principal: int = 5,
    noise_std: float = 5.0,
    seed: int = 42,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A4 — attack accuracy vs the number of published records."""
    sizes = [int(n) for n in sample_sizes]
    if not sizes:
        raise ConfigurationError("'sample_sizes' must be non-empty")
    engine = engine or Engine()
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=100.0 * n_attributes,
        non_principal_value=4.0,
    )
    specs = [
        JobSpec(
            task=_SAMPLESIZE_TASK,
            params={
                "spectrum": np.asarray(spectrum).tolist(),
                "n_records": n,
                "noise_std": noise_std,
                "data_seed": seed + index,
                "attack_seed": seed + 10 + index,
            },
        )
        for index, n in enumerate(sizes)
    ]
    results = engine.run(specs)
    curves = _rmse_curves(results)
    return ExperimentSeries(
        name="ablation-samplesize",
        x_label="records (n)",
        x_values=np.asarray(sizes, dtype=float),
        series=curves,
        metadata={
            "m": n_attributes,
            "p": n_principal,
            "noise_std": noise_std,
        },
    )


def run_ablation_utility(
    *,
    n_train: int = 6000,
    n_test: int = 3000,
    n_attributes: int = 8,
    noise_std: float = 4.0,
    seed: int = 0,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A5 — naive-Bayes utility under the baseline and improved schemes."""
    engine = engine or Engine()
    scheme_names = ["iid", "correlated"]
    specs = [
        JobSpec(
            task=_UTILITY_TASK,
            params={
                "scheme": scheme,
                "scheme_index": index,
                "n_train": n_train,
                "n_test": n_test,
                "n_attributes": n_attributes,
                "noise_std": noise_std,
                "seed": seed,
            },
        )
        for index, scheme in enumerate(scheme_names)
    ]
    results = engine.run(specs)
    rows = {
        key: [result.values[key] for result in results]
        for key in ("original", "disguised_naive", "disguised_corrected")
    }
    return ExperimentSeries(
        name="ablation-utility",
        x_label="scheme (0=iid, 1=correlated)",
        x_values=np.arange(len(scheme_names), dtype=float),
        series=rows,
        metadata={"noise_std": noise_std, "m": n_attributes},
    )


def run_ablation_marginals(
    *,
    marginals=("normal", "lognormal", "uniform", "bimodal"),
    n_attributes: int = 30,
    n_principal: int = 4,
    n_records: int = 2000,
    noise_std: float = 5.0,
    seed: int = 11,
    engine: Engine | None = None,
) -> ExperimentSeries:
    """A6 — non-normal marginals (Section 6's normality assumption).

    BE-DR is derived for multivariate-normal data; real attributes are
    skewed or multi-modal.  This ablation keeps the correlation structure
    fixed (Gaussian copula) and swaps the marginals, measuring how much
    of the attack's edge over UDR survives model misspecification.
    """
    shapes = list(marginals)
    if not shapes:
        raise ConfigurationError("'marginals' must be non-empty")
    engine = engine or Engine()
    spectrum = two_level_spectrum(
        n_attributes,
        n_principal,
        total_variance=float(n_attributes),
        non_principal_value=0.04,
    )
    specs = [
        JobSpec(
            task=_MARGINALS_TASK,
            params={
                "spectrum": np.asarray(spectrum).tolist(),
                "marginal": shape,
                "n_records": n_records,
                "noise_std": noise_std,
                "copula_seed": seed,
                "sample_seed": seed + index + 1,
                "attack_seed": seed + 50 + index,
            },
        )
        for index, shape in enumerate(shapes)
    ]
    results = engine.run(specs)
    curves = _rmse_curves(results)
    return ExperimentSeries(
        name="ablation-marginals",
        x_label="marginal shape index",
        x_values=np.arange(len(shapes), dtype=float),
        series=curves,
        metadata={
            "marginals": shapes,
            "noise_std": noise_std,
            "m": n_attributes,
        },
    )
