"""Nan-safe JSON conversion and array-aware equality helpers.

Strict JSON has no ``NaN`` / ``Infinity`` literals, yet experiment
payloads legitimately contain them (a failed attack's RMSE is ``nan``).
:func:`sanitize_for_json` rewrites every non-finite float into a reserved
string sentinel (and numpy values into plain Python), producing a payload
``json.dumps(..., allow_nan=False)`` accepts; :func:`restore_from_json`
inverts the mapping.  These two functions are the single encoding shared
by the engine's result cache, :meth:`repro.core.pipeline.PipelineReport.
to_dict`, and :class:`repro.api.result.ExperimentResult` serialization,
so a value survives any of those round trips bit-for-bit.

:func:`values_equal` is the matching equality: ndarray-aware (avoiding
the ambiguous-truth ``ValueError`` plain ``==`` raises) and nan-aware
(two ``nan`` payloads compare equal, as a round trip demands).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "NAN_SENTINEL",
    "POS_INF_SENTINEL",
    "NEG_INF_SENTINEL",
    "sanitize_for_json",
    "restore_from_json",
    "values_equal",
]

#: Reserved string encodings of the three non-finite doubles.  Payload
#: strings equal to a sentinel would be decoded as the float, so these
#: exact strings must not be used as data.
NAN_SENTINEL = "__nan__"
POS_INF_SENTINEL = "__inf__"
NEG_INF_SENTINEL = "__-inf__"

_SENTINELS = {
    NAN_SENTINEL: float("nan"),
    POS_INF_SENTINEL: float("inf"),
    NEG_INF_SENTINEL: float("-inf"),
}


def sanitize_for_json(value):
    """Recursively convert a payload into strict-JSON-safe plain Python.

    numpy arrays become nested lists, numpy scalars become Python
    scalars, tuples become lists, and non-finite floats become their
    string sentinels.  Dict keys must already be strings.
    """
    if isinstance(value, np.ndarray):
        return sanitize_for_json(value.tolist())
    if isinstance(value, np.generic):
        return sanitize_for_json(value.item())
    if isinstance(value, float):
        if math.isnan(value):
            return NAN_SENTINEL
        if math.isinf(value):
            return POS_INF_SENTINEL if value > 0 else NEG_INF_SENTINEL
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [sanitize_for_json(item) for item in value]
    if isinstance(value, dict):
        converted = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(
                    f"JSON payload keys must be strings, got {key!r}"
                )
            converted[key] = sanitize_for_json(item)
        return converted
    raise ValidationError(
        f"value of type {type(value).__name__} is not JSON-serializable"
    )


def restore_from_json(value):
    """Invert :func:`sanitize_for_json` (sentinel strings back to floats)."""
    if isinstance(value, str):
        return _SENTINELS.get(value, value)
    if isinstance(value, list):
        return [restore_from_json(item) for item in value]
    if isinstance(value, dict):
        return {key: restore_from_json(item) for key, item in value.items()}
    return value


def _array_equal(a, b) -> bool:
    first = np.asarray(a)
    second = np.asarray(b)
    if first.shape != second.shape:
        return False
    try:
        return bool(np.array_equal(first, second, equal_nan=True))
    except TypeError:
        # Non-float dtypes (ints, strings) reject equal_nan.
        return bool(np.array_equal(first, second))


def values_equal(a, b) -> bool:
    """Structural equality that tolerates ndarrays and ``nan`` leaves."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (
            isinstance(a, (np.ndarray, list, tuple))
            and isinstance(b, (np.ndarray, list, tuple))
        ):
            return False
        return _array_equal(a, b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            values_equal(a[key], b[key]) for key in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    result = a == b
    if isinstance(result, np.ndarray):  # pragma: no cover - defensive
        return bool(result.all())
    return bool(result)
