"""Argument-validation helpers.

These functions convert inputs to ``float64`` NumPy arrays and raise
:class:`~repro.exceptions.ValidationError` subclasses with messages that
name the offending argument, so failures surface at API boundaries instead
of deep inside linear algebra.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError

__all__ = [
    "check_finite",
    "check_in_range",
    "check_matrix",
    "check_positive_int",
    "check_probability",
    "check_square",
    "check_symmetric",
    "check_vector",
]


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Raise if ``array`` contains NaN or infinity."""
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"argument {name!r} contains NaN or infinite values")
    return array


def check_matrix(
    data,
    name: str = "data",
    *,
    min_rows: int = 1,
    min_cols: int = 1,
    allow_1d: bool = False,
) -> np.ndarray:
    """Coerce ``data`` to a 2-D ``float64`` array of shape ``(n, m)``.

    Parameters
    ----------
    data:
        Array-like input.
    name:
        Argument name used in error messages.
    min_rows, min_cols:
        Minimum acceptable dimensions.
    allow_1d:
        If true, a 1-D input of length ``k`` is promoted to shape ``(k, 1)``.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim == 1 and allow_1d:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ShapeError(name, "a 2-D array", array.shape)
    rows, cols = array.shape
    if rows < min_rows:
        raise ValidationError(
            f"argument {name!r} needs at least {min_rows} rows, got {rows}"
        )
    if cols < min_cols:
        raise ValidationError(
            f"argument {name!r} needs at least {min_cols} columns, got {cols}"
        )
    return check_finite(array, name)


def check_vector(data, name: str = "data", *, min_length: int = 1) -> np.ndarray:
    """Coerce ``data`` to a 1-D ``float64`` array."""
    array = np.asarray(data, dtype=np.float64)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise ShapeError(name, "a 1-D array", array.shape)
    if array.size < min_length:
        raise ValidationError(
            f"argument {name!r} needs at least {min_length} elements, "
            f"got {array.size}"
        )
    return check_finite(array, name)


def check_square(data, name: str = "matrix") -> np.ndarray:
    """Coerce ``data`` to a square 2-D ``float64`` array."""
    array = check_matrix(data, name)
    rows, cols = array.shape
    if rows != cols:
        raise ShapeError(name, "a square matrix", array.shape)
    return array


def check_symmetric(data, name: str = "matrix", *, atol: float = 1e-8) -> np.ndarray:
    """Coerce to a square matrix and verify symmetry within ``atol``.

    Returns the *symmetrized* matrix ``(A + A.T) / 2`` so tiny asymmetries
    from floating-point accumulation do not propagate.
    """
    array = check_square(data, name)
    if not np.allclose(array, array.T, atol=atol, rtol=0.0):
        max_gap = float(np.max(np.abs(array - array.T)))
        raise ValidationError(
            f"argument {name!r} is not symmetric "
            f"(max |A - A.T| = {max_gap:.3g}, tolerance {atol:.3g})"
        )
    return (array + array.T) / 2.0


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(
            f"argument {name!r} must be an int, got {type(value).__name__}"
        )
    value = int(value)
    if value < minimum:
        raise ValidationError(
            f"argument {name!r} must be >= {minimum}, got {value}"
        )
    return value


def check_in_range(
    value,
    name: str,
    *,
    low: float = -np.inf,
    high: float = np.inf,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that scalar ``value`` lies inside ``[low, high]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"argument {name!r} must be a real number, got {value!r}"
        ) from exc
    if np.isnan(value):
        raise ValidationError(f"argument {name!r} is NaN")
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_br = "[" if inclusive_low else "("
        hi_br = "]" if inclusive_high else ")"
        raise ValidationError(
            f"argument {name!r} must be in {lo_br}{low}, {high}{hi_br}, "
            f"got {value}"
        )
    return value


def check_probability(value, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    return check_in_range(value, name, low=0.0, high=1.0)
