"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts an ``rng`` argument
that may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all
three to a ``Generator`` so downstream code never touches the legacy
``numpy.random.RandomState`` API.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["as_generator", "spawn_generators"]



def as_generator(rng=None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so state is shared).

    Returns
    -------
    numpy.random.Generator

    Raises
    ------
    ValidationError
        If ``rng`` is not one of the accepted types.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValidationError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise ValidationError(
        "rng must be None, an int seed, a SeedSequence, or a Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_generators(rng, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses ``Generator.spawn`` so the children are independent of each other
    *and* of the parent's future output.  Useful when an experiment sweep
    must produce the same per-point stream regardless of sweep order.

    Parameters
    ----------
    rng:
        Anything accepted by :func:`as_generator`.
    count:
        Number of children; must be positive.
    """
    if not isinstance(count, (int, np.integer)) or count <= 0:
        raise ValidationError(f"count must be a positive int, got {count!r}")
    parent = as_generator(rng)
    return parent.spawn(int(count))
