"""Shared low-level utilities: argument validation and RNG plumbing."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_matrix,
    check_positive_int,
    check_probability,
    check_square,
    check_symmetric,
    check_vector,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_finite",
    "check_in_range",
    "check_matrix",
    "check_positive_int",
    "check_probability",
    "check_square",
    "check_symmetric",
    "check_vector",
]
