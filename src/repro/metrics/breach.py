"""Privacy-breach analysis for discrete randomization operators.

The other privacy-analysis line the paper cites (Section 2): "Evfimievski
et al. presented a formula of privacy breaches and a methodology to limit
the breaches" (PODS 2003).  Their framework is channel-based: a discrete
randomization operator is a matrix of probabilities ``P(y | x)``, and a
*rho1-to-rho2 breach* occurs when some observed output ``y`` lifts the
adversary's belief in a property from below ``rho1`` to above ``rho2``.

Their key sufficient condition is *amplification*: if no output ``y``
distinguishes two inputs by more than a factor ``gamma``
(``p(y|x1)/p(y|x2) <= gamma`` for all ``x1, x2, y``), then no
rho1-to-rho2 breach is possible whenever

    rho2 / (1 - rho2) * (1 - rho1) / rho1  >  gamma.

(Amplification is a direct ancestor of differential privacy's
``e^epsilon`` bound, which is why this module sits naturally in a paper
that helped motivate the shift to DP.)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_probability, check_vector

__all__ = [
    "posterior_distribution",
    "worst_case_posterior",
    "breach_occurs",
    "amplification_factor",
    "amplification_prevents_breach",
]


def _check_channel(channel) -> np.ndarray:
    """Validate a column-stochastic channel matrix P[y, x] = P(y | x)."""
    matrix = np.asarray(channel, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("'channel' must be a 2-D matrix P[y, x]")
    if np.any(matrix < 0.0):
        raise ValidationError("channel probabilities must be non-negative")
    column_sums = matrix.sum(axis=0)
    if not np.allclose(column_sums, 1.0, atol=1e-9):
        raise ValidationError(
            "each channel column must sum to 1 (a distribution over y "
            "given x)"
        )
    return matrix


def _check_prior(prior, n_inputs: int) -> np.ndarray:
    vector = check_vector(prior, "prior")
    if vector.size != n_inputs:
        raise ValidationError(
            f"prior has {vector.size} entries for a channel with "
            f"{n_inputs} inputs"
        )
    if np.any(vector < 0.0):
        raise ValidationError("prior probabilities must be non-negative")
    total = float(vector.sum())
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ValidationError("prior must sum to 1")
    return vector / total


def posterior_distribution(prior, channel, output: int) -> np.ndarray:
    """Bayes posterior over inputs after observing output ``output``.

    Parameters
    ----------
    prior:
        Prior distribution over the ``k`` input values, shape ``(k,)``.
    channel:
        Column-stochastic matrix ``P[y, x] = P(y | x)``.
    output:
        Index of the observed randomized value ``y``.

    Returns
    -------
    numpy.ndarray
        ``P(x | y = output)``, shape ``(k,)``.
    """
    matrix = _check_channel(channel)
    pi = _check_prior(prior, matrix.shape[1])
    if not 0 <= output < matrix.shape[0]:
        raise ValidationError(
            f"output must be in [0, {matrix.shape[0] - 1}], got {output}"
        )
    joint = matrix[output] * pi
    total = joint.sum()
    if total <= 0.0:
        raise ValidationError(
            f"output {output} has zero probability under this prior"
        )
    return joint / total


def worst_case_posterior(prior, channel, property_inputs) -> float:
    """Highest posterior probability of a property over all outputs.

    A *property* is a subset of input values (e.g. "the true item is in
    the basket" = inputs {1}).  The adversary sees one output; the worst
    case over outputs is what breach analysis bounds.
    """
    matrix = _check_channel(channel)
    pi = _check_prior(prior, matrix.shape[1])
    indices = np.asarray(property_inputs, dtype=np.intp).ravel()
    if indices.size == 0:
        raise ValidationError("'property_inputs' must be non-empty")
    if indices.min() < 0 or indices.max() >= matrix.shape[1]:
        raise ValidationError("'property_inputs' out of range")
    # One batched Bayes update over every output at once: the totals
    # sum_x p(y|x) pi(x) and the property masses are matrix-vector
    # products, so the whole scan is two BLAS calls instead of a
    # Python loop over outputs.  (BLAS summation order makes this
    # match the historical per-output loop to ~1e-12 relative rather
    # than bit-for-bit.)  Outputs with zero total probability cannot
    # be observed and are excluded, as in the per-output formulation.
    totals = matrix @ pi
    valid = totals > 0.0
    if not np.any(valid):
        return 0.0
    property_mass = matrix[:, indices] @ pi[indices]
    posteriors = property_mass[valid] / totals[valid]
    return max(0.0, float(posteriors.max()))


def breach_occurs(
    prior, channel, property_inputs, *, rho1: float, rho2: float
) -> bool:
    """Whether a rho1-to-rho2 breach occurs for the given property.

    True when the property's prior probability is at most ``rho1`` and
    some output raises its posterior to at least ``rho2``.
    """
    rho1 = check_probability(rho1, "rho1")
    rho2 = check_probability(rho2, "rho2")
    if rho2 <= rho1:
        raise ValidationError("rho2 must exceed rho1 for a breach test")
    matrix = _check_channel(channel)
    pi = _check_prior(prior, matrix.shape[1])
    indices = np.asarray(property_inputs, dtype=np.intp).ravel()
    prior_mass = float(pi[indices].sum())
    if prior_mass > rho1:
        return False
    return worst_case_posterior(pi, matrix, indices) >= rho2


def amplification_factor(channel) -> float:
    """The operator's amplification ``gamma``.

    ``gamma = max_y max_{x1, x2} p(y|x1) / p(y|x2)``; smaller is more
    private.  ``gamma = 1`` means the output is independent of the input
    (perfect privacy, zero utility); unbounded gamma (some ``p(y|x)=0``)
    means some output reveals its input with certainty.
    """
    matrix = _check_channel(channel)
    row_min = matrix.min(axis=1)
    # A zero anywhere means some (x1, x2, y) ratio is unbounded.
    if float(row_min.min()) <= 0.0:
        return float("inf")
    ratios = matrix.max(axis=1) / row_min
    return max(1.0, float(ratios.max()))


def amplification_prevents_breach(
    channel, *, rho1: float, rho2: float
) -> bool:
    """Evfimievski et al.'s sufficient no-breach condition.

    An operator with amplification ``gamma`` admits no rho1-to-rho2
    breach for *any* prior and *any* property when

        rho2 (1 - rho1) / (rho1 (1 - rho2)) > gamma.
    """
    rho1 = check_probability(rho1, "rho1")
    rho2 = check_probability(rho2, "rho2")
    if not 0.0 < rho1 < rho2 < 1.0:
        raise ValidationError("need 0 < rho1 < rho2 < 1")
    gamma = amplification_factor(channel)
    odds_ratio = (rho2 * (1.0 - rho1)) / (rho1 * (1.0 - rho2))
    return odds_ratio > gamma
