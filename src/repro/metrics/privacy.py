"""Privacy measures from the randomization literature.

The paper's own measure is reconstruction RMSE, but its discussion builds
on two earlier quantifications that this module provides for context and
for the examples:

* **Interval privacy** (Agrawal-Srikant, SIGMOD 2000): the width of the
  interval within which an attribute value can be pinned down with a
  given confidence — here computed empirically from reconstruction
  residuals.
* **Mutual-information privacy** (Agrawal-Aggarwal, PODS 2001): the
  fraction of the original attribute's "information" surviving in a view,
  ``P(X | view) = 1 - 2^{-I(X; view)}`` for differential-entropy-based
  ``I``; we report the Gaussian closed form.

* :func:`privacy_gain` summarizes a defense: how much an attack's RMSE
  rises relative to a baseline scheme.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.error import root_mean_square_error
from repro.utils.validation import check_in_range, check_matrix

__all__ = ["interval_privacy", "mutual_information_privacy", "privacy_gain"]


def interval_privacy(
    original,
    estimate,
    *,
    confidence: float = 0.95,
) -> np.ndarray:
    """Per-attribute interval-privacy widths at a confidence level.

    The Agrawal-Srikant measure asks: how wide an interval must an
    adversary quote to contain the true value with probability
    ``confidence``?  Empirically that is the ``confidence`` quantile of
    ``2 * |x - x_hat|`` (the symmetric interval around the estimate).
    Larger widths mean more privacy survived the attack.

    Parameters
    ----------
    original, estimate:
        Aligned ``(n, m)`` tables.
    confidence:
        Coverage level in ``(0, 1)``.

    Returns
    -------
    numpy.ndarray
        Interval width per attribute, shape ``(m,)``.
    """
    level = check_in_range(
        confidence, "confidence", low=0.0, high=1.0,
        inclusive_low=False, inclusive_high=False,
    )
    x = check_matrix(original, "original", allow_1d=True)
    x_hat = check_matrix(
        getattr(estimate, "estimate", estimate), "estimate", allow_1d=True
    )
    if x.shape != x_hat.shape:
        raise ValidationError(
            f"original has shape {x.shape} but estimate has {x_hat.shape}"
        )
    residual = 2.0 * np.abs(x - x_hat)
    return np.quantile(residual, level, axis=0)


def mutual_information_privacy(
    original_variance: float, residual_variance: float
) -> float:
    """Gaussian mutual-information privacy loss ``1 - 2^{-I(X; X_hat)}``.

    For jointly Gaussian ``X`` and its reconstruction with residual
    variance ``v`` (conditional variance of ``X`` given the view),
    ``I = 0.5 * log2(var(X) / v)``; the Agrawal-Aggarwal privacy loss is
    ``1 - 2^{-I} = 1 - sqrt(v / var(X))``.

    Returns a value in ``[0, 1]``: 0 when the view reveals nothing
    (residual variance equals the prior variance), approaching 1 as the
    reconstruction becomes exact.
    """
    var_x = check_in_range(
        original_variance, "original_variance", low=0.0, inclusive_low=False
    )
    var_res = check_in_range(
        residual_variance, "residual_variance", low=0.0, inclusive_low=False
    )
    if var_res > var_x:
        # The attack did worse than the prior; no information was gained.
        return 0.0
    return 1.0 - math.sqrt(var_res / var_x)


def privacy_gain(
    original,
    baseline_estimate,
    improved_estimate,
) -> float:
    """Relative RMSE increase of an attack under an improved defense.

    ``gain = rmse_improved / rmse_baseline - 1``: positive when the
    improved randomization (e.g. Section 8's correlated noise) forces the
    attack further from the truth.  This is the headline number of the
    paper's Figure 4 read as a defense evaluation.
    """
    baseline_rmse = root_mean_square_error(original, baseline_estimate)
    improved_rmse = root_mean_square_error(original, improved_estimate)
    if baseline_rmse <= 0.0:
        raise ValidationError(
            "baseline reconstruction is exact; privacy gain is undefined"
        )
    return improved_rmse / baseline_rmse - 1.0
