"""Correlation dissimilarity between two datasets (Definition 8.1).

Quantifies how differently two tables are correlated — the x-axis of the
paper's Figure 4, where it compares the noise's correlation structure to
the original data's.

Definition 8.1 as typeset places the ``1/(m^2 - m)`` normalizer *outside*
the square root, which for ``m = 100`` caps the metric at roughly 0.02 —
inconsistent with Figure 4's x-axis spanning 0.04 to 0.2.  The RMS
reading (normalizer inside the root) matches the figure, so it is the
default here; the literal reading is available for completeness.  See
DESIGN.md for the full argument.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import (
    correlation_from_covariance,
    sample_covariance,
)
from repro.utils.validation import check_matrix, check_symmetric

__all__ = ["correlation_dissimilarity"]

_CONVENTIONS = ("rms", "literal")


def correlation_dissimilarity(
    first,
    second,
    *,
    convention: str = "rms",
    inputs: str = "data",
) -> float:
    """Definition 8.1's dissimilarity between two correlation structures.

    Parameters
    ----------
    first, second:
        Either two data matrices of shape ``(n_i, m)`` (``inputs="data"``,
        the definition's ``X`` and ``R``) or two ``(m, m)`` covariance /
        correlation matrices (``inputs="covariance"``, convenient when the
        population covariances are known exactly).
    convention:
        ``"rms"`` — ``sqrt( sum_{i != j} (C_X - C_R)_{ij}^2 / (m^2 - m) )``
        (default; consistent with Figure 4).
        ``"literal"`` — ``sqrt( sum_{i != j} ... ) / (m^2 - m)`` exactly as
        typeset in Definition 8.1.
    inputs:
        ``"data"`` or ``"covariance"``.

    Returns
    -------
    float
        Non-negative dissimilarity; zero when the off-diagonal correlation
        coefficients agree exactly.
    """
    if convention not in _CONVENTIONS:
        raise ValidationError(
            f"convention must be one of {_CONVENTIONS}, got {convention!r}"
        )
    if inputs == "data":
        corr_a = _correlation_of_data(first, "first")
        corr_b = _correlation_of_data(second, "second")
    elif inputs == "covariance":
        corr_a = correlation_from_covariance(
            check_symmetric(first, "first")
        )
        corr_b = correlation_from_covariance(
            check_symmetric(second, "second")
        )
    else:
        raise ValidationError(
            f"inputs must be 'data' or 'covariance', got {inputs!r}"
        )
    m = corr_a.shape[0]
    if corr_b.shape[0] != m:
        raise ValidationError(
            f"dimension mismatch: {m} vs {corr_b.shape[0]} attributes"
        )
    if m < 2:
        raise ValidationError(
            "correlation dissimilarity needs at least 2 attributes"
        )
    delta = corr_a - corr_b
    np.fill_diagonal(delta, 0.0)  # diagonals are always 1 and excluded
    sum_sq = float(np.sum(delta**2))
    pairs = m * m - m
    if convention == "rms":
        return math.sqrt(sum_sq / pairs)
    return math.sqrt(sum_sq) / pairs


def _correlation_of_data(data, name: str) -> np.ndarray:
    matrix = check_matrix(data, name, min_rows=2, min_cols=2)
    return correlation_from_covariance(sample_covariance(matrix))
