"""Reconstruction-error metrics — the paper's privacy measure.

"The difference between X* and X can be used as the measure to quantify
how much privacy is preserved" (Section 3).  All figures plot the root
mean square error over every cell of the table.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.reconstruction.base import ReconstructionResult
from repro.utils.validation import check_matrix

__all__ = ["mean_square_error", "root_mean_square_error", "per_attribute_rmse"]


def _paired(original, estimate) -> tuple[np.ndarray, np.ndarray]:
    """Validate an (original, estimate) pair into aligned matrices."""
    if isinstance(estimate, ReconstructionResult):
        estimate = estimate.estimate
    x = check_matrix(original, "original", allow_1d=True)
    x_hat = check_matrix(estimate, "estimate", allow_1d=True)
    if x.shape != x_hat.shape:
        raise ValidationError(
            f"original has shape {x.shape} but estimate has {x_hat.shape}"
        )
    return x, x_hat


def mean_square_error(original, estimate) -> float:
    """Mean square error over every cell: ``mean((X - X_hat)^2)``.

    For the NDR attack this equals the empirical noise variance
    (Section 4.1's derivation).

    Parameters
    ----------
    original:
        The private table ``X`` (``(n, m)`` or a single column).
    estimate:
        The reconstruction — a matrix or a
        :class:`~repro.reconstruction.base.ReconstructionResult`.
    """
    x, x_hat = _paired(original, estimate)
    return float(np.mean((x - x_hat) ** 2))


def root_mean_square_error(original, estimate) -> float:
    """RMSE, the y-axis of every figure in the paper's evaluation."""
    return float(np.sqrt(mean_square_error(original, estimate)))


def per_attribute_rmse(original, estimate) -> np.ndarray:
    """RMSE of each attribute separately, shape ``(m,)``.

    Reveals *which* attributes a scheme exposes most — e.g. attributes
    aligned with principal directions reconstruct better under PCA-DR.
    """
    x, x_hat = _paired(original, estimate)
    return np.sqrt(np.mean((x - x_hat) ** 2, axis=0))
