"""Privacy and accuracy metrics.

The paper quantifies privacy as the distance between the reconstruction
``X_hat`` and the original ``X`` (Section 3): root mean square error is
what every figure plots.  Definition 8.1's correlation dissimilarity
drives the improved-scheme experiment, and two standard privacy measures
from the surrounding literature round out the toolbox.
"""

from repro.metrics.breach import (
    amplification_factor,
    amplification_prevents_breach,
    breach_occurs,
    posterior_distribution,
    worst_case_posterior,
)
from repro.metrics.dissimilarity import correlation_dissimilarity
from repro.metrics.error import (
    mean_square_error,
    per_attribute_rmse,
    root_mean_square_error,
)
from repro.metrics.privacy import (
    interval_privacy,
    mutual_information_privacy,
    privacy_gain,
)

__all__ = [
    "amplification_factor",
    "amplification_prevents_breach",
    "breach_occurs",
    "posterior_distribution",
    "worst_case_posterior",
    "correlation_dissimilarity",
    "mean_square_error",
    "per_attribute_rmse",
    "root_mean_square_error",
    "interval_privacy",
    "mutual_information_privacy",
    "privacy_gain",
]
