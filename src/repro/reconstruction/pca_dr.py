"""PCA-DR — PCA-based Data Reconstruction (Section 5).

Procedure (Section 5.2.2):

1. Estimate the original covariance from the disguised data via
   Theorem 5.1 (subtract the noise covariance; for i.i.d. noise that is
   ``sigma^2`` off the diagonal).
2. Eigendecompose ``C = Q Lambda Q^T`` with eigenvalues descending.
3. Choose the number of principal components ``p`` (largest-gap rule by
   default, per the paper's footnote).
4. Reconstruct ``X_hat = Y Q_p Q_p^T`` on column-centered data, adding
   the column means back afterwards (PCA's zero-mean requirement,
   Section 5.1.1).

Why it works: independent noise spreads its variance evenly across all
``m`` eigen-directions, so discarding ``m - p`` of them removes a
``(m - p)/m`` share of the noise (Theorem 5.2: the surviving noise MSE is
``sigma^2 * p / m``) while losing little signal when the data are highly
correlated.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import covariance_from_disguised
from repro.linalg.eigen import sorted_eigh
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.reconstruction.selection import (
    ComponentSelector,
    LargestGapSelector,
    selector_from_spec,
)
from repro.registry import check_spec, register_attack
from repro.utils.validation import check_symmetric

__all__ = ["PCAReconstructor"]


@register_attack("pca-dr")
class PCAReconstructor(Reconstructor):
    """The paper's PCA-based reconstruction attack.

    Parameters
    ----------
    selector:
        Component-selection strategy; defaults to the largest-gap rule
        used in the paper's experiments.
    oracle_covariance:
        Optional true data covariance.  When given, step 1 is skipped and
        the attack uses this matrix directly — the simplification the
        paper's analysis makes in Section 5.3 ("we only analyze PCA-DR
        using covariance matrix from the original data").  Real
        adversaries never have this; it exists for the estimated-vs-true
        ablation.
    covariance_estimator:
        ``"sample"`` (Theorem 5.1, the paper's estimator) or
        ``"ledoit-wolf"`` (shrinkage; sharper at small sample sizes).
    """

    name = "PCA-DR"

    def __init__(
        self,
        selector: ComponentSelector | None = None,
        *,
        oracle_covariance=None,
        covariance_estimator: str = "sample",
    ):
        if selector is None:
            selector = LargestGapSelector()
        if not isinstance(selector, ComponentSelector):
            raise ValidationError(
                "selector must be a ComponentSelector, got "
                f"{type(selector).__name__}"
            )
        self._selector = selector
        if oracle_covariance is not None:
            oracle_covariance = check_symmetric(
                oracle_covariance, "oracle_covariance"
            )
        self._oracle_covariance = oracle_covariance
        if covariance_estimator not in ("sample", "ledoit-wolf"):
            raise ValidationError(
                "covariance_estimator must be 'sample' or 'ledoit-wolf', "
                f"got {covariance_estimator!r}"
            )
        self._covariance_estimator = covariance_estimator

    @property
    def selector(self) -> ComponentSelector:
        """The component-selection strategy in use."""
        return self._selector

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        spec: dict = {
            "kind": "pca-dr",
            "selector": self._selector.to_spec(),
            "covariance_estimator": self._covariance_estimator,
        }
        if self._oracle_covariance is not None:
            spec["oracle_covariance"] = self._oracle_covariance.tolist()
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "PCAReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(
            spec,
            "pca-dr",
            optional=("selector", "oracle_covariance", "covariance_estimator"),
        )
        selector = (
            selector_from_spec(spec["selector"])
            if "selector" in spec
            else None
        )
        oracle = spec.get("oracle_covariance")
        return cls(
            selector,
            oracle_covariance=(
                None if oracle is None else np.asarray(oracle, dtype=np.float64)
            ),
            covariance_estimator=spec.get("covariance_estimator", "sample"),
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        m = disguised.shape[1]
        if self._oracle_covariance is not None:
            if self._oracle_covariance.shape[0] != m:
                raise ValidationError(
                    f"oracle covariance is {self._oracle_covariance.shape[0]}"
                    f"-dimensional, data has {m} attributes"
                )
            covariance = self._oracle_covariance
        else:
            covariance = covariance_from_disguised(
                disguised,
                noise_model.covariance,
                estimator=self._covariance_estimator,
            )
        decomposition = sorted_eigh(covariance)
        n_components = self._selector.select(decomposition.values)
        projector = decomposition.projector(n_components)

        column_means = disguised.mean(axis=0)
        centered = disguised - column_means
        estimate = centered @ projector + column_means

        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={
                "n_components": n_components,
                "eigenvalues": decomposition.values,
                "used_oracle_covariance": self._oracle_covariance is not None,
                "noise_mse_bound": self._noise_mse_bound(
                    noise_model, n_components, m
                ),
            },
        )

    @staticmethod
    def _noise_mse_bound(
        noise_model: NoiseModel, n_components: int, m: int
    ) -> float | None:
        """Theorem 5.2's residual-noise MSE ``sigma^2 * p / m``.

        Only defined for isotropic noise — the theorem's hypothesis.
        """
        if not noise_model.is_isotropic:
            return None
        return noise_model.scalar_variance * n_components / m

    def __repr__(self) -> str:
        oracle = self._oracle_covariance is not None
        return (
            f"PCAReconstructor(selector={self._selector!r}, "
            f"oracle_covariance={oracle})"
        )
