"""UDR — Univariate-Distribution-based Reconstruction (Section 4.2).

The correlation-blind benchmark.  Each attribute is treated alone: given
the disguised value ``y``, the guess is the posterior mean

    E[x | y] = ( integral x f_X(x) f_R(y - x) dx ) / f_Y(y),

which Theorem 4.1 shows minimizes mean square error.  The prior ``f_X``
is not observed; the paper notes it "can be estimated from the disguised
data" via the Agrawal-Srikant reconstruction, and that algorithm
(:func:`repro.randomization.distribution_recon.reconstruct_distribution`)
is one of the prior sources here.

Prior sources
-------------
``"gaussian"`` (default)
    Moment-matched normal prior: mean from the disguised column, variance
    = disguised variance minus the noise variance (Theorem 5.1's diagonal
    entry).  With Gaussian noise the posterior mean is then the exact
    shrinkage ``mu + s/(s + sigma^2) * (y - mu)`` — the closed form the
    paper's multivariate-normal experiments imply for UDR.
``"reconstructed"``
    Run the Agrawal-Srikant iterative reconstruction per attribute and
    integrate over the resulting histogram — the fully non-parametric
    path, correct for non-Gaussian data.
``explicit``
    A sequence of :class:`~repro.stats.density.Density` priors, one per
    attribute (oracle experiments).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.randomization.base import NoiseModel
from repro.randomization.distribution_recon import reconstruct_distribution
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack
from repro.stats.density import Density, GaussianDensity, UniformDensity
from repro.utils.validation import check_positive_int

__all__ = ["UnivariateReconstructor", "noise_marginal_density"]

_PRIOR_MODES = ("gaussian", "reconstructed")


def noise_marginal_density(noise_model: NoiseModel, attribute: int) -> Density:
    """Univariate noise density ``f_R`` for one attribute.

    Built from the public noise model: the marginal of a multivariate
    Gaussian is Gaussian with the diagonal variance; uniform noise is
    reconstructed from its variance (``half_width = std * sqrt(3)``).
    """
    variance = float(noise_model.covariance[attribute, attribute])
    mean = float(noise_model.mean[attribute])
    if variance <= 0.0:
        raise ValidationError(
            f"attribute {attribute} has non-positive noise variance"
        )
    std = math.sqrt(variance)
    if noise_model.family == "uniform":
        halfwidth = std * math.sqrt(3.0)
        return UniformDensity(mean - halfwidth, mean + halfwidth)
    return GaussianDensity(mean, std)


@register_attack("udr")
class UnivariateReconstructor(Reconstructor):
    """The paper's UDR benchmark attack.

    Parameters
    ----------
    prior:
        ``"gaussian"``, ``"reconstructed"``, or a sequence of per-attribute
        :class:`Density` objects.
    n_grid:
        Integration-grid resolution for the non-closed-form paths.
    n_bins:
        Histogram resolution for the ``"reconstructed"`` prior.
    """

    name = "UDR"

    def __init__(
        self,
        prior="gaussian",
        *,
        n_grid: int = 257,
        n_bins: int = 64,
    ):
        if isinstance(prior, str):
            if prior not in _PRIOR_MODES:
                raise ValidationError(
                    f"prior must be one of {_PRIOR_MODES} or a sequence of "
                    f"densities, got {prior!r}"
                )
            self._prior_mode = prior
            self._prior_densities: tuple[Density, ...] | None = None
        else:
            if not isinstance(prior, Sequence) or not all(
                isinstance(d, Density) for d in prior
            ):
                raise ValidationError(
                    "explicit priors must be a sequence of Density objects"
                )
            self._prior_mode = "explicit"
            self._prior_densities = tuple(prior)
        self._n_grid = check_positive_int(n_grid, "n_grid", minimum=8)
        self._n_bins = check_positive_int(n_bins, "n_bins", minimum=2)

    @property
    def prior_mode(self) -> str:
        """Which prior source is configured."""
        return self._prior_mode

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        if self._prior_mode == "explicit":
            # Density objects are arbitrary code, not data.
            raise ValidationError(
                "UDR with explicit density priors is not spec-serializable;"
                " use the 'gaussian' or 'reconstructed' prior"
            )
        return {
            "kind": "udr",
            "prior": self._prior_mode,
            "n_grid": self._n_grid,
            "n_bins": self._n_bins,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "UnivariateReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(
            spec, "udr", optional=("prior", "n_grid", "n_bins")
        )
        return cls(
            prior=spec.get("prior", "gaussian"),
            n_grid=int(spec.get("n_grid", 257)),
            n_bins=int(spec.get("n_bins", 64)),
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        n, m = disguised.shape
        if self._prior_mode == "explicit" and len(self._prior_densities) != m:
            raise ValidationError(
                f"got {len(self._prior_densities)} explicit priors for "
                f"{m} attributes"
            )
        estimate = np.empty_like(disguised)
        details: dict = {"prior_mode": self._prior_mode}
        for j in range(m):
            column = disguised[:, j]
            noise = noise_marginal_density(noise_model, j)
            if self._prior_mode == "gaussian":
                estimate[:, j] = self._gaussian_posterior_mean(
                    column, noise, noise_model.family
                )
            else:
                prior = self._prior_for(column, noise, j)
                estimate[:, j] = self._grid_posterior_mean(
                    column, prior, noise
                )
        return ReconstructionResult(
            estimate=estimate, method=self.name, details=details
        )

    # ------------------------------------------------------------------
    def _prior_for(self, column, noise: Density, attribute: int) -> Density:
        if self._prior_mode == "explicit":
            return self._prior_densities[attribute]
        return reconstruct_distribution(
            column, noise, n_bins=self._n_bins
        )

    @staticmethod
    def _gaussian_posterior_mean(
        column: np.ndarray, noise: Density, family: str
    ) -> np.ndarray:
        """Moment-matched Gaussian-prior posterior mean.

        Exact for Gaussian noise; for uniform noise the same linear
        shrinkage is the best *linear* estimator (it matches the first
        two moments), which is the standard benchmark behaviour.
        """
        mean_y = float(column.mean())
        var_y = float(column.var())
        noise_var = noise.variance
        prior_var = max(var_y - noise_var, 0.0)
        prior_mean = mean_y - noise.mean
        # Exact guard: prior_var is max(..., 0.0), so 0.0 is a computed
        # sentinel, not an approximate quantity.
        if prior_var == 0.0:  # repro: ignore[float-eq] degenerate guard
            # The attribute is pure noise as far as moments can tell:
            # every posterior mean collapses to the prior mean.
            return np.full_like(column, prior_mean)
        shrinkage = prior_var / (prior_var + noise_var)
        return prior_mean + shrinkage * (column - noise.mean - prior_mean)

    def _grid_posterior_mean(
        self, column: np.ndarray, prior: Density, noise: Density
    ) -> np.ndarray:
        """Numerical posterior mean over an integration grid.

        The grid covers the prior's support at very high coverage — a
        truncated prior biases the posterior mean for observations near
        the support edge — plus a pad proportional to the noise spread.
        """
        lo_p, hi_p = prior.support(1.0 - 1e-7)
        lo_r, hi_r = noise.support(0.9999)
        grid = np.linspace(lo_p - (hi_r - lo_r) * 0.05,
                           hi_p + (hi_r - lo_r) * 0.05,
                           self._n_grid)
        prior_values = prior.pdf(grid)
        # kernel[i, k] = f_R(y_i - grid_k); the uniform grid spacing
        # cancels between numerator and denominator.
        kernel = noise.pdf(column[:, None] - grid[None, :])
        weights = kernel * prior_values[None, :]
        denominator = weights.sum(axis=1)
        numerator = weights @ grid
        fallback = float(
            np.sum(prior_values * grid) / max(float(prior_values.sum()), 1e-300)
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            posterior_mean = np.where(
                denominator > 0.0, numerator / np.maximum(denominator, 1e-300),
                fallback,
            )
        return posterior_mean

    def __repr__(self) -> str:
        return (
            f"UnivariateReconstructor(prior={self._prior_mode!r}, "
            f"n_grid={self._n_grid})"
        )
