"""Partial-value-disclosure attack (Section 3, third factor; Section 9).

Section 3: "Knowing that the patient Alice has diabetes and heart
problems, we might be able to estimate the other information about her."
Section 9 lists "how partial knowledge of a disguised data set can
compromise privacy" as future work.  This reconstructor carries BE-DR
into that threat model.

Threat model: besides the disguised table and noise model, the adversary
knows the *exact* values of some attribute subset ``K`` for every record
(leaked through a side channel).  The reconstruction of the remaining
attributes ``U`` then conditions on two signals:

1. the leaked values, through the Gaussian conditional
   ``x_U | x_K ~ N(mu_cond, Sigma_cond)`` — this is where correlation
   between leaked and hidden attributes bites; and
2. the disguised values ``y_U = x_U + r_U``, exactly as in BE-DR.

For *correlated* noise there is a further inference the naive approach
misses: knowing ``x_K`` reveals the realized noise ``r_K = y_K - x_K``,
and correlated noise lets the adversary condition ``r_U`` on ``r_K``,
sharpening the effective noise model.  The implementation performs this
noise conditioning whenever the noise covariance has off-diagonal
structure, quantifying a side channel the paper's defense opens.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import covariance_from_disguised
from repro.linalg.psd import nearest_psd, psd_inverse
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack
from repro.stats.mvn import MultivariateNormal
from repro.utils.validation import check_matrix

__all__ = ["ConditionalDisclosureReconstructor"]


@register_attack("conditional")
class ConditionalDisclosureReconstructor(Reconstructor):
    """BE-DR with side-channel knowledge of some attributes.

    Parameters
    ----------
    known_indices:
        Attribute indices whose true values leaked.
    known_values:
        Leaked values, shape ``(n, len(known_indices))`` aligned with the
        disguised table's rows.
    oracle_covariance:
        Optional true covariance (ablations); estimated via Theorem 5.1 /
        8.2 otherwise.
    """

    name = "BE-DR+leak"

    def __init__(
        self,
        known_indices,
        known_values,
        *,
        oracle_covariance=None,
    ):
        indices = np.asarray(known_indices, dtype=np.intp).ravel()
        if indices.size == 0:
            raise ValidationError("'known_indices' must be non-empty")
        if np.unique(indices).size != indices.size:
            raise ValidationError("'known_indices' contains duplicates")
        self._known_indices = indices
        self._known_values = check_matrix(known_values, "known_values")
        if self._known_values.shape[1] != indices.size:
            raise ValidationError(
                f"known_values has {self._known_values.shape[1]} columns for "
                f"{indices.size} known indices"
            )
        self._oracle_covariance = oracle_covariance

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        spec: dict = {
            "kind": "conditional",
            "known_indices": self._known_indices.tolist(),
            "known_values": self._known_values.tolist(),
        }
        if self._oracle_covariance is not None:
            spec["oracle_covariance"] = np.asarray(
                self._oracle_covariance
            ).tolist()
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "ConditionalDisclosureReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(
            spec,
            "conditional",
            required=("known_indices", "known_values"),
            optional=("oracle_covariance",),
        )
        oracle = spec.get("oracle_covariance")
        return cls(
            np.asarray(spec["known_indices"], dtype=np.intp),
            np.asarray(spec["known_values"], dtype=np.float64),
            oracle_covariance=(
                None if oracle is None else np.asarray(oracle, dtype=np.float64)
            ),
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        n, m = disguised.shape
        known = self._known_indices
        if known.min() < 0 or known.max() >= m:
            raise ValidationError(
                f"known indices must lie in [0, {m - 1}]"
            )
        if self._known_values.shape[0] != n:
            raise ValidationError(
                f"known_values covers {self._known_values.shape[0]} records, "
                f"table has {n}"
            )
        hidden = np.setdiff1d(np.arange(m), known)
        if hidden.size == 0:
            # Everything leaked; reconstruction is exact.
            return ReconstructionResult(
                estimate=self._known_values.copy(),
                method=self.name,
                details={"n_known": int(known.size), "n_hidden": 0},
            )

        if self._oracle_covariance is not None:
            sigma_x = np.asarray(self._oracle_covariance, dtype=np.float64)
        else:
            sigma_x = covariance_from_disguised(
                disguised, noise_model.covariance
            )
        mu_x = disguised.mean(axis=0) - noise_model.mean
        data_model = MultivariateNormal(mu_x, nearest_psd(sigma_x))

        # --- Step 1: condition the data prior on the leaked attributes.
        cov = data_model.covariance
        cov_kk = cov[np.ix_(known, known)]
        cov_hk = cov[np.ix_(hidden, known)]
        cov_hh = cov[np.ix_(hidden, hidden)]
        gain_x = cov_hk @ psd_inverse(nearest_psd(cov_kk))
        cond_cov_x = nearest_psd(cov_hh - gain_x @ cov_hk.T)
        # Per-record conditional prior means (n, |U|).
        deviations = self._known_values - mu_x[known]
        cond_mean_x = mu_x[hidden] + deviations @ gain_x.T

        # --- Step 2: condition the noise model on the revealed noise
        # r_K = y_K - x_K (informative only for correlated noise).
        noise_cov = noise_model.covariance
        r_known = (
            disguised[:, known] - self._known_values
        ) - noise_model.mean[known]
        ncov_kk = noise_cov[np.ix_(known, known)]
        ncov_hk = noise_cov[np.ix_(hidden, known)]
        ncov_hh = noise_cov[np.ix_(hidden, hidden)]
        if np.allclose(ncov_hk, 0.0, atol=1e-12):
            cond_mean_r = np.tile(noise_model.mean[hidden], (n, 1))
            cond_cov_r = ncov_hh
        else:
            gain_r = ncov_hk @ psd_inverse(nearest_psd(ncov_kk))
            cond_mean_r = noise_model.mean[hidden] + r_known @ gain_r.T
            cond_cov_r = nearest_psd(ncov_hh - gain_r @ ncov_hk.T)

        # --- Step 3: Theorem 8.1 on the hidden block with the per-record
        # conditional prior and conditional noise.
        precision_x = psd_inverse(cond_cov_x)
        precision_r = psd_inverse(cond_cov_r)
        posterior_cov = psd_inverse(precision_x + precision_r)
        rhs = (
            cond_mean_x @ precision_x.T
            + (disguised[:, hidden] - cond_mean_r) @ precision_r.T
        )
        hidden_estimate = rhs @ posterior_cov.T

        estimate = np.empty_like(disguised)
        estimate[:, known] = self._known_values
        estimate[:, hidden] = hidden_estimate
        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={
                "n_known": int(known.size),
                "n_hidden": int(hidden.size),
                "noise_conditioning": bool(
                    not np.allclose(ncov_hk, 0.0, atol=1e-12)
                ),
            },
        )

    def __repr__(self) -> str:
        return (
            "ConditionalDisclosureReconstructor("
            f"n_known={self._known_indices.size})"
        )
