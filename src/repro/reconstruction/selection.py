"""Principal-component selection strategies for PCA-DR.

Section 5.2.2, footnote 1: "There are a number of ways to select
principal components.  We can fix the number of selected principal
components; we can also fix the portion of the original information that
we want to keep; we can also choose the dominant eigenvalues by finding
the largest gap between the dominant eigenvalues and the non-dominant
ones.  The last method is used in our experiments."

All three strategies are implemented; :class:`LargestGapSelector` is the
default, matching the paper.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.eigen import eigen_gap_split, spectrum_energy_fraction
from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "ComponentSelector",
    "FixedCountSelector",
    "EnergyFractionSelector",
    "LargestGapSelector",
    "selector_from_spec",
    "selector_to_spec",
]


class ComponentSelector(abc.ABC):
    """Strategy deciding how many leading eigen-directions to keep."""

    @abc.abstractmethod
    def select(self, eigenvalues: np.ndarray) -> int:
        """Number of principal components ``p`` for the given spectrum.

        ``eigenvalues`` are sorted descending; the return value must lie
        in ``[1, len(eigenvalues)]``.
        """

    def to_spec(self) -> dict:
        """JSON-safe description; overridden by the built-in selectors."""
        raise ValidationError(
            f"{type(self).__name__} does not support spec serialization"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FixedCountSelector(ComponentSelector):
    """Always keep a fixed number of components.

    Useful for oracle experiments where the true number of principal
    directions is known by construction (the synthetic spectra of
    Section 7).

    Parameters
    ----------
    count:
        Number of components to keep; clamped to the spectrum length at
        selection time.
    """

    def __init__(self, count: int):
        self._count = check_positive_int(count, "count")

    @property
    def count(self) -> int:
        """Requested component count."""
        return self._count

    def select(self, eigenvalues: np.ndarray) -> int:
        """``min(count, m)`` for a length-``m`` descending spectrum."""
        m = int(np.asarray(eigenvalues).size)
        if m < 1:
            raise ValidationError("'eigenvalues' must be non-empty")
        return min(self._count, m)

    def to_spec(self) -> dict:
        """JSON-safe spec ``{"kind": "fixed", "count": ...}``."""
        return {"kind": "fixed", "count": self._count}

    def __repr__(self) -> str:
        return f"FixedCountSelector(count={self._count})"


class EnergyFractionSelector(ComponentSelector):
    """Keep the smallest prefix holding a target fraction of total variance.

    The footnote's second option: "fix the portion of the original
    information that we want to keep".

    Parameters
    ----------
    fraction:
        Energy fraction in ``(0, 1]``.
    """

    def __init__(self, fraction: float = 0.95):
        self._fraction = check_in_range(
            fraction, "fraction", low=0.0, high=1.0,
            inclusive_low=False,
        )

    @property
    def fraction(self) -> float:
        """Target energy fraction."""
        return self._fraction

    def select(self, eigenvalues: np.ndarray) -> int:
        """Smallest ``p`` whose eigenvalues hold ``fraction`` of the energy."""
        return spectrum_energy_fraction(eigenvalues, self._fraction)

    def to_spec(self) -> dict:
        """JSON-safe spec ``{"kind": "energy", "fraction": ...}``."""
        return {"kind": "energy", "fraction": self._fraction}

    def __repr__(self) -> str:
        return f"EnergyFractionSelector(fraction={self._fraction:g})"


class LargestGapSelector(ComponentSelector):
    """Split the spectrum at its largest consecutive gap (paper default).

    Parameters
    ----------
    max_rank:
        Optional upper bound on the returned ``p``; useful when the
        adversary knows the data cannot have more than so many strong
        directions.
    """

    def __init__(self, max_rank: int | None = None):
        if max_rank is not None:
            max_rank = check_positive_int(max_rank, "max_rank")
        self._max_rank = max_rank

    @property
    def max_rank(self) -> int | None:
        """Optional cap on the selected rank."""
        return self._max_rank

    def select(self, eigenvalues: np.ndarray) -> int:
        """``p`` maximizing the descending-spectrum gap (Section 5.2.2)."""
        return eigen_gap_split(eigenvalues, max_rank=self._max_rank)

    def to_spec(self) -> dict:
        """JSON-safe spec ``{"kind": "largest-gap"[, "max_rank": ...]}``."""
        spec: dict = {"kind": "largest-gap"}
        if self._max_rank is not None:
            spec["max_rank"] = self._max_rank
        return spec

    def __repr__(self) -> str:
        return f"LargestGapSelector(max_rank={self._max_rank})"


def selector_to_spec(selector: ComponentSelector) -> dict:
    """Spec dict of a component selector."""
    if not isinstance(selector, ComponentSelector):
        raise ValidationError(
            f"expected a ComponentSelector, got {type(selector).__name__}"
        )
    return selector.to_spec()


def selector_from_spec(spec: dict) -> ComponentSelector:
    """Rebuild a component selector from its spec dict."""
    from repro.registry import check_spec

    if not isinstance(spec, dict) or not isinstance(spec.get("kind"), str):
        raise ValidationError(
            f"selector spec must be a dict with a string 'kind', got {spec!r}"
        )
    kind = spec["kind"]
    if kind == "fixed":
        check_spec(spec, "fixed", required=("count",))
        return FixedCountSelector(int(spec["count"]))
    if kind == "energy":
        check_spec(spec, "energy", required=("fraction",))
        return EnergyFractionSelector(float(spec["fraction"]))
    if kind == "largest-gap":
        check_spec(spec, "largest-gap", optional=("max_rank",))
        max_rank = spec.get("max_rank")
        return LargestGapSelector(None if max_rank is None else int(max_rank))
    raise ValidationError(
        f"unknown selector kind {kind!r}; known: fixed, energy, largest-gap"
    )
