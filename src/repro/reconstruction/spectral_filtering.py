"""SF — Spectral Filtering, the Kargupta et al. baseline (ICDM 2003).

The prior-art attack the paper compares against.  Like PCA-DR it projects
the disguised data onto a signal subspace, but it separates signal from
noise using random-matrix theory instead of the corrected eigen-spectrum:

1. Eigendecompose the sample covariance of the *disguised* data (no
   Theorem-5.1 correction).
2. Random-matrix theory (Marchenko-Pastur) bounds the eigenvalues a pure
   i.i.d.-noise covariance can produce from ``n`` samples in ``m``
   dimensions: ``lambda in sigma^2 * (1 +- sqrt(m/n))^2``.
3. Eigenvalues above the noise upper bound must carry signal; project the
   disguised data onto their eigenvectors.

The paper observes (Sections 7.2 and 8.2) that SF's bounds are derived
for *independent* noise with well-separated spectra, so it degrades when
non-principal eigenvalues are large and behaves irregularly under the
correlated-noise defense — both behaviours fall out of this
implementation naturally.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import sample_covariance
from repro.linalg.eigen import sorted_eigh
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["marchenko_pastur_bounds", "SpectralFilteringReconstructor"]


def marchenko_pastur_bounds(
    variance: float, n_records: int, n_attributes: int
) -> tuple[float, float]:
    """Eigenvalue support of an i.i.d.-noise sample covariance.

    For an ``(n, m)`` matrix of i.i.d. zero-mean entries with variance
    ``sigma^2``, the sample-covariance eigenvalues converge to the
    Marchenko-Pastur interval

        [ sigma^2 (1 - sqrt(m/n))^2 ,  sigma^2 (1 + sqrt(m/n))^2 ].

    These are the ``lambda_min/lambda_max`` bounds SF uses to decide which
    disguised-covariance eigenstates are pure noise.

    Parameters
    ----------
    variance:
        Noise variance ``sigma^2``.
    n_records, n_attributes:
        Sample dimensions ``n`` and ``m``.

    Returns
    -------
    tuple of float
        ``(lower, upper)`` eigenvalue bounds.
    """
    check_in_range(variance, "variance", low=0.0)
    n = check_positive_int(n_records, "n_records")
    m = check_positive_int(n_attributes, "n_attributes")
    ratio = math.sqrt(m / n)
    lower = variance * (1.0 - ratio) ** 2
    upper = variance * (1.0 + ratio) ** 2
    return lower, upper


@register_attack("sf")
class SpectralFilteringReconstructor(Reconstructor):
    """Kargupta et al.'s spectral-filtering attack.

    Parameters
    ----------
    tolerance:
        Multiplicative slack on the noise upper bound (eigenvalues must
        exceed ``upper * (1 + tolerance)`` to count as signal); absorbs
        finite-sample fluctuation above the asymptotic MP edge.
    """

    name = "SF"

    def __init__(self, *, tolerance: float = 0.05):
        self._tolerance = check_in_range(tolerance, "tolerance", low=0.0)

    @property
    def tolerance(self) -> float:
        """Slack applied to the Marchenko-Pastur upper edge."""
        return self._tolerance

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        return {"kind": "sf", "tolerance": self._tolerance}

    @classmethod
    def from_spec(cls, spec: dict) -> "SpectralFilteringReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(spec, "sf", optional=("tolerance",))
        return cls(tolerance=float(spec.get("tolerance", 0.05)))

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        n, m = disguised.shape
        if n < 2:
            raise ValidationError("SF needs at least 2 records")
        # SF was derived for i.i.d. noise; when the publisher uses
        # correlated noise the attacker still plugs in the average
        # per-attribute variance — exactly the model mismatch that makes
        # SF erratic in the paper's Figure 4.
        variance = float(np.mean(np.diag(noise_model.covariance)))
        lower, upper = marchenko_pastur_bounds(variance, n, m)
        threshold = upper * (1.0 + self._tolerance)

        covariance_y = sample_covariance(disguised)
        decomposition = sorted_eigh(covariance_y)
        n_signal = int(np.sum(decomposition.values > threshold))
        # An empty signal subspace would return the all-means table; keep
        # the strongest direction instead, matching SF implementations
        # that always retain at least one component.
        n_signal = max(n_signal, 1)
        projector = decomposition.projector(n_signal)

        column_means = disguised.mean(axis=0)
        estimate = (disguised - column_means) @ projector + column_means

        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={
                "n_signal": n_signal,
                "noise_bounds": (lower, upper),
                "threshold": threshold,
                "eigenvalues": decomposition.values,
            },
        )

    def __repr__(self) -> str:
        return f"SpectralFilteringReconstructor(tolerance={self._tolerance:g})"
