"""Reconstructor interface shared by all attacks.

Every attack consumes only the *public* view of a
:class:`~repro.randomization.base.DisguisedDataset` — the disguised
matrix and the announced noise model — and returns a
:class:`ReconstructionResult`.  Keeping the interface uniform lets the
experiment harness sweep attacks interchangeably, and makes it a type
error for an attack to peek at the private original data.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.randomization.base import DisguisedDataset, NoiseModel
from repro.utils.serialization import values_equal
from repro.utils.validation import check_matrix

__all__ = ["ReconstructionResult", "Reconstructor"]


@dataclass(frozen=True, eq=False)
class ReconstructionResult:
    """Output of a reconstruction attack.

    Attributes
    ----------
    estimate:
        The reconstructed table ``X_hat``, shape ``(n, m)``.
    method:
        Short name of the attack that produced it (e.g. ``"PCA-DR"``).
    details:
        Method-specific diagnostics, e.g. the number of principal
        components PCA-DR retained, or the covariance estimate BE-DR
        used.  Values are small scalars/arrays for reporting; nothing in
        here is needed to interpret ``estimate``.
    """

    estimate: np.ndarray
    method: str
    details: dict = field(default_factory=dict)

    def __post_init__(self):
        matrix = check_matrix(self.estimate, "estimate")
        object.__setattr__(self, "estimate", matrix)
        if not self.method:
            raise ValidationError("'method' must be a non-empty string")

    def __eq__(self, other) -> bool:
        # The generated dataclass __eq__ would compare ``estimate``
        # arrays with ``==`` and raise the ambiguous-truth ValueError;
        # compare element-wise (nan-aware, so round-tripped results with
        # nan diagnostics still compare equal).
        if not isinstance(other, ReconstructionResult):
            return NotImplemented
        return (
            self.method == other.method
            and values_equal(self.estimate, other.estimate)
            and values_equal(self.details, other.details)
        )

    @property
    def n_records(self) -> int:
        """Number of reconstructed rows."""
        return int(self.estimate.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of reconstructed columns."""
        return int(self.estimate.shape[1])

    def __repr__(self) -> str:
        return (
            f"ReconstructionResult(method={self.method!r}, "
            f"n={self.n_records}, m={self.n_attributes})"
        )


class Reconstructor(abc.ABC):
    """A data-reconstruction attack.

    Subclasses implement :meth:`_reconstruct` on the public view; the
    public :meth:`reconstruct` method accepts either a
    :class:`DisguisedDataset` (convenient in experiments) or an explicit
    ``(disguised, noise_model)`` pair (what a real adversary holds).
    """

    #: Short display name, overridden by subclasses.
    name: str = "base"

    def to_spec(self) -> dict:
        """JSON-safe description; overridden by registered attacks."""
        raise ValidationError(
            f"{type(self).__name__} does not support spec serialization; "
            "register it with repro.registry.register_attack and "
            "implement to_spec()/from_spec()"
        )

    def reconstruct(
        self,
        disguised,
        noise_model: NoiseModel | None = None,
    ) -> ReconstructionResult:
        """Run the attack.

        Parameters
        ----------
        disguised:
            Either a :class:`DisguisedDataset` or the raw disguised
            matrix ``Y`` of shape ``(n, m)``.
        noise_model:
            Required when ``disguised`` is a raw matrix; forbidden (taken
            from the dataset) otherwise.

        Returns
        -------
        ReconstructionResult
        """
        if isinstance(disguised, DisguisedDataset):
            if noise_model is not None:
                raise ValidationError(
                    "pass either a DisguisedDataset or (matrix, noise_model),"
                    " not both"
                )
            matrix = disguised.disguised
            model = disguised.noise_model
        else:
            if noise_model is None:
                raise ValidationError(
                    "noise_model is required when passing a raw matrix"
                )
            matrix = check_matrix(disguised, "disguised")
            model = noise_model
        if matrix.shape[1] != model.dim:
            raise ValidationError(
                f"data has {matrix.shape[1]} attributes but the noise model "
                f"covers {model.dim}"
            )
        return self._reconstruct(matrix, model)

    @abc.abstractmethod
    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        """Attack implementation on the validated public view."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
