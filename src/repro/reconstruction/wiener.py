"""Wiener-smoother attack on serially dependent data.

Section 3's second disclosure factor: "for certain types of data, such as
the time series data, there exists serial dependency among the samples
... various techniques are available from the signal processing
literature to de-noise the contaminated signals."  This reconstructor is
that technique: the linear MMSE (Wiener) smoother applied per channel
over a sliding window.

It is the exact temporal analogue of BE-DR — the same Gaussian posterior
mean, with correlation across *records* (time) instead of across
*attributes*.  The signal autocovariance is estimated from the disguised
series via the time-series version of Theorem 5.1: the noise being white,
it only inflates the lag-0 autocovariance by ``sigma^2``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.psd import nearest_psd, psd_inverse
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack
from repro.utils.validation import check_positive_int

__all__ = ["WienerSmootherReconstructor"]


@register_attack("wiener")
class WienerSmootherReconstructor(Reconstructor):
    """Sliding-window linear MMSE smoother for ``Y_t = X_t + R_t``.

    Rows of the input are interpreted as consecutive time steps; each
    column is an independent channel (cross-channel correlation is BE-DR's
    job — compose the two attacks for both axes).

    Parameters
    ----------
    window:
        Odd window length ``w``; each estimate conditions on the ``w``
        disguised values centered on the target step.
    max_lag:
        Autocovariance lags to estimate; defaults to ``window - 1``.
    """

    name = "Wiener"

    def __init__(self, *, window: int = 21, max_lag: int | None = None):
        self._window = check_positive_int(window, "window", minimum=3)
        if self._window % 2 == 0:
            raise ValidationError(
                f"window must be odd, got {self._window}"
            )
        if max_lag is None:
            max_lag = self._window - 1
        self._max_lag = check_positive_int(max_lag, "max_lag")
        if self._max_lag < self._window - 1:
            raise ValidationError(
                f"max_lag={self._max_lag} must cover the window "
                f"(>= {self._window - 1})"
            )

    @property
    def window(self) -> int:
        """Sliding-window length."""
        return self._window

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        return {
            "kind": "wiener",
            "window": self._window,
            "max_lag": self._max_lag,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "WienerSmootherReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(spec, "wiener", optional=("window", "max_lag"))
        max_lag = spec.get("max_lag")
        return cls(
            window=int(spec.get("window", 21)),
            max_lag=None if max_lag is None else int(max_lag),
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        n, m = disguised.shape
        if n <= self._window:
            raise ValidationError(
                f"series of length {n} is shorter than window "
                f"{self._window}"
            )
        estimate = np.empty_like(disguised)
        gains = []
        for j in range(m):
            noise_var = float(noise_model.covariance[j, j])
            channel = disguised[:, j] - float(noise_model.mean[j])
            smoothed, gain = self._smooth_channel(channel, noise_var)
            estimate[:, j] = smoothed
            gains.append(gain)
        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={"window": self._window, "gains": gains},
        )

    # ------------------------------------------------------------------
    def _smooth_channel(
        self, channel: np.ndarray, noise_var: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Wiener-smooth one channel; returns (estimate, center gain row)."""
        mean = float(channel.mean())
        centered = channel - mean
        autocov_y = _autocovariance(centered, self._max_lag)
        # Time-series Theorem 5.1: white noise only inflates lag 0.
        autocov_x = autocov_y.copy()
        autocov_x[0] = max(autocov_x[0] - noise_var, 0.0)

        w = self._window
        lags = np.abs(np.subtract.outer(np.arange(w), np.arange(w)))
        toeplitz_x = nearest_psd(autocov_x[lags])
        toeplitz_y = toeplitz_x + noise_var * np.eye(w)
        center = w // 2
        # gain = Sigma_x[center, :] @ Sigma_y^{-1}: the smoother weights.
        gain = toeplitz_x[center] @ psd_inverse(toeplitz_y)

        padded = np.pad(centered, (center, center), mode="reflect")
        windows = np.lib.stride_tricks.sliding_window_view(padded, w)
        smoothed = windows @ gain + mean
        return smoothed, gain


def _autocovariance(centered: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased sample autocovariance for lags ``0..max_lag``.

    The biased (divide by ``n``) estimator keeps the implied Toeplitz
    matrix positive semidefinite, which the smoother needs.
    """
    n = centered.size
    if max_lag >= n:
        raise ValidationError(
            f"max_lag={max_lag} requires a series longer than {max_lag}"
        )
    result = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        result[lag] = float(
            np.dot(centered[: n - lag], centered[lag:]) / n
        )
    return result
