"""Kalman/RTS smoother attack on randomized multivariate time series.

The strongest form of the paper's sample-dependency threat (Section 3):
where :class:`~repro.reconstruction.wiener.WienerSmootherReconstructor`
de-noises each channel separately, this attack fits a linear state-space
model to the *disguised* series and runs the full Kalman forward filter
plus Rauch-Tung-Striebel backward smoother — exploiting temporal and
cross-attribute correlation jointly.  It is the time-series counterpart
of BE-DR: the exact Gaussian posterior mean of the whole trajectory.

Model: ``x_t = A x_{t-1} + w_t`` with ``w ~ N(0, Q)``, observed as
``y_t = x_t + v_t`` with the public noise ``v ~ N(0, Sigma_r)``.

System identification from public data only (the Theorem-5.1 idea
extended one lag):

* ``C0_x = Cov(y) - Sigma_r``         (white noise inflates lag 0 only)
* ``C1_x = lag-1 cross-covariance of y``  (noise is serially independent)
* ``A = C1_x C0_x^{-1}``              (Yule-Walker, order 1)
* ``Q = C0_x - A C0_x A^T``           (stationarity)

Estimated transitions with spectral radius >= 1 are rescaled slightly
inside the unit circle so the filter stays stable on finite samples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import sample_covariance
from repro.linalg.psd import nearest_psd, psd_inverse
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack
from repro.telemetry import trace
from repro.telemetry.convergence import NULL_TRACKER
from repro.utils.validation import check_in_range

__all__ = ["KalmanSmootherReconstructor"]


@register_attack("kalman")
class KalmanSmootherReconstructor(Reconstructor):
    """State-space smoother attack for serially dependent tables.

    Rows are consecutive time steps; all columns are smoothed jointly.

    Parameters
    ----------
    max_spectral_radius:
        Stability cap applied to the estimated transition matrix; must
        lie in ``(0, 1)``.
    """

    name = "Kalman"

    def __init__(self, *, max_spectral_radius: float = 0.995):
        self._max_radius = check_in_range(
            max_spectral_radius, "max_spectral_radius",
            low=0.0, high=1.0,
            inclusive_low=False, inclusive_high=False,
        )

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        return {"kind": "kalman", "max_spectral_radius": self._max_radius}

    @classmethod
    def from_spec(cls, spec: dict) -> "KalmanSmootherReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(spec, "kalman", optional=("max_spectral_radius",))
        return cls(
            max_spectral_radius=float(spec.get("max_spectral_radius", 0.995))
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        n, m = disguised.shape
        if n < 4:
            raise ValidationError(
                "Kalman smoothing needs at least 4 time steps"
            )
        mean = disguised.mean(axis=0) - noise_model.mean
        centered = disguised - disguised.mean(axis=0)
        noise_cov = noise_model.covariance

        transition, process_cov, state_cov = self._identify(
            centered, noise_cov
        )
        if not trace.enabled():
            smoothed = self._rts_smooth(
                centered, transition, process_cov, state_cov, noise_cov
            )
        else:
            # One span for the whole smoothing pass; the tracker feeds
            # it one record per forward-filter time step (innovation
            # norm + innovation-covariance condition), the numerical
            # vitals of the filter.
            with trace.span("kalman.smooth", n=n, m=m):
                tracker = trace.iterations("kalman.filter")
                smoothed = self._rts_smooth(
                    centered, transition, process_cov, state_cov,
                    noise_cov, tracker,
                )
                tracker.finish()
        return ReconstructionResult(
            estimate=smoothed + mean,
            method=self.name,
            details={
                "transition": transition,
                "process_covariance": process_cov,
                "spectral_radius": float(
                    np.max(np.abs(np.linalg.eigvals(transition)))
                ),
            },
        )

    # ------------------------------------------------------------------
    def _identify(self, centered: np.ndarray, noise_cov: np.ndarray):
        """Yule-Walker order-1 identification from the disguised series."""
        n = centered.shape[0]
        cov_y = sample_covariance(centered)
        state_cov = nearest_psd(cov_y - noise_cov, floor=1e-8)
        lag1 = centered[1:].T @ centered[:-1] / (n - 1)
        transition = lag1 @ psd_inverse(state_cov)
        # Stability cap: finite-sample estimates can step outside the
        # unit circle even for a stationary truth.
        radius = float(np.max(np.abs(np.linalg.eigvals(transition))))
        if radius >= self._max_radius:
            transition = transition * (self._max_radius / radius)
        process_cov = nearest_psd(
            state_cov - transition @ state_cov @ transition.T,
            floor=1e-10,
        )
        return transition, process_cov, state_cov

    @staticmethod
    def _rts_smooth(
        observations: np.ndarray,
        transition: np.ndarray,
        process_cov: np.ndarray,
        state_cov: np.ndarray,
        noise_cov: np.ndarray,
        tracker=NULL_TRACKER,
    ) -> np.ndarray:
        """Forward Kalman filter + RTS backward pass (zero-mean data).

        ``tracker`` receives one record per forward time step: the
        innovation norm ``|y_t - ŷ_t|`` as the delta and the condition
        number of the innovation covariance — both guarded behind
        ``tracker.enabled`` so the untraced filter computes neither.
        """
        n, m = observations.shape
        identity = np.eye(m)

        filtered_means = np.empty((n, m))
        filtered_covs = np.empty((n, m, m))
        predicted_means = np.empty((n, m))
        predicted_covs = np.empty((n, m, m))

        # Stationary initialization.
        mean = np.zeros(m)
        cov = state_cov
        for t in range(n):
            if t > 0:
                mean = transition @ mean
                cov = nearest_psd(
                    transition @ cov @ transition.T + process_cov
                )
            predicted_means[t] = mean
            predicted_covs[t] = cov
            innovation_cov = cov + noise_cov
            gain = cov @ psd_inverse(innovation_cov)
            if tracker.enabled:
                tracker.record(
                    delta=float(np.linalg.norm(observations[t] - mean)),
                    condition=float(np.linalg.cond(innovation_cov)),
                )
            mean = mean + gain @ (observations[t] - mean)
            cov = nearest_psd((identity - gain) @ cov)
            filtered_means[t] = mean
            filtered_covs[t] = cov

        smoothed = np.empty((n, m))
        smoothed[-1] = filtered_means[-1]
        smooth_cov = filtered_covs[-1]
        for t in range(n - 2, -1, -1):
            predicted = predicted_covs[t + 1]
            smoother_gain = (
                filtered_covs[t] @ transition.T @ psd_inverse(predicted)
            )
            smoothed[t] = filtered_means[t] + smoother_gain @ (
                smoothed[t + 1] - predicted_means[t + 1]
            )
            smooth_cov = nearest_psd(
                filtered_covs[t]
                + smoother_gain
                @ (smooth_cov - predicted)
                @ smoother_gain.T
            )
        return smoothed

    def __repr__(self) -> str:
        return (
            "KalmanSmootherReconstructor("
            f"max_spectral_radius={self._max_radius:g})"
        )
