"""BE-DR — Bayes-Estimate-based Data Reconstruction (Section 6, Theorem 8.1).

Model the original records as draws from ``N(mu_x, Sigma_x)`` and the
noise as ``N(0, Sigma_r)``; the posterior ``P(x | y)`` is Gaussian and its
maximizer (= posterior mean) is the reconstruction:

* i.i.d. noise, Eq. (11):
  ``x_hat = (Sigma_x^-1 + I/sigma^2)^-1 (Sigma_x^-1 mu_x + y/sigma^2)``
* correlated noise, Theorem 8.1:
  ``x_hat = (Sigma_x^-1 + Sigma_r^-1)^-1
            (Sigma_x^-1 mu_x - Sigma_r^-1 mu_r + Sigma_r^-1 y)``

Eq. (11) is the special case ``Sigma_r = sigma^2 I``, ``mu_r = 0``; the
implementation uses the general form throughout, so the same class
attacks both the baseline and the improved randomization scheme.

The adversary inputs are all public: ``Sigma_x`` comes from Theorem 5.1 /
8.2 (disguised covariance minus noise covariance) and ``mu_x ~= mu_y``
because the noise is zero-mean (Section 6.1, step 2).

BE-DR uses *all* directions — principal and non-principal — weighted by
their signal-to-noise ratio, which is why it dominates PCA-DR everywhere
and degrades gracefully to UDR as correlations vanish (Section 7.4).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import covariance_from_disguised
from repro.linalg.psd import psd_inverse
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack
from repro.utils.validation import check_symmetric, check_vector

__all__ = ["BayesEstimateReconstructor"]


@register_attack("be-dr")
class BayesEstimateReconstructor(Reconstructor):
    """The paper's Bayes-estimate reconstruction attack.

    Parameters
    ----------
    oracle_covariance:
        Optional true data covariance for ablations (the deployed attack
        estimates it from the disguised data).
    oracle_mean:
        Optional true data mean for ablations (the deployed attack uses
        the disguised-data column means).
    covariance_estimator:
        ``"sample"`` (Theorem 5.1) or ``"ledoit-wolf"`` (shrinkage;
        sharper posterior inputs at small sample sizes).
    """

    name = "BE-DR"

    def __init__(
        self,
        *,
        oracle_covariance=None,
        oracle_mean=None,
        covariance_estimator: str = "sample",
    ):
        if oracle_covariance is not None:
            oracle_covariance = check_symmetric(
                oracle_covariance, "oracle_covariance"
            )
        self._oracle_covariance = oracle_covariance
        if oracle_mean is not None:
            oracle_mean = check_vector(oracle_mean, "oracle_mean")
        self._oracle_mean = oracle_mean
        if covariance_estimator not in ("sample", "ledoit-wolf"):
            raise ValidationError(
                "covariance_estimator must be 'sample' or 'ledoit-wolf', "
                f"got {covariance_estimator!r}"
            )
        self._covariance_estimator = covariance_estimator

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        spec: dict = {
            "kind": "be-dr",
            "covariance_estimator": self._covariance_estimator,
        }
        if self._oracle_covariance is not None:
            spec["oracle_covariance"] = self._oracle_covariance.tolist()
        if self._oracle_mean is not None:
            spec["oracle_mean"] = self._oracle_mean.tolist()
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "BayesEstimateReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(
            spec,
            "be-dr",
            optional=(
                "oracle_covariance",
                "oracle_mean",
                "covariance_estimator",
            ),
        )
        oracle_cov = spec.get("oracle_covariance")
        oracle_mean = spec.get("oracle_mean")
        return cls(
            oracle_covariance=(
                None
                if oracle_cov is None
                else np.asarray(oracle_cov, dtype=np.float64)
            ),
            oracle_mean=(
                None
                if oracle_mean is None
                else np.asarray(oracle_mean, dtype=np.float64)
            ),
            covariance_estimator=spec.get("covariance_estimator", "sample"),
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        m = disguised.shape[1]

        if self._oracle_covariance is not None:
            if self._oracle_covariance.shape[0] != m:
                raise ValidationError(
                    f"oracle covariance is {self._oracle_covariance.shape[0]}"
                    f"-dimensional, data has {m} attributes"
                )
            sigma_x = self._oracle_covariance
        else:
            sigma_x = covariance_from_disguised(
                disguised,
                noise_model.covariance,
                estimator=self._covariance_estimator,
            )

        if self._oracle_mean is not None:
            if self._oracle_mean.size != m:
                raise ValidationError(
                    f"oracle mean has length {self._oracle_mean.size}, "
                    f"data has {m} attributes"
                )
            mu_x = self._oracle_mean
        else:
            # mu_x ~= mu_y - mu_r: noise means are public (zero in the
            # paper's schemes, but subtracting costs nothing).
            mu_x = disguised.mean(axis=0) - noise_model.mean

        precision_x = psd_inverse(sigma_x)
        precision_r = psd_inverse(noise_model.covariance)

        # Posterior precision A = Sigma_x^-1 + Sigma_r^-1 (Theorem 8.1);
        # for iid noise this is Eq. (11)'s Sigma_x^-1 + I/sigma^2.
        posterior_precision = precision_x + precision_r
        posterior_covariance = psd_inverse(posterior_precision)

        # x_hat = A^-1 (Sigma_x^-1 mu_x - Sigma_r^-1 mu_r + Sigma_r^-1 y),
        # vectorized over all n records at once.
        constant = precision_x @ mu_x - precision_r @ noise_model.mean
        estimate = (
            disguised @ precision_r.T + constant
        ) @ posterior_covariance.T

        # The Gaussian posterior covariance is also the estimator's error
        # covariance, so the model-implied reconstruction MSE per cell is
        # trace(A^-1)/m; with the true Sigma_x this is the Bayes-optimal
        # (minimum achievable) MSE for the scheme.
        expected_mse = float(np.trace(posterior_covariance)) / m

        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={
                "estimated_covariance": sigma_x,
                "estimated_mean": mu_x,
                "posterior_covariance": posterior_covariance,
                "expected_mse": expected_mse,
                "used_oracle_covariance": self._oracle_covariance is not None,
            },
        )

    def __repr__(self) -> str:
        return (
            "BayesEstimateReconstructor("
            f"oracle_covariance={self._oracle_covariance is not None}, "
            f"oracle_mean={self._oracle_mean is not None})"
        )
