"""Gradient-ascent MAP reconstruction for non-Gaussian priors.

Section 6 closes: "for other distributions, we might not be able to
derive an equation with a simple analytic form for its first derivative.
In such situations, the Bayes estimate must be sought using numerical
methods, such as Gradient descent methods.  We will study them in our
future work."  This module is that future work for univariate priors:
each attribute's posterior ``f_X(x) f_R(y - x)`` is maximized by damped
Newton ascent on the log-posterior, with multi-start to cope with the
multi-modality a mixture prior induces.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.reconstruction.udr import noise_marginal_density
from repro.stats.density import (
    Density,
    GaussianDensity,
    GaussianMixtureDensity,
)
from repro.telemetry import trace
from repro.telemetry.convergence import NULL_TRACKER
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["MAPGradientReconstructor"]

_SQRT_2PI = float(np.sqrt(2.0 * np.pi))


def _log_prior_and_grad(density: Density, x: np.ndarray):
    """Log prior and its derivative, analytic where possible.

    Gaussian and Gaussian-mixture priors get exact gradients; any other
    :class:`Density` falls back to a central finite difference.

    Parameters
    ----------
    density:
        The prior ``f_X``.
    x:
        Evaluation points, any shape (the batched ascent passes a
        ``(n_starts, n)`` matrix); both returns match ``x``'s shape.

    Returns
    -------
    (log_p, grad):
        ``log f_X(x)`` and ``d/dx log f_X(x)``, elementwise.
    """
    if isinstance(density, GaussianDensity):
        variance = density.variance
        centered = x - density.mean
        log_p = -0.5 * centered**2 / variance - np.log(
            density.std * _SQRT_2PI
        )
        grad = -centered / variance
        return log_p, grad
    if isinstance(density, GaussianMixtureDensity):
        weights = density.weights
        means = density.means
        stds = density.stds
        z = (x[..., None] - means) / stds
        comp = weights * np.exp(-0.5 * z * z) / (stds * _SQRT_2PI)
        total = np.maximum(comp.sum(axis=-1), 1e-300)
        # d/dx sum_k w_k N_k = sum_k w_k N_k * (-(x - mu_k)/sigma_k^2)
        slope = (comp * (-(x[..., None] - means) / stds**2)).sum(axis=-1)
        return np.log(total), slope / total
    # Generic fallback: finite differences on log pdf.
    h = 1e-5 * max(density.std, 1e-6)
    forward = np.log(np.maximum(density.pdf(x + h), 1e-300))
    backward = np.log(np.maximum(density.pdf(x - h), 1e-300))
    log_p = np.log(np.maximum(density.pdf(x), 1e-300))
    return log_p, (forward - backward) / (2.0 * h)


class MAPGradientReconstructor(Reconstructor):
    """Numerical MAP attack with per-attribute non-Gaussian priors.

    Parameters
    ----------
    priors:
        One :class:`Density` per attribute — the adversary's model of the
        original marginals (oracle in experiments; an EM-fitted mixture in
        practice, see :class:`repro.stats.em.UnivariateGaussianMixtureEM`).
    n_starts:
        Multi-start count per sample.  Starts are the disguised value
        itself plus the prior's component means (for mixtures), padded
        with prior-spread perturbations.
    max_iter:
        Ascent iteration budget per start.
    step_scale:
        Initial step size as a fraction of the noise std.
    """

    name = "MAP-GD"

    def __init__(
        self,
        priors: Sequence[Density],
        *,
        n_starts: int = 4,
        max_iter: int = 100,
        step_scale: float = 0.5,
    ):
        if not isinstance(priors, Sequence) or not all(
            isinstance(d, Density) for d in priors
        ):
            raise ValidationError(
                "'priors' must be a sequence of Density objects"
            )
        self._priors = tuple(priors)
        self._n_starts = check_positive_int(n_starts, "n_starts")
        self._max_iter = check_positive_int(max_iter, "max_iter")
        self._step_scale = check_in_range(
            step_scale, "step_scale", low=0.0, inclusive_low=False
        )

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        n, m = disguised.shape
        if len(self._priors) != m:
            raise ValidationError(
                f"got {len(self._priors)} priors for {m} attributes"
            )
        # One coarse span for the whole multi-column ascent; when
        # tracing is off this is a shared no-op singleton, so the hook
        # costs one predicate check per reconstruct call.  Under
        # tracing each column additionally gets its own child span
        # carrying the ascent's convergence payload.
        with trace.span(
            "map_gd.reconstruct", n=n, m=m, n_starts=self._n_starts
        ):
            estimate = np.empty_like(disguised)
            for j in range(m):
                noise = noise_marginal_density(noise_model, j)
                if noise.variance <= 0.0:
                    raise ValidationError(
                        f"attribute {j} has non-positive noise variance"
                    )
                column = disguised[:, j] - noise.mean
                if not trace.enabled():
                    estimate[:, j] = self._map_column(
                        column, self._priors[j], noise
                    )
                else:
                    with trace.span("map_gd.column", attribute=j):
                        estimate[:, j] = self._map_column(
                            column,
                            self._priors[j],
                            noise,
                            trace.iterations("map_gd.ascent"),
                        )
        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={"n_starts": self._n_starts},
        )

    # ------------------------------------------------------------------
    def _map_column(
        self,
        column: np.ndarray,
        prior: Density,
        noise: Density,
        tracker=NULL_TRACKER,
    ) -> np.ndarray:
        """MAP estimate for every sample of one attribute.

        All multi-start trajectories run *batched*: the ascent state is
        an ``(n_starts, n)`` matrix and each damped-Newton iteration
        advances every start in one vectorized pass.  Starts are
        independent elementwise, so this reproduces the historical
        one-start-at-a-time loop bit for bit — including its early
        exit, emulated by freezing a start's row once its largest step
        falls below ``1e-8 * step`` — while evaluating the prior once
        per accepted point instead of twice (the old loop recomputed
        the log-prior of the current iterate inside the objective).

        Parameters
        ----------
        column:
            Noise-mean-adjusted disguised values, shape ``(n,)``.
        prior:
            The attribute's prior ``f_X``.
        noise:
            Univariate noise marginal ``f_R``.
        tracker:
            Convergence tracker fed once per ascent iteration (best
            objective, current step scale, rejected-proposal count).
            Every derived statistic is guarded behind
            ``tracker.enabled``, so the default no-op tracker keeps
            the untraced path free of extra reductions; the accepted
            iterates themselves are untouched either way.

        Returns
        -------
        numpy.ndarray
            MAP estimates, shape ``(n,)``.
        """
        starts = self._build_starts(column, prior)
        noise_var = noise.variance
        step = self._step_scale * noise.std

        x = np.stack(starts)  # (n_starts, n)
        col = np.broadcast_to(column, x.shape)
        log_p, grad_prior = _log_prior_and_grad(prior, x)
        obj = log_p - 0.5 * (col - x) ** 2 / noise_var
        # The historical best-so-far seed: start 0 at its initial point.
        best_x = x[0].copy()
        best_obj = obj[0].copy()

        current_step = np.full_like(x, step)
        active = np.ones(x.shape[0], dtype=bool)
        for _ in range(self._max_iter):
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            xa = x[rows]
            step_a = current_step[rows]
            col_a = np.broadcast_to(column, xa.shape)
            grad = grad_prior[rows] + (col_a - xa) / noise_var
            proposal = xa + np.clip(step_a * grad, -3.0 * step, 3.0 * step)
            new_log_p, new_grad_prior = _log_prior_and_grad(prior, proposal)
            new_obj = new_log_p - 0.5 * (col_a - proposal) ** 2 / noise_var
            improved = new_obj > obj[rows]
            x[rows] = np.where(improved, proposal, xa)
            obj[rows] = np.where(improved, new_obj, obj[rows])
            grad_prior[rows] = np.where(
                improved, new_grad_prior, grad_prior[rows]
            )
            # Halve the step where the ascent overshot.
            step_a = np.where(improved, step_a, step_a * 0.5)
            current_step[rows] = step_a
            active[rows] = step_a.max(axis=1) >= 1e-8 * step
            if tracker.enabled:
                tracker.record(
                    objective=float(obj.max()),
                    delta=float(step_a.max()),
                    rejected=int(improved.size)
                    - int(np.count_nonzero(improved)),
                )
        if tracker.enabled:
            # Converged means every start froze before the budget ran
            # out; leftover active rows mean the iteration cap bit.
            tracker.finish(converged=not bool(active.any()))
        # Sequential best-of-starts reduction, in start order (matching
        # the historical loop's strict-improvement tie-breaking).
        for s in range(x.shape[0]):
            better = obj[s] > best_obj
            best_x = np.where(better, x[s], best_x)
            best_obj = np.where(better, obj[s], best_obj)
        return best_x

    def _build_starts(self, column: np.ndarray, prior: Density) -> list:
        """Start points: the observation, prior landmarks, offset copies.

        ``n_starts`` is a minimum — a mixture prior contributes one start
        per component mean on top, since each component is a candidate
        posterior mode.
        """
        starts = [column]
        if isinstance(prior, GaussianMixtureDensity):
            for mean in prior.means:
                starts.append(np.full_like(column, mean))
        starts.append(np.full_like(column, prior.mean))
        spread = prior.std
        k = 1
        while len(starts) < self._n_starts:
            offset = spread * (0.5 * k) * (-1 if k % 2 else 1)
            starts.append(column + offset)
            k += 1
        return starts

    @staticmethod
    def _objective(
        x: np.ndarray, column: np.ndarray, prior: Density, noise_var: float
    ) -> np.ndarray:
        """Elementwise log posterior (up to the f_Y(y) constant)."""
        log_prior, _ = _log_prior_and_grad(prior, x)
        return log_prior - 0.5 * (column - x) ** 2 / noise_var
