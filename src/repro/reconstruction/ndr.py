"""NDR — Noise-Distribution-based Reconstruction (Section 4.1).

The naive guess: take the disguised value as the estimate, i.e. guess the
noise was zero.  Its mean square error is exactly the noise variance
(Section 4.1's derivation), making it the floor every smarter attack must
beat and a direct read-out of the nominal privacy level ``sigma^2``.
"""

from __future__ import annotations

import numpy as np

from repro.randomization.base import NoiseModel
from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.registry import check_spec, register_attack

__all__ = ["NoiseDistributionReconstructor"]


@register_attack("ndr")
class NoiseDistributionReconstructor(Reconstructor):
    """Guess ``X_hat = Y`` (equivalently, guess the noise is zero).

    For non-zero-mean noise the announced mean is subtracted, keeping the
    estimator unbiased; for the paper's zero-mean schemes this is the
    identity.
    """

    name = "NDR"

    def to_spec(self) -> dict:
        """JSON-safe registry spec (``{"kind": ..., ...}``) of this attack."""
        return {"kind": "ndr"}

    @classmethod
    def from_spec(cls, spec: dict) -> "NoiseDistributionReconstructor":
        """Rebuild the attack from a :meth:`to_spec` dict."""
        check_spec(spec, "ndr")
        return cls()

    def _reconstruct(
        self, disguised: np.ndarray, noise_model: NoiseModel
    ) -> ReconstructionResult:
        estimate = disguised - noise_model.mean
        expected_mse = float(np.mean(np.diag(noise_model.covariance)))
        return ReconstructionResult(
            estimate=estimate,
            method=self.name,
            details={"expected_mse": expected_mse},
        )
