"""Data-reconstruction attacks — the paper's core contribution.

Given a published table ``Y = X + R`` and the public noise model, each
reconstructor produces an estimate ``X_hat`` of the private table.  The
distance between ``X_hat`` and ``X`` *is* the paper's privacy measure
(Section 3): the closer the reconstruction, the less privacy the
randomization preserved.

Attacks, in the paper's order:

* :class:`NoiseDistributionReconstructor` — NDR, Section 4.1 (guess
  ``y``; MSE equals the noise variance).
* :class:`UnivariateReconstructor` — UDR, Section 4.2 (per-attribute
  posterior mean; the benchmark the correlation-based attacks beat).
* :class:`PCAReconstructor` — PCA-DR, Section 5.
* :class:`BayesEstimateReconstructor` — BE-DR, Section 6 and the
  correlated-noise variant of Theorem 8.1.
* :class:`SpectralFilteringReconstructor` — SF, the Kargupta et al.
  baseline the paper compares against.

Extensions (Section 3's other factors / Section 9 future work):

* :class:`ConditionalDisclosureReconstructor` — partial value disclosure.
* :class:`WienerSmootherReconstructor` — sample (serial) dependency,
  per channel.
* :class:`KalmanSmootherReconstructor` — joint temporal + cross-channel
  state-space smoothing (RTS).
* :class:`MAPGradientReconstructor` — non-Gaussian priors via gradient
  ascent on the log-posterior.
"""

from repro.reconstruction.base import ReconstructionResult, Reconstructor
from repro.reconstruction.kalman import KalmanSmootherReconstructor
from repro.reconstruction.bedr import BayesEstimateReconstructor
from repro.reconstruction.map_gd import MAPGradientReconstructor
from repro.reconstruction.ndr import NoiseDistributionReconstructor
from repro.reconstruction.partial_disclosure import (
    ConditionalDisclosureReconstructor,
)
from repro.reconstruction.pca_dr import PCAReconstructor
from repro.reconstruction.selection import (
    ComponentSelector,
    EnergyFractionSelector,
    FixedCountSelector,
    LargestGapSelector,
)
from repro.reconstruction.spectral_filtering import (
    SpectralFilteringReconstructor,
    marchenko_pastur_bounds,
)
from repro.reconstruction.udr import UnivariateReconstructor
from repro.reconstruction.wiener import WienerSmootherReconstructor

__all__ = [
    "ReconstructionResult",
    "Reconstructor",
    "KalmanSmootherReconstructor",
    "BayesEstimateReconstructor",
    "MAPGradientReconstructor",
    "NoiseDistributionReconstructor",
    "ConditionalDisclosureReconstructor",
    "PCAReconstructor",
    "ComponentSelector",
    "EnergyFractionSelector",
    "FixedCountSelector",
    "LargestGapSelector",
    "SpectralFilteringReconstructor",
    "marchenko_pastur_bounds",
    "UnivariateReconstructor",
    "WienerSmootherReconstructor",
]
