"""Progress hooks: throughput and ETA reporting for engine runs.

The engine calls a :class:`ProgressReporter` at three points — run
start, each completed job (cache hits included), and run end.  The base
class is all no-ops, so reporters override only what they need;
:class:`ThroughputReporter` is the built-in implementation the CLI
attaches when stderr is a terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from repro.engine.jobs import JobResult
from repro.telemetry.convergence import collect_payloads, summarize_payloads

__all__ = ["ProgressReporter", "ThroughputReporter", "TraceReporter"]


class ProgressReporter:
    """No-op base reporter; subclass and override the hooks you need."""

    def on_start(self, total: int) -> None:
        """A run of ``total`` jobs is beginning."""

    def on_result(self, result: JobResult, completed: int, total: int) -> None:
        """One job finished (or was served from the cache)."""

    def on_finish(self, elapsed: float, completed: int, cached: int) -> None:
        """The run ended; ``cached`` of ``completed`` jobs were skipped."""


class ThroughputReporter(ProgressReporter):
    """Writes ``done/total``, jobs/sec, and ETA lines to a stream.

    Parameters
    ----------
    stream:
        Output target (default ``sys.stderr``).
    min_interval:
        Minimum seconds between progress lines, so tight loops of cache
        hits don't flood the terminal.  The first and last jobs always
        report.
    """

    def __init__(
        self, stream: TextIO | None = None, min_interval: float = 0.5
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._started_at = 0.0
        self._last_emit = 0.0
        self._cached = 0

    def on_start(self, total: int) -> None:
        self._started_at = time.perf_counter()
        self._last_emit = 0.0
        self._cached = 0

    def on_result(self, result: JobResult, completed: int, total: int) -> None:
        if result.cached:
            self._cached += 1
        now = time.perf_counter()
        if completed < total and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        elapsed = max(now - self._started_at, 1e-9)
        rate = completed / elapsed
        remaining = total - completed
        eta = remaining / rate if rate > 0 else float("inf")
        self.stream.write(
            f"\r[engine] {completed}/{total} jobs "
            f"({self._cached} cached) | {rate:.1f} jobs/s | "
            f"eta {eta:.0f}s   "
        )
        self.stream.flush()

    def on_finish(self, elapsed: float, completed: int, cached: int) -> None:
        if completed:
            self.stream.write(
                f"\r[engine] {completed} jobs in {elapsed:.1f}s "
                f"({cached} from cache)" + " " * 16 + "\n"
            )
            self.stream.flush()


class TraceReporter(ProgressReporter):
    """Collects the per-job timing rows a run manifest is built from.

    The telemetry sibling of :class:`ThroughputReporter`: instead of
    printing, it records one row per completed job — cache key,
    duration, cache provenance, completion order — for
    :func:`repro.telemetry.manifest.build_manifest` to join onto the
    spec's job table.  When a result carries a worker trace fragment,
    the fragment's ``repro-convergence/v1`` payloads are folded into a
    per-kernel ``convergence`` summary on the row (in-process results
    ship no fragment; their payloads live in the parent trace itself).
    An optional ``inner`` reporter receives every hook unchanged, so
    tracing composes with terminal progress output.

    Parameters
    ----------
    inner:
        Reporter to forward all hooks to (e.g. a
        :class:`ThroughputReporter`), or ``None``.
    """

    def __init__(self, inner: ProgressReporter | None = None) -> None:
        self.inner = inner
        self.rows: list[dict[str, Any]] = []
        self.total = 0
        self.elapsed: float | None = None
        self.cached = 0

    def on_start(self, total: int) -> None:
        self.total = total
        self.rows = []
        self.elapsed = None
        self.cached = 0
        if self.inner is not None:
            self.inner.on_start(total)

    def on_result(self, result: JobResult, completed: int, total: int) -> None:
        row: dict[str, Any] = {
            "key": result.key,
            "duration": float(result.duration),
            "cached": bool(result.cached),
            "order": completed,
        }
        if result.trace is not None:
            payloads = collect_payloads(result.trace.get("span"))
            if payloads:
                row["convergence"] = summarize_payloads(payloads)
        self.rows.append(row)
        if self.inner is not None:
            self.inner.on_result(result, completed, total)

    def on_finish(self, elapsed: float, completed: int, cached: int) -> None:
        self.elapsed = float(elapsed)
        self.cached = cached
        if self.inner is not None:
            self.inner.on_finish(elapsed, completed, cached)
