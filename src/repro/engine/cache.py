"""Content-addressed on-disk result cache.

Completed jobs are stored as small JSON files keyed by the SHA-256 of
their canonical spec (task + params + seed coordinates + cache version,
see :meth:`repro.engine.jobs.JobSpec.key`).  Because the key covers
everything that determines a job's output, a hit can be returned without
re-running the pipeline — repeated sweeps skip all completed jobs, and
any change to the task name, parameters, seeds, or ``CACHE_VERSION``
lands on a different key, which is the invalidation story.

Layout: ``<cache_dir>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directories small for big sweeps).  The default directory is
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.engine.jobs import JobResult, JobSpec
from repro.exceptions import ValidationError
from repro.telemetry import trace
from repro.utils.serialization import sanitize_for_json

__all__ = ["default_cache_dir", "ResultCache"]

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return pathlib.Path(override).expanduser()
    return pathlib.Path.home() / ".cache" / "repro"


class ResultCache:
    """Persistent spec-keyed store of :class:`JobResult` payloads.

    Parameters
    ----------
    directory:
        Cache root; created lazily on first write.  ``None`` uses
        :func:`default_cache_dir`.
    """

    def __init__(self, directory: str | os.PathLike[str] | None = None) -> None:
        self.directory = (
            pathlib.Path(directory).expanduser()
            if directory is not None
            else default_cache_dir()
        )

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of a key's payload."""
        if not isinstance(key, str) or len(key) < 8:
            raise ValidationError(f"malformed cache key: {key!r}")
        return self.directory / key[:2] / f"{key}.json"

    def get(self, spec: JobSpec) -> JobResult | None:
        """Return the completed result for a spec, or ``None`` on a miss.

        Corrupt or truncated entries (e.g. from a killed process) are
        treated as misses and removed so the job simply re-runs.
        """
        key = spec.key()
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            values = payload["values"]
            duration = float(payload["duration"])
            if payload["task"] != spec.task or not isinstance(values, dict):
                raise ValueError("cache entry does not match spec")
        except FileNotFoundError:
            trace.count("cache.miss")
            return None
        except (ValueError, KeyError, TypeError, OSError):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # read-only cache: treat as a plain miss
            trace.count("cache.miss")
            return None
        trace.count("cache.hit")
        return JobResult(key=key, values=values, duration=duration, cached=True)

    def put(self, spec: JobSpec, result: JobResult) -> None:
        """Persist a freshly executed result (atomic write-then-rename)."""
        if result.key != spec.key():
            raise ValidationError(
                "result key does not match spec key; refusing to poison "
                "the cache"
            )
        if result.failed:
            raise ValidationError(
                "refusing to cache a failed result; a hit must be "
                "interchangeable with a successful execution"
            )
        path = self.path_for(result.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The shared nan-safe encoding (sentinel strings, never bare NaN
        # tokens) keeps every cache file strict JSON; task payloads are
        # already sanitized, so this is normally the identity.
        payload = {
            "task": spec.task,
            "params": spec.params,
            "seed_root": spec.seed_root,
            "seed_path": list(spec.seed_path),
            "values": sanitize_for_json(result.values),
            "duration": result.duration,
        }
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, allow_nan=False)
            os.replace(temp_name, path)
            trace.count("cache.write")
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for path in self.directory.glob("??/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r})"
