"""Serializable job descriptions and the worker-side execution function.

A :class:`JobSpec` describes one unit of experiment work — typically a
single (sweep-point, trial) pipeline run — in a form that is picklable
(for process pools), hashable (for the result cache), and reproducible
(for bit-identical reruns).

Determinism contract
--------------------
A job's randomness is fully determined by ``(seed_root, seed_path)``.
The worker derives its generator as::

    numpy.random.default_rng(SeedSequence(seed_root, spawn_key=seed_path))

``SeedSequence`` children are defined by ``spawn_key`` alone, so this is
*exactly* the generator that ``spawn_generators(seed_root, n)[i].spawn(t)[j]``
would have produced for ``seed_path == (i, j)`` — the derivation the
serial runners have always used.  Consequently results are bit-identical
regardless of worker count, chunking, or execution order, and extending
a sweep never reshuffles the streams of existing points.

Tasks are referenced by an importable ``"package.module:function"``
string rather than a callable, so a spec can be executed in a worker
process that has not imported the experiment module yet, and so the
cache key covers the task identity.  A task has the signature
``task(params: dict, rng: numpy.random.Generator | None) -> dict`` and
must return a JSON-serializable mapping; tasks that manage their own
seeding (e.g. the ablations, which embed explicit integer seeds in
``params``) use specs with ``seed_root=None`` and receive ``rng=None``.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import __version__ as _PACKAGE_VERSION
from repro.engine import dataplane
from repro.exceptions import JobExecutionError, ValidationError

__all__ = [
    "CACHE_VERSION",
    "TaskFunction",
    "JobSpec",
    "JobResult",
    "derive_rng",
    "resolve_task",
    "execute_job",
    "failed_result",
]

#: Cache-format version; bumping it (or releasing a new package
#: version — both participate in the cache key) invalidates every
#: previously cached result.  Code changes within one release are NOT
#: detected, so clear the cache (or use ``--no-cache``) when editing
#: pipeline internals locally.
CACHE_VERSION = 1

#: Signature every engine task implements: ``task(params, rng) -> payload``.
#: ``rng`` is ``None`` for self-seeding tasks (``seed_root=None`` specs).
TaskFunction = Callable[
    [dict[str, Any], "np.random.Generator | None"], dict[str, Any]
]


def _canonical_json(payload: Any) -> str:
    """Deterministic JSON used for hashing; rejects non-JSON values."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"value is not JSON-serializable: {exc}"
        ) from exc


@dataclass(frozen=True)
class JobSpec:
    """One reproducible unit of work.

    Attributes
    ----------
    task:
        Importable ``"package.module:function"`` reference.
    params:
        JSON-serializable keyword payload handed to the task verbatim.
        Plain Python scalars/lists/dicts only — convert arrays with
        ``.tolist()`` before building the spec.
    seed_root:
        Root seed of the experiment, or ``None`` when the task seeds
        itself from ``params``.
    seed_path:
        ``SeedSequence`` spawn key relative to the root, e.g.
        ``(point_index, trial_index)``.
    """

    task: str
    params: dict[str, Any] = field(default_factory=dict)
    seed_root: int | None = None
    seed_path: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.task, str) or self.task.count(":") != 1:
            raise ValidationError(
                "task must be a 'package.module:function' string, got "
                f"{self.task!r}"
            )
        if self.seed_root is not None and (
            not isinstance(self.seed_root, (int, np.integer))
            or self.seed_root < 0
        ):
            raise ValidationError(
                f"seed_root must be None or a non-negative int, got "
                f"{self.seed_root!r}"
            )
        path = tuple(int(step) for step in self.seed_path)
        if any(step < 0 for step in path):
            raise ValidationError(f"seed_path must be non-negative, got {path}")
        object.__setattr__(self, "seed_path", path)
        # Fail fast (and in the parent process) on unhashable params.
        _canonical_json(self.params)

    def key(self) -> str:
        """Content-addressed identity: the SHA-256 of the canonical spec.

        Two specs share a key iff they run the same task with the same
        parameters and the same derived random stream, so a key hit in
        the cache is a completed, bit-identical copy of this job.
        """
        blob = _canonical_json(
            {
                "version": CACHE_VERSION,
                "package": _PACKAGE_VERSION,
                "task": self.task,
                "params": self.params,
                "seed_root": self.seed_root,
                "seed_path": list(self.seed_path),
            }
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobResult:
    """Outcome of one executed (or cache-recovered) job.

    Attributes
    ----------
    key:
        The producing spec's :meth:`JobSpec.key`.
    values:
        The task's JSON-serializable return payload.
    duration:
        Wall-clock seconds the task took (the *original* execution time
        for cached results).
    cached:
        True when the result was served from the cache without running.
    trace:
        Serialized telemetry fragment recorded while the job ran in a
        worker process (see :meth:`repro.telemetry.recorder.Recorder.
        export_fragment`); ``None`` when tracing was disabled, for
        cache hits, and for in-process execution (whose spans reach the
        parent recorder directly).  Never cached.
    error:
        ``None`` for a successful job.  For a job that failed under a
        ``fail_fast=False`` run: ``{"type": ..., "message": ...,
        "traceback": ...}`` — the original exception class name, its
        message, and the worker-side formatted traceback string (which
        would otherwise be lost crossing the process boundary).  Failed
        results are never written to the cache.
    """

    key: str
    values: dict[str, Any]
    duration: float
    cached: bool = False
    trace: dict[str, Any] | None = None
    error: dict[str, Any] | None = None

    @property
    def failed(self) -> bool:
        """True when this job raised instead of returning a payload."""
        return self.error is not None


def derive_rng(spec: JobSpec) -> np.random.Generator | None:
    """Build the job's generator from its seed coordinates.

    Returns ``None`` for self-seeding specs (``seed_root is None``).
    See the module docstring for the equivalence with the historical
    ``spawn_generators`` tree.
    """
    if spec.seed_root is None:
        return None
    sequence = np.random.SeedSequence(
        entropy=int(spec.seed_root), spawn_key=spec.seed_path
    )
    return np.random.default_rng(sequence)


def resolve_task(task: str) -> TaskFunction:
    """Import and return the callable a task string names."""
    module_name, _, attribute = task.partition(":")
    try:
        module = importlib.import_module(module_name)
        function = getattr(module, attribute)
    except (ImportError, AttributeError) as exc:
        raise ValidationError(f"cannot resolve task {task!r}: {exc}") from exc
    if not callable(function):
        raise ValidationError(f"task {task!r} is not callable")
    return function


def failed_result(
    spec: JobSpec, exc: BaseException, traceback: str | None = None
) -> JobResult:
    """A failed :class:`JobResult` for ``spec`` (``fail_fast=False`` path).

    The original exception's type, message, and formatted traceback
    string are preserved on :attr:`JobResult.error` — a
    :class:`JobExecutionError` contributes the worker-side traceback it
    carries when no explicit one is given.
    """
    if traceback is None:
        traceback = getattr(exc, "traceback", None)
    return JobResult(
        key=spec.key(),
        values={},
        duration=0.0,
        error={
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback,
        },
    )


def execute_job(spec: JobSpec, *, fail_fast: bool = True) -> JobResult:
    """Run one job to completion (the function process-pool workers call).

    Parameters
    ----------
    spec:
        The job to execute.  Params containing encoded
        :class:`~repro.engine.dataplane.ArrayRef` entries are resolved
        to ndarray views before the task runs.
    fail_fast:
        With the default ``True``, task exceptions re-raise as
        :class:`JobExecutionError` with a flat, picklable message and
        the formatted original traceback, so failures propagate cleanly
        across process boundaries.  With ``False``, the exception is
        captured on a failed :class:`JobResult` instead (see
        :func:`failed_result`) and the caller's sweep keeps draining.
    """
    try:
        function = resolve_task(spec.task)
        rng = derive_rng(spec)
        params = dataplane.resolve_params(spec.params)
    except Exception as exc:
        # Setup failures (unresolvable task, missing data-plane array)
        # are caller bugs, not task failures: they propagate raw so
        # misconfigured sweeps fail loudly.  Drain mode still converts
        # them, keeping the rest of the grid alive.
        if not fail_fast:
            return failed_result(spec, exc, traceback=_traceback.format_exc())
        raise
    # The clock reads below measure JobResult.duration only; the value
    # never reaches the payload or JobSpec.key().
    start = time.perf_counter()  # repro: ignore[wall-clock] duration metric
    try:
        values = function(params, rng)
    except Exception as exc:
        original = _traceback.format_exc()
        if not fail_fast:
            return failed_result(spec, exc, traceback=original)
        raise JobExecutionError(
            f"job {spec.key()[:12]} ({spec.task}, seed_path="
            f"{spec.seed_path}) failed: {type(exc).__name__}: {exc}",
            traceback=original,
        ) from exc
    duration = time.perf_counter() - start  # repro: ignore[wall-clock] duration metric
    try:
        if not isinstance(values, dict):
            raise JobExecutionError(
                f"task {spec.task} returned {type(values).__name__}, "
                "expected a JSON-serializable dict"
            )
        try:
            _canonical_json(values)
        except ValidationError as exc:
            raise JobExecutionError(
                f"task {spec.task} returned a non-JSON-serializable "
                f"payload: {exc}"
            ) from exc
    except JobExecutionError as exc:
        if not fail_fast:
            return failed_result(spec, exc, traceback=_traceback.format_exc())
        raise
    return JobResult(key=spec.key(), values=values, duration=duration)
