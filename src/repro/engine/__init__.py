"""Parallel experiment engine: jobs, executors, result cache, progress.

This package is the execution layer every figure runner and ablation
routes through.  Callers describe their sweep as a list of serializable
:class:`~repro.engine.jobs.JobSpec` objects and hand it to an
:class:`Engine`, which consults the optional on-disk
:class:`~repro.engine.cache.ResultCache`, dispatches the misses to a
:class:`~repro.engine.executor.SerialExecutor` or process-pool
:class:`~repro.engine.executor.ParallelExecutor`, and returns
:class:`~repro.engine.jobs.JobResult` objects in spec order.

Determinism contract
--------------------
Every job's randomness derives solely from its ``(seed_root,
seed_path)`` seed coordinates — ``default_rng(SeedSequence(seed_root,
spawn_key=seed_path))`` — which reproduces the historical
``spawn_generators`` tree exactly.  Therefore the executor backend,
worker count, chunking, and execution order never change a result bit,
and a cached payload is interchangeable with a fresh execution.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.engine.backends import (
    BACKENDS,
    backend_names,
    create_backend,
    register_backend,
)
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.dataplane import ArrayRef, DataPlane
from repro.engine.executor import (
    Executor,
    ExecutorBackend,
    ParallelExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    default_worker_count,
)
from repro.engine.jobs import (
    CACHE_VERSION,
    JobResult,
    JobSpec,
    derive_rng,
    execute_job,
    failed_result,
    resolve_task,
)
from repro.engine.progress import (
    ProgressReporter,
    ThroughputReporter,
    TraceReporter,
)
from repro.exceptions import DataPlaneError, JobExecutionError
from repro.telemetry import trace

__all__ = [
    "ArrayRef",
    "BACKENDS",
    "CACHE_VERSION",
    "DataPlane",
    "DataPlaneError",
    "Engine",
    "Executor",
    "ExecutorBackend",
    "JobExecutionError",
    "JobResult",
    "JobSpec",
    "ParallelExecutor",
    "ProgressReporter",
    "ResultCache",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "ThroughputReporter",
    "TraceReporter",
    "backend_names",
    "create_backend",
    "default_cache_dir",
    "default_worker_count",
    "derive_rng",
    "execute_job",
    "failed_result",
    "register_backend",
    "resolve_task",
]


class Engine:
    """Facade tying an executor, an optional cache, and progress hooks.

    Parameters
    ----------
    executor:
        Backend for cache misses; default :class:`SerialExecutor`, so a
        bare ``Engine()`` behaves exactly like the historical in-process
        loops.
    cache:
        Optional :class:`ResultCache`; completed jobs found there are
        returned without executing.
    progress:
        Optional :class:`ProgressReporter` receiving start / per-job /
        finish events (cache hits included).
    fail_fast:
        ``True`` (default): the first job failure raises out of
        :meth:`run`.  ``False``: failures surface as failed
        :class:`JobResult` objects (``result.failed``, original
        traceback on ``result.error``) and the whole grid drains;
        failed results are never cached.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        progress: ProgressReporter | None = None,
        fail_fast: bool = True,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.progress = progress if progress is not None else ProgressReporter()
        self.fail_fast = fail_fast

    def run(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        """Execute (or recover) every spec; results come back in spec order."""
        specs = list(specs)
        total = len(specs)
        started = time.perf_counter()
        self.progress.on_start(total)

        results: list[JobResult | None] = [None] * total
        pending: list[tuple[int, JobSpec]] = []
        completed = 0
        cached = 0
        with trace.span(
            "engine.run",
            jobs=total,
            executor=type(self.executor).__name__,
            workers=getattr(self.executor, "workers", 1),
        ) as run_span:
            # Heartbeat gauges: the live progress surface the metrics
            # exporter derives rate/ETA from.  Last-value-wins, so a
            # mid-run snapshot always sees a consistent triple.
            trace.gauge("engine.jobs.total", float(total))
            trace.gauge("engine.jobs.completed", 0.0)
            trace.gauge("engine.jobs.cached", 0.0)
            for index, spec in enumerate(specs):
                hit = self.cache.get(spec) if self.cache is not None else None
                if hit is not None:
                    results[index] = hit
                    completed += 1
                    cached += 1
                    trace.gauge("engine.jobs.completed", float(completed))
                    trace.gauge("engine.jobs.cached", float(cached))
                    if trace.enabled():
                        # A zero-length span keeps per-job provenance
                        # uniform: cache hits appear in the trace with
                        # their original compute cost as an attribute.
                        with trace.span(
                            "engine.job",
                            task=spec.task,
                            key=hit.key[:16],
                            seed_path=list(spec.seed_path),
                            cached=True,
                            original_duration=hit.duration,
                        ):
                            pass
                    self.progress.on_result(hit, completed, total)
                else:
                    pending.append((index, spec))

            if pending:
                pending_specs = [spec for _, spec in pending]
                spec_by_key = {spec.key(): spec for spec in pending_specs}

                def on_done(result: JobResult) -> None:
                    nonlocal completed
                    completed += 1
                    trace.gauge("engine.jobs.completed", float(completed))
                    # Persist immediately so a later job failure (or an
                    # interrupt) does not discard work already finished.
                    # Failed results (fail_fast=False drains) carry no
                    # payload and must never be served from the cache.
                    if self.cache is not None and not result.failed:
                        self.cache.put(spec_by_key[result.key], result)
                    # Spans recorded inside a worker process ride back
                    # on the result; graft them under this run's span.
                    trace.adopt(result.trace)
                    self.progress.on_result(result, completed, total)

                fresh = self.executor.run(
                    pending_specs,
                    callback=on_done,
                    fail_fast=self.fail_fast,
                )
                for (index, _), result in zip(pending, fresh):
                    results[index] = result
            run_span.set(cached=cached)

        self.progress.on_finish(
            time.perf_counter() - started, completed, cached
        )
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (
            f"Engine(executor={self.executor!r}, cache={self.cache!r})"
        )
