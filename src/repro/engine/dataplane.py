"""Shared-memory data plane: publish large arrays once, hand out views.

The process-pool executor serializes every job's parameters into the
worker — fine when parameters are a handful of scalars, fatal when a
sweep embeds a multi-hundred-megabyte dataset in every job.  The data
plane removes bulk data from the job payload entirely:

1. The parent **publishes** an ndarray once per run
   (:meth:`DataPlane.publish`) and gets back a small, JSON-safe
   :class:`ArrayRef` keyed by the array's content hash.
2. Job params carry the ref (``ref.to_param()``) — a few hundred bytes
   regardless of array size — optionally narrowed to a row shard
   (:meth:`ArrayRef.shard`).
3. At execution time the ref is resolved back to an ndarray view:
   in-process from the active plane (serial backend), from a worker's
   per-chunk pickle payload (process-pool backend), or as a zero-copy
   view of a ``multiprocessing.shared_memory`` segment
   (shared-memory backend).

Identity is the **content hash**, never the transport: two specs that
reference the same data produce the same cache key whichever backend
executes them, and a segment name never leaks into
:meth:`repro.engine.jobs.JobSpec.key`.

Cleanup contract
----------------
Created segments are closed *and* unlinked by the owning plane on
success, failure, and interrupt: :meth:`DataPlane.export_segments` is
always paired with :meth:`DataPlane.release_segments` in a
``try``/``finally`` (the shared-memory executor does this), the plane
itself is a context manager, and an ``atexit`` hook sweeps anything a
crashed caller left behind.  Worker-side attachments are closed — never
unlinked — when the worker exits.  The ``shm-lifecycle`` check rule
(``repro check``) enforces the same discipline statically.

Telemetry: the plane counts ``dataplane.segment.created`` /
``attached`` / ``unlinked`` and gauges ``dataplane.bytes_resident``
(bytes currently backed by segments this process created).
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Iterable, Iterator

import numpy as np

from repro.exceptions import DataPlaneError, ValidationError
from repro.telemetry import trace

__all__ = [
    "REF_KEY",
    "ArrayRef",
    "DataPlane",
    "active_plane",
    "activate",
    "resolve_params",
    "params_ref_hashes",
    "shard_bounds",
]

#: Marker key identifying an encoded :class:`ArrayRef` inside job params.
REF_KEY = "__array_ref__"

#: Prefix of every shared-memory segment the data plane creates; the
#: fault-injection suite scans ``/dev/shm`` for leaked names with it.
SEGMENT_PREFIX = "repro-dp-"


@dataclass(frozen=True)
class ArrayRef:
    """Content-addressed reference to a published array (or a row shard).

    Attributes
    ----------
    hash:
        SHA-256 over the array's dtype, shape, and raw bytes — the
        *only* identity that reaches job specs and cache keys.
    shape:
        Shape of the full published array.
    dtype:
        Dtype string (``numpy.dtype.str``, endianness included).
    start / stop:
        Optional row-shard bounds on axis 0; ``None`` means the whole
        array.  Resolution slices the published array, which is a
        zero-copy view for the in-process and shared-memory transports.
    """

    hash: str
    shape: tuple[int, ...]
    dtype: str
    start: int | None = None
    stop: int | None = None

    def __post_init__(self) -> None:
        if self.start is not None or self.stop is not None:
            n_rows = self.shape[0] if self.shape else 0
            start, stop = shard_bounds(
                n_rows,
                0 if self.start is None else self.start,
                n_rows if self.stop is None else self.stop,
            )
            object.__setattr__(self, "start", start)
            object.__setattr__(self, "stop", stop)

    def shard(self, start: int, stop: int) -> "ArrayRef":
        """A ref to rows ``[start, stop)`` of the published array."""
        n_rows = self.shape[0] if self.shape else 0
        start, stop = shard_bounds(n_rows, start, stop)
        return ArrayRef(
            hash=self.hash,
            shape=self.shape,
            dtype=self.dtype,
            start=start,
            stop=stop,
        )

    @property
    def nbytes(self) -> int:
        """Bytes of the *full* published array this ref points into."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize

    def to_param(self) -> dict[str, Any]:
        """The JSON-safe encoding embedded in job params."""
        return {
            REF_KEY: {
                "hash": self.hash,
                "shape": list(self.shape),
                "dtype": self.dtype,
                "start": self.start,
                "stop": self.stop,
            }
        }

    @classmethod
    def from_param(cls, payload: dict[str, Any]) -> "ArrayRef":
        """Decode :meth:`to_param` output back into a ref."""
        try:
            body = payload[REF_KEY]
            return cls(
                hash=str(body["hash"]),
                shape=tuple(int(dim) for dim in body["shape"]),
                dtype=str(body["dtype"]),
                start=body.get("start"),
                stop=body.get("stop"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed array-ref param: {payload!r} ({exc})"
            ) from exc


def shard_bounds(n_rows: int, start: int, stop: int) -> tuple[int, int]:
    """Validated ``[start, stop)`` row bounds for an ``n_rows`` array."""
    start = int(start)
    stop = int(stop)
    if not 0 <= start <= stop <= n_rows:
        raise ValidationError(
            f"shard [{start}, {stop}) out of bounds for {n_rows} rows"
        )
    return start, stop


def _content_hash(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(array.shape).encode("ascii"))
    digest.update(array.tobytes() if not array.flags.c_contiguous else array.data)
    return digest.hexdigest()


def _read_only(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


class DataPlane:
    """Per-run registry of published arrays and their shm segments.

    The plane lives in the process that owns the run (the one building
    job specs).  :meth:`publish` registers arrays for in-process
    resolution; :meth:`export_segments` materializes them as
    shared-memory segments for the shared-memory executor, and
    :meth:`release_segments` / :meth:`close` tear them down.  All
    methods are thread-safe.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()
        self._closed = False
        _LIVE_PLANES.add(self)

    # ------------------------------------------------------------------
    # parent-side publication and resolution

    def publish(self, array: Any) -> ArrayRef:
        """Register an array and return its content-addressed ref.

        The array is copied into a C-contiguous read-only snapshot, so
        later caller-side mutation cannot desynchronize transports.
        Publishing identical content twice returns the same ref without
        storing a second copy.
        """
        if self._closed:
            raise DataPlaneError("cannot publish on a closed DataPlane")
        if np.ndim(array) == 0:
            raise ValidationError(
                "cannot publish a 0-d array; pass scalars via params"
            )
        snapshot = np.ascontiguousarray(array)
        if snapshot is array or snapshot.base is not None:
            snapshot = snapshot.copy()
        key = _content_hash(snapshot)
        with self._lock:
            if key not in self._arrays:
                self._arrays[key] = _read_only(snapshot)
            stored = self._arrays[key]
        return ArrayRef(
            hash=key, shape=stored.shape, dtype=stored.dtype.str
        )

    def get(self, ref: ArrayRef) -> np.ndarray:
        """The (possibly sharded) read-only view a ref denotes."""
        with self._lock:
            array = self._arrays.get(ref.hash)
        if array is None:
            raise DataPlaneError(
                f"array {ref.hash[:12]} is not published on this plane"
            )
        return _slice_ref(array, ref)

    def array_for_hash(self, key: str) -> np.ndarray:
        """The full published array for a content hash."""
        with self._lock:
            array = self._arrays.get(key)
        if array is None:
            raise DataPlaneError(
                f"array {key[:12]} is not published on this plane"
            )
        return array

    def hashes(self) -> list[str]:
        """Content hashes of every published array."""
        with self._lock:
            return sorted(self._arrays)

    @property
    def bytes_resident(self) -> int:
        """Bytes currently backed by segments this plane created."""
        with self._lock:
            return sum(
                self._arrays[key].nbytes
                for key in self._segments
                if key in self._arrays
            )

    # ------------------------------------------------------------------
    # shared-memory export (parent side)

    def export_segments(
        self, hashes: Iterable[str] | None = None
    ) -> dict[str, tuple[str, tuple[int, ...], str]]:
        """Create one shm segment per published array and copy it in.

        Parameters
        ----------
        hashes:
            Content hashes to export (default: everything published).

        Returns
        -------
        dict
            ``{hash: (segment_name, shape, dtype_str)}`` — the mapping
            shipped to pool workers, which attach lazily via
            :func:`_init_worker_segments`.

        Idempotent per hash; segments created here persist until
        :meth:`release_segments` (callers pair the two in
        ``try``/``finally``).  On a partial failure every segment this
        call created is released before the error propagates.
        """
        if self._closed:
            raise DataPlaneError("cannot export from a closed DataPlane")
        wanted = list(hashes) if hashes is not None else self.hashes()
        exported: dict[str, tuple[str, tuple[int, ...], str]] = {}
        created_now: list[str] = []
        try:
            for key in wanted:
                array = self.array_for_hash(key)
                with self._lock:
                    segment = self._segments.get(key)
                if segment is None:
                    segment = _create_segment(array)
                    with self._lock:
                        self._segments[key] = segment
                    created_now.append(key)
                    trace.count("dataplane.segment.created")
                    trace.gauge(
                        "dataplane.bytes_resident", float(self.bytes_resident)
                    )
                exported[key] = (segment.name, array.shape, array.dtype.str)
        except BaseException:
            for key in created_now:
                self._release_one(key)
            raise
        return exported

    def _release_one(self, key: str) -> None:
        with self._lock:
            segment = self._segments.pop(key, None)
        if segment is None:
            return
        with contextlib.suppress(OSError):
            segment.close()
        with contextlib.suppress(OSError, FileNotFoundError):
            segment.unlink()
        trace.count("dataplane.segment.unlinked")

    def release_segments(self, hashes: Iterable[str] | None = None) -> None:
        """Close and unlink segments this plane created (idempotent).

        Parameters
        ----------
        hashes:
            Content hashes to release (default: every live segment) —
            an executor run releases exactly the segments it exported.
        """
        wanted = list(hashes) if hashes is not None else list(self._segments)
        for key in wanted:
            self._release_one(key)
        trace.gauge("dataplane.bytes_resident", float(self.bytes_resident))

    def close(self) -> None:
        """Release all segments and drop published arrays (idempotent)."""
        self.release_segments()
        with self._lock:
            self._arrays.clear()
            self._closed = True
        _LIVE_PLANES.discard(self)

    def __enter__(self) -> "DataPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DataPlane(arrays={len(self._arrays)}, "
            f"segments={len(self._segments)})"
        )


def _create_segment(array: np.ndarray) -> shared_memory.SharedMemory:
    """A new uniquely named segment holding a copy of ``array``."""
    last_error: Exception | None = None
    for _attempt in range(8):
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{os.urandom(4).hex()}"
        segment: shared_memory.SharedMemory | None = None
        try:
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, array.nbytes)
                )
            except FileExistsError as exc:  # rare name collision: retry
                last_error = exc
                continue
            except OSError as exc:
                raise DataPlaneError(
                    f"cannot create shared-memory segment ({array.nbytes} "
                    f"bytes): {exc}"
                ) from exc
            target: np.ndarray = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            target[...] = array
            return segment
        except BaseException:
            # Creation succeeded but the copy failed: never leak the
            # segment — close and unlink before re-raising.
            if segment is not None:
                with contextlib.suppress(OSError):
                    segment.close()
                with contextlib.suppress(OSError, FileNotFoundError):
                    segment.unlink()
            raise
    raise DataPlaneError(
        f"cannot allocate a unique shared-memory segment name: {last_error}"
    )


#: Planes that have not been closed yet; the atexit sweep releases their
#: segments if the owner never did (e.g. an uncaught exception skipped a
#: caller-side finally).  Weak references, so an abandoned plane can
#: still be garbage collected.
_LIVE_PLANES: "weakref.WeakSet[DataPlane]" = weakref.WeakSet()


def _sweep_live_planes() -> None:
    for plane in list(_LIVE_PLANES):
        plane.release_segments()


atexit.register(_sweep_live_planes)


# ----------------------------------------------------------------------
# active plane (in-process resolution)

_ACTIVE: DataPlane | None = None


def active_plane() -> DataPlane | None:
    """The plane activated in this process, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def activate(plane: DataPlane) -> Iterator[DataPlane]:
    """Make ``plane`` the process's resolution source for a ``with`` block.

    The previous active plane is restored on exit, so activations nest.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plane
    try:
        yield plane
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# worker-side transports

#: Arrays shipped to this worker by pickle (process-pool transport);
#: loaded per dispatch chunk and cleared afterwards.
_WORKER_ARRAYS: dict[str, np.ndarray] = {}

#: Lazily attached shm segments: hash -> (SharedMemory, full-array view).
_WORKER_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Attachment directory shipped by the pool initializer:
#: hash -> (segment_name, shape, dtype_str).
_WORKER_SEGMENT_INFO: dict[str, tuple[str, tuple[int, ...], str]] = {}


def _init_worker_segments(
    info: dict[str, tuple[str, tuple[int, ...], str]]
) -> None:
    """Pool initializer for the shared-memory transport.

    Only the *directory* is stored; each segment is attached on first
    resolve so workers that never touch an array never map it.  An
    ``atexit`` hook closes this worker's attachments (the parent owns
    unlinking).
    """
    _WORKER_SEGMENT_INFO.clear()
    _WORKER_SEGMENT_INFO.update(info)
    _close_worker_attachments()
    atexit.register(_close_worker_attachments)


def _close_worker_attachments() -> None:
    for key in list(_WORKER_ATTACHED):
        segment, _ = _WORKER_ATTACHED.pop(key)
        with contextlib.suppress(OSError):
            segment.close()


def _attach_segment(key: str) -> np.ndarray:
    """Attach this worker to a published segment (memoized, zero-copy)."""
    cached = _WORKER_ATTACHED.get(key)
    if cached is not None:
        return cached[1]
    name, shape, dtype = _WORKER_SEGMENT_INFO[key]
    try:
        segment = _attach_untracked(name)
    except (OSError, FileNotFoundError) as exc:
        raise DataPlaneError(
            f"cannot attach shared-memory segment {name!r} for array "
            f"{key[:12]}: {exc}"
        ) from exc
    try:
        view: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        array = _read_only(view)
        _WORKER_ATTACHED[key] = (segment, array)
    except BaseException:
        with contextlib.suppress(OSError):
            segment.close()
        raise
    trace.count("dataplane.segment.attached")
    return array


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker custody.

    ``SharedMemory.__init__`` registers every open — attach included —
    with ``multiprocessing.resource_tracker``, which unlinks all
    registered names at shutdown.  For a segment this process merely
    attached to, that would destroy data the parent (and sibling
    workers) still use; and under the ``fork`` start method the tracker
    is *shared* with the parent, so an unregister-after-attach would
    strip the creator's own registration.  Registration is therefore
    suppressed for the duration of the attach call (Python 3.13 exposes
    this directly as ``track=False``).  This worker must close but
    never unlink the attachment (:func:`_close_worker_attachments`);
    the creating plane owns the unlink.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - not hit here
            original(name, rtype)

    resource_tracker.register = _register
    try:
        # Attach-only open: no create, no custody, no unlink duty.
        return shared_memory.SharedMemory(name=name)  # repro: ignore[shm-lifecycle] attach-only open; close/unlink are owned by _close_worker_attachments and the parent plane
    finally:
        resource_tracker.register = original


def _load_worker_arrays(arrays: dict[str, np.ndarray]) -> None:
    """Install a chunk's pickled arrays for resolution (pool transport)."""
    _WORKER_ARRAYS.clear()
    for key, array in arrays.items():
        _WORKER_ARRAYS[key] = _read_only(np.ascontiguousarray(array))


def _clear_worker_arrays() -> None:
    _WORKER_ARRAYS.clear()


# ----------------------------------------------------------------------
# resolution

def _slice_ref(array: np.ndarray, ref: ArrayRef) -> np.ndarray:
    if tuple(array.shape) != ref.shape or array.dtype.str != ref.dtype:
        raise DataPlaneError(
            f"published array {ref.hash[:12]} has shape "
            f"{tuple(array.shape)}/{array.dtype.str}, ref expects "
            f"{ref.shape}/{ref.dtype}"
        )
    if ref.start is None:
        return array
    return array[ref.start:ref.stop]


def resolve_ref(ref: ArrayRef) -> np.ndarray:
    """Materialize a ref in this process, whatever the transport.

    Resolution order: shm attachment directory (shared-memory workers),
    chunk pickle payload (process-pool workers), then the active plane
    (in-process execution).
    """
    if ref.hash in _WORKER_SEGMENT_INFO:
        return _slice_ref(_attach_segment(ref.hash), ref)
    if ref.hash in _WORKER_ARRAYS:
        return _slice_ref(_WORKER_ARRAYS[ref.hash], ref)
    plane = _ACTIVE
    if plane is not None:
        return plane.get(ref)
    raise DataPlaneError(
        f"array {ref.hash[:12]} is not available in this process: no "
        "segment directory, no chunk payload, and no active DataPlane"
    )


def _is_ref_param(value: Any) -> bool:
    return (
        isinstance(value, dict) and len(value) == 1 and REF_KEY in value
    )


def _walk_resolve(value: Any) -> Any:
    if _is_ref_param(value):
        return resolve_ref(ArrayRef.from_param(value))
    if isinstance(value, dict):
        if any(
            _is_ref_param(item) or isinstance(item, (dict, list))
            for item in value.values()
        ):
            return {key: _walk_resolve(item) for key, item in value.items()}
        return value
    if isinstance(value, list):
        if any(
            _is_ref_param(item) or isinstance(item, (dict, list))
            for item in value
        ):
            return [_walk_resolve(item) for item in value]
        return value
    return value


def resolve_params(params: dict[str, Any]) -> dict[str, Any]:
    """Params with every embedded :class:`ArrayRef` turned into a view.

    Containers on the path to a ref are shallow-copied; params without
    any refs are returned as-is, untouched and uncopied.
    """
    if not params_ref_hashes(params):
        return params
    resolved = _walk_resolve(params)
    return resolved if isinstance(resolved, dict) else params


def _walk_hashes(value: Any, found: set[str]) -> None:
    if _is_ref_param(value):
        found.add(str(value[REF_KEY]["hash"]))
        return
    if isinstance(value, dict):
        for item in value.values():
            _walk_hashes(item, found)
    elif isinstance(value, list):
        for item in value:
            _walk_hashes(item, found)


def params_ref_hashes(params: dict[str, Any]) -> set[str]:
    """Content hashes of every ref embedded in a params dict."""
    found: set[str] = set()
    _walk_hashes(params, found)
    return found
