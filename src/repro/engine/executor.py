"""Executors: serial and process-pool backends behind one interface.

An executor turns a list of :class:`~repro.engine.jobs.JobSpec` into the
matching list of :class:`~repro.engine.jobs.JobResult`, order-preserving.
Because every job derives its randomness from ``(seed_root, seed_path)``
alone (see :mod:`repro.engine.jobs`), the backend choice changes only
wall-clock time — ``ParallelExecutor(workers=N)`` is bit-identical to
``SerialExecutor`` for any ``N``.
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from dataclasses import replace
from typing import Callable, Sequence

from repro.engine.jobs import JobResult, JobSpec, execute_job
from repro.exceptions import ValidationError
from repro.telemetry import trace
from repro.telemetry.recorder import Recorder

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "default_worker_count"]


def _traced_execute(spec: JobSpec, submitted_wall: float) -> JobResult:
    """Run one job under a fresh worker-side recorder.

    The job's ``engine.job`` span records the queue-wait vs. compute
    split (wall-clock from dispatch to start, comparable across
    processes, vs. the task's own monotonic duration), the worker pid,
    and seed coordinates; the whole fragment rides back to the parent
    on the result for adoption into the parent trace.
    """
    recorder = Recorder()
    with trace.recording(recorder):
        queue_wait = max(0.0, time.time() - submitted_wall)
        with trace.span(
            "engine.job",
            task=spec.task,
            key=spec.key()[:16],
            seed_path=list(spec.seed_path),
            worker=os.getpid(),
            cached=False,
            queue_wait=queue_wait,
        ) as span:
            result = execute_job(spec)
            span.set(compute=result.duration)
    return replace(result, trace=recorder.export_fragment())


def _execute_chunk(
    specs: list[JobSpec],
    traced: bool = False,
    submitted_wall: float = 0.0,
) -> list[JobResult]:
    """Worker-side batch loop (module-level so the pool can pickle it)."""
    if not traced:
        return [execute_job(spec) for spec in specs]
    return [_traced_execute(spec, submitted_wall) for spec in specs]


def default_worker_count() -> int:
    """Autodetected worker count: the CPUs this process may use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux platforms
        return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Executes job specs, preserving input order in the results.

    Parameters of :meth:`run`:

    ``specs``
        The jobs to execute.
    ``callback``
        Optional ``callback(result)`` invoked once per finished job —
        the progress-reporting and cache-write hook.  The parallel
        backend fires it as dispatch chunks complete (not in spec
        order), so finished work is observed — and cacheable — even
        while other jobs are still running or about to fail.

    Failure propagation: the first failing job raises
    :class:`~repro.exceptions.JobExecutionError` out of :meth:`run`
    (remaining jobs may or may not have run).
    """

    @abc.abstractmethod
    def run(
        self,
        specs: Sequence[JobSpec],
        callback: Callable[[JobResult], None] | None = None,
    ) -> list[JobResult]:
        """Execute every spec and return results in spec order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process, one-at-a-time execution — the reference backend."""

    def run(
        self,
        specs: Sequence[JobSpec],
        callback: Callable[[JobResult], None] | None = None,
    ) -> list[JobResult]:
        results: list[JobResult] = []
        traced = trace.enabled()
        for spec in specs:
            if traced:
                # In-process: the span lands directly on the active
                # recorder (no fragment shipping), and there is no
                # dispatch queue to wait in.
                with trace.span(
                    "engine.job",
                    task=spec.task,
                    key=spec.key()[:16],
                    seed_path=list(spec.seed_path),
                    worker=os.getpid(),
                    cached=False,
                    queue_wait=0.0,
                ) as span:
                    result = execute_job(spec)
                    span.set(compute=result.duration)
            else:
                result = execute_job(spec)
            if callback is not None:
                callback(result)
            results.append(result)
        return results


class ParallelExecutor(Executor):
    """``ProcessPoolExecutor``-backed execution with chunked dispatch.

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``0`` autodetects via
        :func:`default_worker_count`.
    chunk_size:
        Specs per dispatch batch; ``None`` picks ``ceil(n / (4 *
        workers))`` capped at 16 — enough batching to amortize IPC,
        small enough to keep the pool busy near the end of a sweep.

    On failure, every chunk that completed is still delivered to the
    callback before the first error re-raises; only the failing chunk's
    own jobs are lost.
    """

    def __init__(
        self, workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        if workers is None or workers == 0:
            workers = default_worker_count()
        if not isinstance(workers, int) or workers < 1:
            raise ValidationError(
                f"workers must be a positive int (or None/0 for auto), "
                f"got {workers!r}"
            )
        if chunk_size is not None and (
            not isinstance(chunk_size, int) or chunk_size < 1
        ):
            raise ValidationError(
                f"chunk_size must be a positive int or None, got {chunk_size!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size

    def _chunk_for(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, min(16, -(-n_jobs // (4 * self.workers))))

    def run(
        self,
        specs: Sequence[JobSpec],
        callback: Callable[[JobResult], None] | None = None,
    ) -> list[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        if len(specs) == 1 or self.workers == 1:
            # Not worth a pool; the serial path is bit-identical anyway.
            return SerialExecutor().run(specs, callback)
        chunk = self._chunk_for(len(specs))
        chunks = [specs[i:i + chunk] for i in range(0, len(specs), chunk)]
        chunk_results: list[list[JobResult] | None] = [None] * len(chunks)
        first_error: Exception | None = None
        traced = trace.enabled()
        with _ProcessPool(max_workers=min(self.workers, len(chunks))) as pool:
            futures = {
                pool.submit(_execute_chunk, batch, traced, time.time()): index
                for index, batch in enumerate(chunks)
            }
            # Harvest in completion order so every finished chunk reaches
            # the callback (and thus the cache) even when another chunk
            # fails; the failure is re-raised only after the drain.
            for future in as_completed(futures):
                try:
                    batch_results = future.result()
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                    continue
                chunk_results[futures[future]] = batch_results
                if callback is not None:
                    for result in batch_results:
                        callback(result)
        if first_error is not None:
            raise first_error
        return [
            result for batch in chunk_results for result in batch  # type: ignore[union-attr]
        ]

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"
