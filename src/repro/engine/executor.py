"""Executor backends: serial, process-pool, and shared-memory.

An executor turns a list of :class:`~repro.engine.jobs.JobSpec` into the
matching list of :class:`~repro.engine.jobs.JobResult`, order-preserving.
Because every job derives its randomness from ``(seed_root, seed_path)``
alone (see :mod:`repro.engine.jobs`), the backend choice changes only
wall-clock time and memory traffic — every backend is bit-identical to
:class:`SerialExecutor` for any worker count.

The three built-in backends differ in how bulk data published on the
:mod:`~repro.engine.dataplane` reaches the task:

* :class:`SerialExecutor` — in-process; refs resolve against the active
  plane directly (zero copy).
* :class:`ParallelExecutor` — process pool; each dispatch chunk carries
  a pickled copy of every array its jobs reference.  Simple, but the
  per-chunk copies are exactly the cost the data plane exists to avoid.
* :class:`SharedMemoryExecutor` — process pool over
  ``multiprocessing.shared_memory``: arrays are exported once as
  segments, workers attach lazily and read zero-copy shard views.
  Segments are closed and unlinked on success, failure, and interrupt.

Failure handling is uniform across backends: with ``fail_fast=True``
(default) the first failing job raises
:class:`~repro.exceptions.JobExecutionError` out of :meth:`Executor.run`
after finished work has been delivered to the callback; with
``fail_fast=False`` every failure is captured as a failed
:class:`~repro.engine.jobs.JobResult` (original traceback preserved on
``result.error``) and the grid drains to completion — even when a
worker process dies mid-job, in which case the lost chunk's jobs come
back as failed results.
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from dataclasses import replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine import dataplane
from repro.engine.jobs import JobResult, JobSpec, execute_job, failed_result
from repro.exceptions import ValidationError
from repro.telemetry import trace
from repro.telemetry.recorder import Recorder

__all__ = [
    "Executor",
    "ExecutorBackend",
    "SerialExecutor",
    "ParallelExecutor",
    "SharedMemoryExecutor",
    "default_worker_count",
]


def _traced_execute(
    spec: JobSpec, submitted_wall: float, fail_fast: bool
) -> JobResult:
    """Run one job under a fresh worker-side recorder.

    The job's ``engine.job`` span records the queue-wait vs. compute
    split (wall-clock from dispatch to start, comparable across
    processes, vs. the task's own monotonic duration), the worker pid,
    and seed coordinates; the whole fragment rides back to the parent
    on the result for adoption into the parent trace.
    """
    recorder = Recorder()
    with trace.recording(recorder):
        queue_wait = max(0.0, time.time() - submitted_wall)
        with trace.span(
            "engine.job",
            task=spec.task,
            key=spec.key()[:16],
            seed_path=list(spec.seed_path),
            worker=os.getpid(),
            cached=False,
            queue_wait=queue_wait,
        ) as span:
            result = execute_job(spec, fail_fast=fail_fast)
            span.set(compute=result.duration)
            if result.failed and result.error is not None:
                span.set(error=result.error["type"])
    return replace(result, trace=recorder.export_fragment())


def _execute_chunk(
    specs: list[JobSpec],
    arrays: dict[str, np.ndarray] | None = None,
    traced: bool = False,
    submitted_wall: float = 0.0,
    fail_fast: bool = True,
) -> list[JobResult]:
    """Worker-side batch loop (module-level so the pool can pickle it).

    ``arrays`` is the pickle transport's payload: the published arrays
    this chunk's jobs reference, installed for ref resolution while the
    chunk runs and dropped afterwards so a worker never holds data its
    next chunk does not need.
    """
    if arrays is not None:
        dataplane._load_worker_arrays(arrays)
    try:
        if not traced:
            return [execute_job(spec, fail_fast=fail_fast) for spec in specs]
        return [
            _traced_execute(spec, submitted_wall, fail_fast) for spec in specs
        ]
    finally:
        if arrays is not None:
            dataplane._clear_worker_arrays()


def default_worker_count() -> int:
    """Autodetected worker count: the CPUs this process may use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux platforms
        return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Executes job specs, preserving input order in the results.

    This is the backend seam: every backend — in-process, process-pool,
    shared-memory, and any future distributed executor — implements
    exactly this interface and the engine, cache, and
    :mod:`repro.api` never look behind it.  Instances are selected by
    name through :mod:`repro.engine.backends`.

    Parameters of :meth:`run`:

    ``specs``
        The jobs to execute.
    ``callback``
        Optional ``callback(result)`` invoked once per finished job —
        the progress-reporting and cache-write hook.  The parallel
        backends fire it as dispatch chunks complete (not in spec
        order), so finished work is observed — and cacheable — even
        while other jobs are still running or about to fail.
    ``fail_fast``
        ``True`` (default): the first failing job raises
        :class:`~repro.exceptions.JobExecutionError` out of :meth:`run`
        (remaining jobs may or may not have run).  ``False``: failures
        come back as failed :class:`~repro.engine.jobs.JobResult`
        objects and the whole grid drains.
    """

    #: Registry name of this backend (see :mod:`repro.engine.backends`).
    name: str = ""

    @abc.abstractmethod
    def run(
        self,
        specs: Sequence[JobSpec],
        callback: Callable[[JobResult], None] | None = None,
        *,
        fail_fast: bool = True,
    ) -> list[JobResult]:
        """Execute every spec and return results in spec order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: The seam's public name: backends implement :class:`Executor`.
ExecutorBackend = Executor


class SerialExecutor(Executor):
    """In-process, one-at-a-time execution — the reference backend."""

    name = "serial"

    def run(
        self,
        specs: Sequence[JobSpec],
        callback: Callable[[JobResult], None] | None = None,
        *,
        fail_fast: bool = True,
    ) -> list[JobResult]:
        results: list[JobResult] = []
        traced = trace.enabled()
        for spec in specs:
            if traced:
                # In-process: the span lands directly on the active
                # recorder (no fragment shipping), and there is no
                # dispatch queue to wait in.
                with trace.span(
                    "engine.job",
                    task=spec.task,
                    key=spec.key()[:16],
                    seed_path=list(spec.seed_path),
                    worker=os.getpid(),
                    cached=False,
                    queue_wait=0.0,
                ) as span:
                    result = execute_job(spec, fail_fast=fail_fast)
                    span.set(compute=result.duration)
                    if result.failed and result.error is not None:
                        span.set(error=result.error["type"])
            else:
                result = execute_job(spec, fail_fast=fail_fast)
            if callback is not None:
                callback(result)
            results.append(result)
        return results


class ParallelExecutor(Executor):
    """``ProcessPoolExecutor``-backed execution with chunked dispatch.

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``0`` autodetects via
        :func:`default_worker_count`.
    chunk_size:
        Specs per dispatch batch; ``None`` picks ``ceil(n / (4 *
        workers))`` capped at 16 — enough batching to amortize IPC,
        small enough to keep the pool busy near the end of a sweep.

    Data-plane arrays referenced by job params travel by **pickle**:
    every dispatch chunk carries a full copy of each array its jobs
    reference.  That reproduces the historical cost model this backend
    has always had — use :class:`SharedMemoryExecutor` to ship each
    array once instead.

    On failure, every chunk that completed is still delivered to the
    callback before the first error re-raises; only the failing chunk's
    own jobs are lost (``fail_fast=False`` turns those into failed
    results instead).
    """

    name = "parallel"

    def __init__(
        self, workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        if workers is None or workers == 0:
            workers = default_worker_count()
        if not isinstance(workers, int) or workers < 1:
            raise ValidationError(
                f"workers must be a positive int (or None/0 for auto), "
                f"got {workers!r}"
            )
        if chunk_size is not None and (
            not isinstance(chunk_size, int) or chunk_size < 1
        ):
            raise ValidationError(
                f"chunk_size must be a positive int or None, got {chunk_size!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size

    def _chunk_for(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, min(16, -(-n_jobs // (4 * self.workers))))

    # -- transport hooks (overridden by SharedMemoryExecutor) ----------

    def _setup_transport(self, specs: list[JobSpec]) -> dict[str, Any]:
        """Prepare bulk-data transport; returns extra pool kwargs."""
        return {}

    def _teardown_transport(self) -> None:
        """Release transport resources (always called, even on error)."""

    def _chunk_arrays(
        self, batch: list[JobSpec]
    ) -> dict[str, np.ndarray] | None:
        """Published arrays to pickle into one dispatch chunk.

        Only hashes actually published on the active plane are shipped;
        a ref to anything else fails inside the worker with a
        :class:`~repro.exceptions.DataPlaneError`, which respects the
        run's ``fail_fast`` setting like any other job failure.
        """
        plane = dataplane.active_plane()
        if plane is None:
            return None
        needed: set[str] = set()
        for spec in batch:
            needed |= dataplane.params_ref_hashes(spec.params)
        available = needed.intersection(plane.hashes())
        if not available:
            return None
        return {
            key: plane.array_for_hash(key) for key in sorted(available)
        }

    @staticmethod
    def _announce_workers(pool: _ProcessPool) -> None:
        """Tell the resource sampler which PIDs are engine workers.

        Called once the first chunks are submitted (the pool spawns its
        processes lazily).  Announcing is unconditional and nearly free;
        when no sampler is running the registry is simply never read.
        """
        from repro.telemetry.sampler import announce_workers

        processes = getattr(pool, "_processes", None) or {}
        pids = [
            process.pid
            for process in processes.values()
            if process.pid is not None
        ]
        if pids:
            announce_workers(pids)

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        callback: Callable[[JobResult], None] | None = None,
        *,
        fail_fast: bool = True,
    ) -> list[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        if len(specs) == 1 or self.workers == 1:
            # Not worth a pool; the serial path is bit-identical anyway.
            return SerialExecutor().run(specs, callback, fail_fast=fail_fast)
        chunk = self._chunk_for(len(specs))
        chunks = [specs[i:i + chunk] for i in range(0, len(specs), chunk)]
        chunk_results: list[list[JobResult] | None] = [None] * len(chunks)
        first_error: Exception | None = None
        traced = trace.enabled()
        pool_kwargs = self._setup_transport(specs)
        try:
            with _ProcessPool(
                max_workers=min(self.workers, len(chunks)), **pool_kwargs
            ) as pool:
                futures = {
                    pool.submit(
                        _execute_chunk,
                        batch,
                        self._chunk_arrays(batch),
                        traced,
                        time.time(),
                        fail_fast,
                    ): index
                    for index, batch in enumerate(chunks)
                }
                self._announce_workers(pool)
                # Harvest in completion order so every finished chunk
                # reaches the callback (and thus the cache) even when
                # another chunk fails; the failure is re-raised only
                # after the drain.
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        batch_results = future.result()
                    except Exception as exc:
                        if fail_fast:
                            if first_error is None:
                                first_error = exc
                            continue
                        # Draining mode: the chunk's jobs are lost (a
                        # worker died, or dispatch itself failed) —
                        # surface each as a failed result rather than
                        # aborting the grid.
                        batch_results = [
                            failed_result(spec, exc)
                            for spec in chunks[index]
                        ]
                    chunk_results[index] = batch_results
                    if callback is not None:
                        for result in batch_results:
                            callback(result)
        finally:
            self._teardown_transport()
        if first_error is not None:
            raise first_error
        return [
            result for batch in chunk_results for result in batch  # type: ignore[union-attr]
        ]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SharedMemoryExecutor(ParallelExecutor):
    """Process-pool backend with a zero-copy shared-memory data plane.

    Arrays published on the active :class:`~repro.engine.dataplane.
    DataPlane` are exported **once** as ``multiprocessing.shared_memory``
    segments before the pool starts; workers attach lazily on first use
    and resolve refs as read-only, zero-copy shard views.  Job params —
    and therefore pickled dispatch traffic — stay a few hundred bytes
    per job regardless of dataset size.

    Cleanup guarantee: every exported segment is closed and unlinked in
    a ``finally`` when the run ends — success, job failure, broken
    pool, or ``KeyboardInterrupt`` — and an ``atexit`` sweep covers a
    parent that dies before the ``finally`` runs.  Workers close (never
    unlink) their attachments on exit.

    Specs without data-plane refs execute exactly like
    :class:`ParallelExecutor`, so this backend is a drop-in default for
    mixed workloads.
    """

    name = "shared-memory"

    def __init__(
        self, workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        super().__init__(workers=workers, chunk_size=chunk_size)
        self._export_plane: dataplane.DataPlane | None = None
        self._exported: dict[str, tuple[str, tuple[int, ...], str]] = {}

    def _setup_transport(self, specs: list[JobSpec]) -> dict[str, Any]:
        plane = dataplane.active_plane()
        if plane is None:
            return {}
        needed: set[str] = set()
        for spec in specs:
            needed |= dataplane.params_ref_hashes(spec.params)
        available = needed.intersection(plane.hashes())
        if not available:
            return {}
        self._exported = plane.export_segments(sorted(available))
        self._export_plane = plane
        return {
            "initializer": dataplane._init_worker_segments,
            "initargs": (self._exported,),
        }

    def _teardown_transport(self) -> None:
        plane, self._export_plane = self._export_plane, None
        exported, self._exported = self._exported, {}
        if plane is not None:
            plane.release_segments(exported)

    def _chunk_arrays(
        self, batch: list[JobSpec]
    ) -> dict[str, np.ndarray] | None:
        # Segments replace the pickle payload entirely; refs that are
        # neither exported nor published fail in the worker, honoring
        # fail_fast like every other job failure.
        return None
