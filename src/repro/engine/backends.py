"""The executor-backend seam: name-keyed backend selection.

Everything above the engine — :mod:`repro.api`, the CLI, the bench
harness — selects an execution backend by **name** through
:func:`create_backend`, never by constructing an executor class
directly.  A future distributed backend (work-stealing TCP, Ray-style)
drops in by registering a factory here; nothing above the seam changes,
and the determinism contract (results derive from seed coordinates
alone, so every backend is bit-identical) is the registration bar.

Built-in backends::

    serial         in-process reference backend (ignores workers)
    parallel       process pool; data-plane arrays pickled per chunk
    shared-memory  process pool; data-plane arrays as zero-copy
                   multiprocessing.shared_memory segments
"""

from __future__ import annotations

from typing import Callable

from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
)
from repro.exceptions import ValidationError

__all__ = [
    "BACKENDS",
    "DEFAULT_PARALLEL_BACKEND",
    "backend_names",
    "create_backend",
    "register_backend",
]

#: Factory signature: ``factory(workers, chunk_size) -> Executor``.
BackendFactory = Callable[[int | None, int | None], Executor]

#: Registered backend factories, keyed by name.
BACKENDS: dict[str, BackendFactory] = {}

#: The backend multi-worker requests (``--jobs N`` without an explicit
#: ``--backend``) resolve to.
DEFAULT_PARALLEL_BACKEND = "parallel"


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register an executor factory under a backend name.

    Parameters
    ----------
    name:
        Selection key (used by ``--backend`` and ``ExperimentSpec.
        backend``).
    factory:
        ``factory(workers, chunk_size) -> Executor``.  Must honor the
        engine determinism contract: identical ``(seed_root,
        seed_path)`` sharding semantics for any worker count.
    """
    if not isinstance(name, str) or not name:
        raise ValidationError(
            f"backend name must be a non-empty string, got {name!r}"
        )
    existing = BACKENDS.get(name)
    if existing is not None and existing is not factory:
        raise ValidationError(f"backend {name!r} is already registered")
    BACKENDS[name] = factory


def backend_names() -> list[str]:
    """Every registered backend name, sorted."""
    return sorted(BACKENDS)


def create_backend(
    name: str,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> Executor:
    """Instantiate the backend registered under ``name``.

    Parameters
    ----------
    name:
        A registered backend name (see :func:`backend_names`).
    workers:
        Worker-process count for pool backends; ``None``/``0``
        autodetects.  The serial backend accepts and ignores it.
    chunk_size:
        Per-dispatch batch size for pool backends; ``None`` auto-sizes.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValidationError(
            f"unknown executor backend {name!r}; registered: "
            f"{backend_names()}"
        ) from None
    return factory(workers, chunk_size)


def _make_serial(workers: int | None, chunk_size: int | None) -> Executor:
    return SerialExecutor()


def _make_parallel(workers: int | None, chunk_size: int | None) -> Executor:
    return ParallelExecutor(workers=workers, chunk_size=chunk_size)


def _make_shared_memory(
    workers: int | None, chunk_size: int | None
) -> Executor:
    return SharedMemoryExecutor(workers=workers, chunk_size=chunk_size)


register_backend("serial", _make_serial)
register_backend("parallel", _make_parallel)
register_backend("shared-memory", _make_shared_memory)
