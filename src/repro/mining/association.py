"""Association-rule mining over randomized-response baskets (MASK).

The paper's related work (Section 2) covers the categorical branch of
randomization: "Rizvi and Haritsa presented a scheme called MASK to mine
associations with secrecy constraints", building on Warner's randomized
response.  This module implements that substrate end-to-end:

* :class:`MaskScheme` — per-item independent bit retention/flip of
  binary transaction data (keep each bit with probability ``p``).
* Support reconstruction — for a ``k``-itemset, the observed pattern
  counts relate to the true counts through the ``k``-fold Kronecker
  power of the single-bit channel; inverting it recovers unbiased
  support estimates (the MASK estimator).
* :class:`AprioriMiner` — level-wise frequent-itemset mining that runs
  identically on plain data or on disguised data with reconstruction.

Together with :mod:`repro.metrics.breach` this covers the categorical
privacy story the paper positions itself against.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["MaskScheme", "AprioriMiner", "FrequentItemset"]


def _check_transactions(data, name="transactions") -> np.ndarray:
    matrix = np.asarray(data)
    if matrix.ndim != 2:
        raise ValidationError(f"{name!r} must be a 2-D 0/1 matrix")
    if matrix.size == 0:
        raise ValidationError(f"{name!r} must be non-empty")
    if not np.isin(matrix, (0, 1)).all():
        raise ValidationError(f"{name!r} must contain only 0 and 1")
    return matrix.astype(np.int8)


class MaskScheme:
    """MASK randomization: keep each bit w.p. ``p``, flip otherwise.

    Parameters
    ----------
    keep_probability:
        Probability a bit is transmitted truthfully; must differ from
        0.5 (at 0.5 the output is independent of the data and supports
        are unrecoverable).
    """

    def __init__(self, keep_probability: float):
        p = check_in_range(
            keep_probability, "keep_probability", low=0.0, high=1.0
        )
        if abs(p - 0.5) < 1e-9:
            raise ValidationError(
                "keep_probability must not be 0.5; supports would be "
                "unrecoverable"
            )
        self._p = p

    @property
    def keep_probability(self) -> float:
        """Probability a bit survives unflipped."""
        return self._p

    def channel_matrix(self, k: int = 1) -> np.ndarray:
        """Observation channel for a ``k``-itemset.

        Entry ``[observed, true]`` is the probability of seeing the
        observed k-bit pattern given the true one; the single-bit channel
        ``[[p, 1-p], [1-p, p]]`` Kronecker-powered ``k`` times (bits are
        flipped independently).
        """
        check_positive_int(k, "k")
        single = np.array(
            [[self._p, 1.0 - self._p], [1.0 - self._p, self._p]]
        )
        channel = single
        for _ in range(k - 1):
            channel = np.kron(channel, single)
        return channel

    def disguise(self, transactions, rng=None) -> np.ndarray:
        """Randomize a 0/1 transaction matrix elementwise."""
        matrix = _check_transactions(transactions)
        generator = as_generator(rng)
        keep = generator.random(matrix.shape) < self._p
        return np.where(keep, matrix, 1 - matrix).astype(np.int8)

    def estimate_support(self, disguised, itemset) -> float:
        """Unbiased support estimate of an itemset from disguised data.

        Counts the ``2^k`` observed bit patterns over the itemset's
        columns, inverts the channel, and reads off the all-ones cell.
        Estimates are clipped to ``[0, 1]`` (the raw inverse can step
        outside for small samples).

        Parameters
        ----------
        disguised:
            The randomized transaction matrix.
        itemset:
            Iterable of distinct column indices.
        """
        matrix = _check_transactions(disguised, "disguised")
        items = tuple(sorted(set(int(i) for i in itemset)))
        if not items:
            raise ValidationError("'itemset' must be non-empty")
        if items[0] < 0 or items[-1] >= matrix.shape[1]:
            raise ValidationError(
                f"itemset {items} out of range for {matrix.shape[1]} items"
            )
        k = len(items)
        columns = matrix[:, items].astype(np.int64)
        # Pattern id: first item is the most significant bit.
        weights = 1 << np.arange(k - 1, -1, -1)
        pattern_ids = columns @ weights
        observed = np.bincount(pattern_ids, minlength=1 << k).astype(
            np.float64
        )
        true_counts = np.linalg.solve(self.channel_matrix(k), observed)
        support = true_counts[-1] / matrix.shape[0]
        return float(np.clip(support, 0.0, 1.0))

    def __repr__(self) -> str:
        return f"MaskScheme(keep_probability={self._p:g})"


@dataclass(frozen=True)
class FrequentItemset:
    """A mined itemset and its (estimated) support."""

    items: tuple
    support: float

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(sorted(self.items)))

    def __len__(self) -> int:
        return len(self.items)


class AprioriMiner:
    """Level-wise frequent-itemset mining (Agrawal-Srikant Apriori).

    Works on plain transactions (exact supports) or on MASK-disguised
    transactions (reconstructed supports) — the comparison between the
    two runs is the utility story of the categorical randomization
    branch.

    Parameters
    ----------
    min_support:
        Support threshold in ``(0, 1]``.
    max_size:
        Largest itemset size to mine; reconstruction noise grows
        exponentially with the itemset size (the channel's condition
        number is ``(2p-1)^-k``), so small caps are realistic.
    """

    def __init__(self, min_support: float, *, max_size: int = 4):
        self._min_support = check_in_range(
            min_support, "min_support", low=0.0, high=1.0,
            inclusive_low=False,
        )
        self._max_size = check_positive_int(max_size, "max_size")

    @property
    def min_support(self) -> float:
        """Configured support threshold."""
        return self._min_support

    def mine_plain(self, transactions) -> list[FrequentItemset]:
        """Mine exact frequent itemsets from non-disguised data."""
        matrix = _check_transactions(transactions)

        def support(items):
            return float(np.mean(matrix[:, list(items)].all(axis=1)))

        return self._levelwise(matrix.shape[1], support)

    def mine_disguised(
        self, disguised, scheme: MaskScheme
    ) -> list[FrequentItemset]:
        """Mine frequent itemsets from MASK-disguised data."""
        matrix = _check_transactions(disguised, "disguised")
        if not isinstance(scheme, MaskScheme):
            raise ValidationError(
                f"scheme must be a MaskScheme, got {type(scheme).__name__}"
            )

        def support(items):
            return scheme.estimate_support(matrix, items)

        return self._levelwise(matrix.shape[1], support)

    # ------------------------------------------------------------------
    def _levelwise(self, n_items, support_fn) -> list[FrequentItemset]:
        frequent: list[FrequentItemset] = []
        current = []
        for item in range(n_items):
            s = support_fn((item,))
            if s >= self._min_support:
                current.append(FrequentItemset((item,), s))
        frequent.extend(current)

        size = 2
        while current and size <= self._max_size:
            frequent_prev = {fs.items for fs in current}
            candidates = self._generate_candidates(frequent_prev, size)
            current = []
            for candidate in candidates:
                s = support_fn(candidate)
                if s >= self._min_support:
                    current.append(FrequentItemset(candidate, s))
            frequent.extend(current)
            size += 1
        return sorted(
            frequent, key=lambda fs: (len(fs.items), fs.items)
        )

    @staticmethod
    def _generate_candidates(frequent_prev: set, size: int) -> list[tuple]:
        """Join step + Apriori prune (all subsets must be frequent)."""
        items = sorted({item for fs in frequent_prev for item in fs})
        candidates = []
        for combo in combinations(items, size):
            subsets_frequent = all(
                tuple(sub) in frequent_prev
                for sub in combinations(combo, size - 1)
            )
            if subsets_frequent:
                candidates.append(combo)
        return candidates

    def __repr__(self) -> str:
        return (
            f"AprioriMiner(min_support={self._min_support:g}, "
            f"max_size={self._max_size})"
        )
