"""Data-mining utility checks for randomized data.

Section 8.1's closing argument: the improved (correlated-noise) scheme
must still support data mining, because aggregate information — the
distribution — remains recoverable via Theorem 8.2 (``Sigma_x = Sigma_y -
Sigma_r``).  This package demonstrates that claim with a Gaussian naive
Bayes classifier trained on moments recovered from disguised data.
"""

from repro.mining.association import AprioriMiner, FrequentItemset, MaskScheme
from repro.mining.naive_bayes import GaussianNaiveBayes, utility_report

__all__ = [
    "AprioriMiner",
    "FrequentItemset",
    "MaskScheme",
    "GaussianNaiveBayes",
    "utility_report",
]
