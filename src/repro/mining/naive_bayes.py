"""Gaussian naive Bayes trained on moments recovered from disguised data.

The randomization bargain (Sections 1 and 8.1): individual records are
perturbed, but distributions survive, so distribution-based mining still
works.  For Gaussian class-conditional models, the only training inputs
are per-class means and (co)variances — exactly what Theorems 5.1 / 8.2
recover from disguised data.  Training this classifier on the *recovered*
moments and comparing its accuracy to one trained on the original data
quantifies the utility the randomization preserved.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.linalg.covariance import covariance_from_disguised
from repro.utils.validation import check_matrix

__all__ = ["GaussianNaiveBayes", "utility_report"]


class GaussianNaiveBayes:
    """Naive Bayes with per-class Gaussian attribute models.

    Attributes are treated independently within each class (the "naive"
    assumption), so training only needs per-class attribute means and
    variances.

    Parameters
    ----------
    variance_floor:
        Lower bound applied to estimated variances; recovered variances
        can hit zero after noise subtraction.
    """

    def __init__(self, *, variance_floor: float = 1e-6):
        if variance_floor <= 0.0:
            raise ValidationError(
                f"variance_floor must be positive, got {variance_floor}"
            )
        self._variance_floor = float(variance_floor)
        self._classes: np.ndarray | None = None
        self._priors: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, features, labels) -> "GaussianNaiveBayes":
        """Fit on clean (non-disguised) data — the oracle baseline."""
        matrix = check_matrix(features, "features", min_rows=2)
        return self._fit_from_moment_source(
            matrix, labels, noise_covariance=None
        )

    def fit_disguised(
        self, disguised_features, labels, noise_covariance
    ) -> "GaussianNaiveBayes":
        """Fit on disguised data, correcting moments via Theorem 5.1/8.2.

        Per-class means are unchanged by zero-mean noise; per-class
        variances are the disguised variances minus the noise variances
        (the diagonal of the noise covariance), floored at
        ``variance_floor``.
        """
        matrix = check_matrix(disguised_features, "disguised_features",
                              min_rows=2)
        return self._fit_from_moment_source(
            matrix, labels, noise_covariance=noise_covariance
        )

    def _fit_from_moment_source(self, matrix, labels, *, noise_covariance):
        label_array = np.asarray(labels).ravel()
        if label_array.size != matrix.shape[0]:
            raise ValidationError(
                f"got {label_array.size} labels for {matrix.shape[0]} rows"
            )
        classes = np.unique(label_array)
        if classes.size < 2:
            raise ValidationError("need at least two classes to classify")
        m = matrix.shape[1]
        means = np.empty((classes.size, m))
        variances = np.empty((classes.size, m))
        priors = np.empty(classes.size)
        for index, label in enumerate(classes):
            rows = matrix[label_array == label]
            if rows.shape[0] < 2:
                raise ValidationError(
                    f"class {label!r} has fewer than 2 samples"
                )
            priors[index] = rows.shape[0] / matrix.shape[0]
            means[index] = rows.mean(axis=0)
            if noise_covariance is None:
                variances[index] = rows.var(axis=0, ddof=1)
            else:
                recovered = covariance_from_disguised(
                    rows, noise_covariance
                )
                variances[index] = np.diag(recovered)
        self._classes = classes
        self._priors = priors
        self._means = means
        self._variances = np.maximum(variances, self._variance_floor)
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _check_fitted(self):
        if self._classes is None:
            raise NotFittedError(self)

    def log_joint(self, features) -> np.ndarray:
        """Per-class log joint ``log P(class) + log P(x | class)``.

        Shape ``(n, n_classes)``.
        """
        self._check_fitted()
        matrix = check_matrix(features, "features")
        if matrix.shape[1] != self._means.shape[1]:
            raise ValidationError(
                f"features have {matrix.shape[1]} attributes, model was "
                f"trained with {self._means.shape[1]}"
            )
        # (n, 1, m) - (1, k, m) -> (n, k, m)
        centered = matrix[:, None, :] - self._means[None, :, :]
        log_like = -0.5 * (
            centered**2 / self._variances[None, :, :]
            + np.log(2.0 * math.pi * self._variances)[None, :, :]
        ).sum(axis=2)
        return log_like + np.log(self._priors)[None, :]

    def predict(self, features) -> np.ndarray:
        """Most probable class per row."""
        joint = self.log_joint(features)
        return self._classes[np.argmax(joint, axis=1)]

    def accuracy(self, features, labels) -> float:
        """Fraction of rows classified correctly."""
        predictions = self.predict(features)
        label_array = np.asarray(labels).ravel()
        if label_array.size != predictions.size:
            raise ValidationError(
                f"got {label_array.size} labels for {predictions.size} rows"
            )
        return float(np.mean(predictions == label_array))

    @property
    def classes(self) -> np.ndarray:
        """Class labels seen at fit time."""
        self._check_fitted()
        return self._classes.copy()

    def __repr__(self) -> str:
        fitted = self._classes is not None
        return f"GaussianNaiveBayes(fitted={fitted})"


def utility_report(
    train_original,
    train_disguised,
    train_labels,
    test_features,
    test_labels,
    noise_covariance,
) -> dict[str, float]:
    """Compare classifier utility: oracle vs naive vs moment-corrected.

    Three Gaussian naive Bayes models are trained and evaluated on the
    same held-out clean test set:

    * ``"original"`` — trained on the private data (upper bound),
    * ``"disguised_naive"`` — trained on disguised data *ignoring* the
      noise (what a careless miner gets),
    * ``"disguised_corrected"`` — trained on disguised data with
      Theorem-5.1/8.2 moment correction (the randomization promise).

    Returns the three accuracies keyed by those names.
    """
    report = {}
    report["original"] = (
        GaussianNaiveBayes()
        .fit(train_original, train_labels)
        .accuracy(test_features, test_labels)
    )
    report["disguised_naive"] = (
        GaussianNaiveBayes()
        .fit(train_disguised, train_labels)
        .accuracy(test_features, test_labels)
    )
    report["disguised_corrected"] = (
        GaussianNaiveBayes()
        .fit_disguised(train_disguised, train_labels, noise_covariance)
        .accuracy(test_features, test_labels)
    )
    return report
