"""The thread-safe in-process trace collector.

One :class:`Recorder` holds everything a run produces: span trees (one
stack per thread, so spans started on different threads nest correctly
and never interleave), monotonic counters, and last-value gauges.  It
serializes to the versioned ``repro-trace/v1`` document (see
:mod:`repro.telemetry.schema`) and can *adopt* serialized fragments —
the mechanism by which spans recorded inside ``ParallelExecutor``
worker processes merge into the parent trace.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.exceptions import ValidationError
from repro.telemetry.schema import TRACE_SCHEMA
from repro.telemetry.spans import Span

__all__ = ["Recorder"]


class Recorder:
    """Collects spans, counters, and gauges for one traced run.

    Thread model: each thread gets its own span stack (``threading.
    local``), so a span's children are always appended by the thread
    that opened it and need no lock; the shared root list, counters,
    and gauges are mutated under a single lock.  A span opened on a
    thread with an empty stack becomes an additional root.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[Span] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # span lifecycle

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def begin_span(
        self, name: str, attrs: dict[str, Any] | None = None
    ) -> Span:
        """Open a span nested under the calling thread's current span."""
        span = Span(name, attrs).begin()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close a span; it must be the thread's innermost open span."""
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ValidationError(
                f"cannot end span {span.name!r}: it is not the innermost "
                "open span on this thread (unbalanced begin/end nesting)"
            )
        stack.pop()
        return span.finish()

    def adopt(self, fragment: dict[str, Any]) -> Span:
        """Graft a serialized trace fragment under the current span.

        ``fragment`` is :meth:`export_fragment` output shipped from
        another process (or an already-serialized span dict).  The
        fragment's span tree becomes a child of the calling thread's
        current span (or a new root), its counters merge additively
        into this recorder's, and its gauges merge last-value-wins —
        so a worker's ``kernel.*`` convergence heartbeats surface in
        the parent's metrics ring as each job completes.
        """
        if not isinstance(fragment, dict):
            raise ValidationError(
                f"trace fragment must be a dict, got "
                f"{type(fragment).__name__}"
            )
        payload = fragment.get("span", fragment)
        span = Span.from_dict(payload)
        parent = self.current_span()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        for name, value in (fragment.get("counters") or {}).items():
            self.count(name, value)
        for name, value in (fragment.get("gauges") or {}).items():
            self.gauge(name, value)
        return span

    # ------------------------------------------------------------------
    # metrics

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a monotonic counter (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge."""
        with self._lock:
            self.gauges[name] = value

    def metrics_view(self) -> tuple[dict[str, float], dict[str, float]]:
        """Consistent copies of ``(counters, gauges)`` under the lock.

        The metrics exporter's read path: a snapshot taken while other
        threads are counting must never observe a dict mid-mutation.
        """
        with self._lock:
            return dict(self.counters), dict(self.gauges)

    # ------------------------------------------------------------------
    # serialization

    def export_fragment(self) -> dict[str, Any]:
        """A picklable/JSON-safe fragment for cross-process adoption.

        Returns the single root span when there is exactly one, or a
        synthetic ``"worker"`` container span when the traced code
        spawned several roots (e.g. from extra threads).
        """
        with self._lock:
            roots = list(self.roots)
            counters = dict(self.counters)
            gauges = dict(self.gauges)
        if len(roots) == 1:
            root = roots[0]
        else:
            root = Span("worker")
            if roots:
                root.start_unix = min(span.start_unix for span in roots)
                root.duration = (
                    max(span.end_unix for span in roots) - root.start_unix
                )
            root.children.extend(roots)
        return {
            "span": root.to_dict(),
            "counters": counters,
            "gauges": gauges,
        }

    def to_document(
        self, *, manifest: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """The full ``repro-trace/v1`` document for this recorder."""
        with self._lock:
            spans = [root.to_dict() for root in self.roots]
            counters = dict(self.counters)
            gauges = dict(self.gauges)
        return {
            "schema": TRACE_SCHEMA,
            "created_unix": time.time(),
            "spans": spans,
            "counters": counters,
            "gauges": gauges,
            "manifest": manifest,
        }

    def __repr__(self) -> str:
        return (
            f"Recorder(roots={len(self.roots)}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)})"
        )
