"""Sanctioned clock shims for the run-health layer.

The ``wall-clock`` static-analysis rule (``repro check``) covers the
exporter and sampler modules: like the numerical kernels, they may not
read clocks directly, because a stray ``time.time()`` there is exactly
how timestamps leak into payloads and cache keys.  Instead, every clock
read in the run-health layer flows through the two shims below, so the
full set of clock touch points stays auditable in one ten-line module.

The shims are intentionally trivial — the point is *where* the reads
live, not what they do.
"""

from __future__ import annotations

import time

__all__ = ["wall_now", "mono_now"]


def wall_now() -> float:
    """The wall clock (``time.time()``): comparable across processes.

    Use for snapshot timestamps and anything serialized next to
    ``start_unix`` span anchors.
    """
    return time.time()


def mono_now() -> float:
    """The monotonic clock (``time.perf_counter()``): immune to steps.

    Use for interval and rate arithmetic (sampling cadence, jobs/sec,
    ETA) that must never go backwards.
    """
    return time.perf_counter()
