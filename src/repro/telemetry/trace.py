"""The tracing facade instrumented code calls.

Usage in instrumented modules::

    from repro.telemetry import trace

    with trace.span("em.sweep", n=n) as span:
        ...
        span.set(iterations=iterations)
    trace.count("cache.hit")

The module holds at most one *active* :class:`~repro.telemetry.
recorder.Recorder` per process.  When none is active — the default —
every call here is a no-op on a fast path: :func:`span` returns a
shared singleton context manager and :func:`count`/:func:`gauge`
return after one global read, so permanently-instrumented hot paths
cost nothing measurable when tracing is off (pinned by the
``telemetry.overhead`` micro-benchmark and its regression test).
"""

from __future__ import annotations

import contextlib
from types import TracebackType
from typing import Any, Iterator

from repro.telemetry.convergence import (
    NULL_TRACKER,
    IterationTracker,
    _NullTracker,
)
from repro.telemetry.recorder import Recorder
from repro.telemetry.spans import Span

__all__ = [
    "enabled",
    "active_recorder",
    "recording",
    "disabled",
    "span",
    "count",
    "gauge",
    "adopt",
    "current_span",
    "iterations",
]

#: The process-wide active recorder; ``None`` disables all tracing.
_ACTIVE: Recorder | None = None


class _NullSpan:
    """Shared do-nothing stand-in for :class:`Span` when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (tracing is disabled)."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


#: The singleton no-op context manager :func:`span` hands out while
#: tracing is disabled — reused, never allocated per call.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens/closes one span on the recorder."""

    __slots__ = ("_recorder", "_name", "_attrs", "_span")

    def __init__(
        self, recorder: Recorder, name: str, attrs: dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._recorder.begin_span(self._name, self._attrs)
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if self._span is not None:
            if exc_type is not None:
                self._span.attrs.setdefault("error", exc_type.__name__)
            self._recorder.end_span(self._span)
        return False


def enabled() -> bool:
    """True when a recorder is active in this process."""
    return _ACTIVE is not None


def active_recorder() -> Recorder | None:
    """The active recorder, or ``None`` when tracing is disabled."""
    return _ACTIVE


@contextlib.contextmanager
def recording(recorder: Recorder | None = None) -> Iterator[Recorder]:
    """Activate a recorder for the duration of the ``with`` block.

    Parameters
    ----------
    recorder:
        The recorder to activate; a fresh one is created when omitted.
        The previously active recorder (usually ``None``) is restored
        on exit, so activations nest safely.

    Yields
    ------
    Recorder
        The active recorder.
    """
    global _ACTIVE
    active = recorder if recorder is not None else Recorder()
    previous = _ACTIVE
    _ACTIVE = active
    try:
        yield active
    finally:
        _ACTIVE = previous


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Suppress tracing for the duration of the ``with`` block.

    The inverse of :func:`recording`: code inside the block sees
    tracing as off even under an active recorder.  Used by workloads
    that must measure (or guarantee) the no-op fast path regardless of
    the caller's tracing state, e.g. the overhead micro-benchmark.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


def span(name: str, **attrs: Any) -> _SpanContext | _NullSpan:
    """A context manager timing ``name`` with ``attrs`` annotations.

    Returns the shared no-op singleton when tracing is disabled; the
    ``with`` body always receives an object supporting ``.set(**kw)``.
    """
    recorder = _ACTIVE
    if recorder is None:
        return NULL_SPAN
    return _SpanContext(recorder, name, attrs)


def count(name: str, value: float = 1) -> None:
    """Increment a counter on the active recorder (no-op when disabled)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active recorder (no-op when disabled)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.gauge(name, value)


def adopt(fragment: dict[str, Any] | None) -> None:
    """Merge a worker-exported trace fragment (no-op when disabled)."""
    recorder = _ACTIVE
    if recorder is not None and fragment is not None:
        recorder.adopt(fragment)


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    recorder = _ACTIVE
    if recorder is None:
        return None
    return recorder.current_span()


def iterations(kernel: str) -> IterationTracker | _NullTracker:
    """An :class:`IterationTracker` for the kernel fit under way.

    Returns the shared no-op :data:`~repro.telemetry.convergence.
    NULL_TRACKER` singleton when tracing is disabled — the per-call
    cost is then one global read, same as :func:`span`.  When tracing
    is active the tracker binds to the calling thread's current span
    (normally the kernel's own span, opened just before), which is
    where :meth:`~IterationTracker.finish` attaches the
    ``repro-convergence/v1`` payload.  One tracker per span.
    """
    recorder = _ACTIVE
    if recorder is None:
        return NULL_TRACKER
    return IterationTracker(kernel, recorder, recorder.current_span())
