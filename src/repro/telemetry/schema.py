"""The ``repro-trace/v1`` document format and its validator.

A trace document is what ``repro run --trace out.json`` writes and what
``repro trace out.json`` reads back::

    {
      "schema": "repro-trace/v1",
      "created_unix": 1753800000.0,
      "spans": [ {name, start_unix, duration, attrs, children}, ... ],
      "counters": {"cache.hit": 3, ...},
      "gauges": {"engine.workers": 4, ...},
      "manifest": { ... run provenance ... } | null
    }

:func:`validate_trace` checks the whole document structurally and
raises a single :class:`~repro.exceptions.ValidationError` listing
*every* problem found, so CI's schema gate reports all breakage at
once instead of one field per run.

Forward compatibility: a document (or a nested convergence payload)
declaring a *newer* version of a known schema family — e.g.
``repro-trace/v2`` read by a ``v1`` build — is not a structural
failure.  The validators record a named warning (``unknown-schema-
version`` / ``unknown-payload-schema``) into the caller-supplied
``warnings`` sink, skip the structural checks that no longer apply,
and accept the document, so old tooling degrades gracefully on new
artifacts instead of failing CI with a generic error.
"""

from __future__ import annotations

import numbers
from typing import Any

from repro.exceptions import ValidationError
from repro.telemetry.convergence import CONVERGENCE_SCHEMA

__all__ = [
    "CONVERGENCE_SCHEMA",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "validate_metrics",
    "validate_trace",
]

#: Version tag of the trace document format.  Bump on incompatible
#: layout changes; the validator only accepts this exact value.
TRACE_SCHEMA = "repro-trace/v1"

#: Version tag of the live-metrics ring document the exporter writes.
METRICS_SCHEMA = "repro-metrics/v1"

#: Span fields beyond these are rejected so typos ("durration") cannot
#: silently ride along in a "valid" document.
_SPAN_FIELDS = {"name", "start_unix", "duration", "attrs", "children"}

#: Recognized fields of a ``repro-convergence/v1`` payload.
_CONVERGENCE_FIELDS = {
    "schema",
    "kernel",
    "iterations",
    "converged",
    "truncated",
    "rejections",
    "nonfinite",
    "final_objective",
    "final_delta",
    "objective",
    "delta",
    "condition",
}

#: Convergence counters that must be non-negative integers.
_CONVERGENCE_COUNTS = ("iterations", "rejections", "nonfinite")

#: Trajectory lists of a convergence payload.
_CONVERGENCE_SERIES = ("objective", "delta", "condition")

#: String stand-ins :func:`repro.utils.serialization.sanitize_for_json`
#: uses for non-finite floats; trajectory entries may be any of them.
_NONFINITE_SENTINELS = {"__nan__", "__inf__", "__-inf__"}


def _is_number(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _is_trajectory_value(value: Any) -> bool:
    """A trajectory entry: a number or a non-finite sentinel string."""
    return _is_number(value) or value in _NONFINITE_SENTINELS


def _unknown_family_version(
    schema: Any, family: str, expected: str
) -> bool:
    """True for a recognized schema family at an unrecognized version."""
    return (
        isinstance(schema, str)
        and schema != expected
        and schema.startswith(family + "/")
    )


def _check_convergence(
    payload: Any, path: str, problems: list[str], warnings: list[str]
) -> None:
    if not isinstance(payload, dict):
        problems.append(
            f"{path}: convergence payload must be a dict, got "
            f"{type(payload).__name__}"
        )
        return
    schema = payload.get("schema")
    if schema != CONVERGENCE_SCHEMA:
        if _unknown_family_version(
            schema, "repro-convergence", CONVERGENCE_SCHEMA
        ):
            warnings.append(
                f"unknown-payload-schema: {path} declares {schema!r}; "
                f"this build validates {CONVERGENCE_SCHEMA!r}, "
                "structural checks skipped"
            )
        else:
            problems.append(
                f"{path}: 'schema' must be {CONVERGENCE_SCHEMA!r}, "
                f"got {schema!r}"
            )
        return
    unknown = sorted(set(payload) - _CONVERGENCE_FIELDS)
    if unknown:
        problems.append(f"{path}: unknown convergence field(s) {unknown}")
    kernel = payload.get("kernel")
    if not isinstance(kernel, str) or not kernel:
        problems.append(f"{path}: 'kernel' must be a non-empty string")
    for field in _CONVERGENCE_COUNTS:
        value = payload.get(field)
        if (
            not isinstance(value, int)
            or isinstance(value, bool)
            or value < 0
        ):
            problems.append(
                f"{path}: {field!r} must be a non-negative integer"
            )
    for field in ("converged", "truncated"):
        if field in payload and not isinstance(payload[field], bool):
            problems.append(f"{path}: {field!r} must be a bool")
    for field in ("final_objective", "final_delta"):
        if field in payload and not _is_trajectory_value(payload[field]):
            problems.append(
                f"{path}: {field!r} must be a number or a "
                "non-finite sentinel"
            )
    for field in _CONVERGENCE_SERIES:
        series = payload.get(field)
        if series is None:
            continue
        if not isinstance(series, list):
            problems.append(f"{path}: {field!r} must be a list")
            continue
        for index, value in enumerate(series):
            if not _is_trajectory_value(value):
                problems.append(
                    f"{path}: {field}[{index}] must be a number or a "
                    "non-finite sentinel"
                )
                break


def _check_span(
    span: Any,
    path: str,
    problems: list[str],
    warnings: list[str],
    depth: int = 0,
) -> None:
    if depth > 64:
        problems.append(f"{path}: span tree deeper than 64 levels")
        return
    if not isinstance(span, dict):
        problems.append(f"{path}: span must be a dict, got "
                        f"{type(span).__name__}")
        return
    unknown = sorted(set(span) - _SPAN_FIELDS)
    if unknown:
        problems.append(f"{path}: unknown span field(s) {unknown}")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: 'name' must be a non-empty string")
    if not _is_number(span.get("start_unix")):
        problems.append(f"{path}: 'start_unix' must be a number")
    duration = span.get("duration")
    if not _is_number(duration) or duration < 0.0:
        problems.append(f"{path}: 'duration' must be a non-negative number")
    attrs = span.get("attrs", {})
    if not isinstance(attrs, dict) or any(
        not isinstance(key, str) for key in attrs
    ):
        problems.append(f"{path}: 'attrs' must be a string-keyed dict")
    elif "convergence" in attrs:
        _check_convergence(
            attrs["convergence"],
            f"{path}.attrs.convergence",
            problems,
            warnings,
        )
    children = span.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: 'children' must be a list")
        return
    for index, child in enumerate(children):
        _check_span(
            child, f"{path}.children[{index}]", problems, warnings,
            depth + 1,
        )


def _check_metrics(
    payload: dict[str, Any], key: str, problems: list[str]
) -> None:
    metrics = payload.get(key)
    if not isinstance(metrics, dict):
        problems.append(f"'{key}' must be a dict")
        return
    for name, value in metrics.items():
        if not isinstance(name, str) or not name:
            problems.append(f"{key}: keys must be non-empty strings")
        elif not _is_number(value):
            problems.append(f"{key}[{name!r}]: value must be a number")


def _check_manifest(manifest: Any, problems: list[str]) -> None:
    if manifest is None:
        return
    if not isinstance(manifest, dict):
        problems.append("'manifest' must be a dict or null")
        return
    jobs = manifest.get("jobs")
    if jobs is None:
        return
    if not isinstance(jobs, list):
        problems.append("manifest 'jobs' must be a list")
        return
    for index, job in enumerate(jobs):
        path = f"manifest.jobs[{index}]"
        if not isinstance(job, dict):
            problems.append(f"{path}: must be a dict")
            continue
        if not isinstance(job.get("key"), str):
            problems.append(f"{path}: 'key' must be a string")
        if "duration" in job and not _is_number(job["duration"]):
            problems.append(f"{path}: 'duration' must be a number")
        if "cached" in job and not isinstance(job["cached"], bool):
            problems.append(f"{path}: 'cached' must be a bool")
        if "convergence" in job:
            _check_job_convergence(job["convergence"], path, problems)


def _check_job_convergence(
    summary: Any, path: str, problems: list[str]
) -> None:
    """Validate a manifest job's per-kernel convergence summary.

    The summary is the :func:`repro.telemetry.convergence.
    summarize_payloads` shape: kernel name to a dict of integer
    counts (``fits``, ``iterations``, ...).
    """
    if not isinstance(summary, dict):
        problems.append(f"{path}: 'convergence' must be a dict")
        return
    for kernel, counts in summary.items():
        entry = f"{path}.convergence[{kernel!r}]"
        if not isinstance(kernel, str) or not kernel:
            problems.append(f"{entry}: kernel names must be strings")
            continue
        if not isinstance(counts, dict):
            problems.append(f"{entry}: must be a dict of counts")
            continue
        for field, value in counts.items():
            if isinstance(value, bool) or not isinstance(value, int):
                problems.append(
                    f"{entry}[{field!r}]: count must be an integer"
                )


def validate_trace(
    payload: Any, *, warnings: list[str] | None = None
) -> dict[str, Any]:
    """Structurally validate a ``repro-trace/v1`` document.

    Parameters
    ----------
    payload:
        The parsed JSON document.
    warnings:
        Optional sink for non-fatal findings.  A document declaring an
        unknown ``repro-trace/*`` version appends an
        ``unknown-schema-version`` entry here (and skips structural
        checks) instead of failing; nested convergence payloads at
        unknown ``repro-convergence/*`` versions append
        ``unknown-payload-schema`` entries likewise.

    Returns
    -------
    dict
        The payload itself, when valid.

    Raises
    ------
    ValidationError
        Listing every structural problem found.
    """
    problems: list[str] = []
    warn_sink = warnings if warnings is not None else []
    if not isinstance(payload, dict):
        raise ValidationError(
            f"trace document must be a dict, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        if _unknown_family_version(schema, "repro-trace", TRACE_SCHEMA):
            warn_sink.append(
                f"unknown-schema-version: document declares {schema!r}; "
                f"this build validates {TRACE_SCHEMA!r}, structural "
                "checks skipped"
            )
            return payload
        problems.append(
            f"'schema' must be {TRACE_SCHEMA!r}, got {schema!r}"
        )
    if not _is_number(payload.get("created_unix")):
        problems.append("'created_unix' must be a number")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("'spans' must be a list")
    else:
        for index, span in enumerate(spans):
            _check_span(span, f"spans[{index}]", problems, warn_sink)
    _check_metrics(payload, "counters", problems)
    _check_metrics(payload, "gauges", problems)
    _check_manifest(payload.get("manifest"), problems)
    if problems:
        raise ValidationError(
            "invalid repro-trace/v1 document: " + "; ".join(problems)
        )
    return payload


# ----------------------------------------------------------------------
# repro-metrics/v1 (the exporter's ring document)

#: Snapshot fields beyond these are rejected — same typo protection the
#: span validator applies.
_SNAPSHOT_FIELDS = {"ts_unix", "counters", "gauges", "progress"}

#: Recognized keys of a snapshot's derived ``progress`` block.
_PROGRESS_FIELDS = {
    "total",
    "completed",
    "cached",
    "elapsed_s",
    "rate_jobs_per_s",
    "eta_s",
}


def _check_snapshot(
    snapshot: Any, path: str, problems: list[str]
) -> None:
    if not isinstance(snapshot, dict):
        problems.append(
            f"{path}: snapshot must be a dict, got {type(snapshot).__name__}"
        )
        return
    unknown = sorted(set(snapshot) - _SNAPSHOT_FIELDS)
    if unknown:
        problems.append(f"{path}: unknown snapshot field(s) {unknown}")
    if not _is_number(snapshot.get("ts_unix")):
        problems.append(f"{path}: 'ts_unix' must be a number")
    _check_metrics(snapshot, "counters", problems)
    _check_metrics(snapshot, "gauges", problems)
    progress = snapshot.get("progress")
    if progress is None:
        return
    if not isinstance(progress, dict):
        problems.append(f"{path}: 'progress' must be a dict or absent")
        return
    unknown = sorted(set(progress) - _PROGRESS_FIELDS)
    if unknown:
        problems.append(f"{path}: unknown progress field(s) {unknown}")
    for field, value in progress.items():
        if field in _PROGRESS_FIELDS and not _is_number(value):
            problems.append(
                f"{path}: progress[{field!r}] must be a number"
            )


def validate_metrics(
    payload: Any, *, warnings: list[str] | None = None
) -> dict[str, Any]:
    """Structurally validate a ``repro-metrics/v1`` ring document.

    Parameters
    ----------
    payload:
        The parsed JSON document.
    warnings:
        Optional sink for non-fatal findings; an unknown
        ``repro-metrics/*`` version appends an
        ``unknown-schema-version`` entry and skips structural checks
        (see :func:`validate_trace`).

    Returns
    -------
    dict
        The payload itself, when valid.

    Raises
    ------
    ValidationError
        Listing every structural problem found.
    """
    problems: list[str] = []
    warn_sink = warnings if warnings is not None else []
    if not isinstance(payload, dict):
        raise ValidationError(
            f"metrics document must be a dict, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != METRICS_SCHEMA:
        if _unknown_family_version(schema, "repro-metrics", METRICS_SCHEMA):
            warn_sink.append(
                f"unknown-schema-version: document declares {schema!r}; "
                f"this build validates {METRICS_SCHEMA!r}, structural "
                "checks skipped"
            )
            return payload
        problems.append(
            f"'schema' must be {METRICS_SCHEMA!r}, got {schema!r}"
        )
    for field in ("created_unix", "updated_unix"):
        if not _is_number(payload.get(field)):
            problems.append(f"'{field}' must be a number")
    interval = payload.get("interval_s")
    if not _is_number(interval) or interval <= 0:
        problems.append("'interval_s' must be a positive number")
    ring = payload.get("ring")
    if not isinstance(ring, int) or isinstance(ring, bool) or ring < 1:
        problems.append("'ring' must be a positive integer")
    snapshots = payload.get("snapshots")
    if not isinstance(snapshots, list):
        problems.append("'snapshots' must be a list")
    else:
        if isinstance(ring, int) and not isinstance(ring, bool) and ring >= 1:
            if len(snapshots) > ring:
                problems.append(
                    f"'snapshots' holds {len(snapshots)} entries, more "
                    f"than the declared ring size {ring}"
                )
        for index, snapshot in enumerate(snapshots):
            _check_snapshot(snapshot, f"snapshots[{index}]", problems)
    if problems:
        raise ValidationError(
            "invalid repro-metrics/v1 document: " + "; ".join(problems)
        )
    return payload
